"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where the
``wheel`` package (needed for PEP 660 editable builds) is unavailable:
``pip install -e . --no-build-isolation --no-use-pep517`` falls back to the
legacy ``setup.py develop`` path through this file.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
