#!/usr/bin/env python
"""Failure visualization with traced API timelines (paper §IV-D).

Starts the etcd simulator in-process, instruments the client's API
methods with the tracing substrate (the offline Zipkin substitute), runs
a short scenario that includes a failure, and renders the recorded spans
as an ASCII timeline and an event table — "API calls visualized as events
on timelines".

Run:  python examples/failure_visualization.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_events, render_timeline
from repro.etcdsim import Client, EtcdKeyNotFound, EtcdServer
from repro.tracing import Tracer, instrument_object, load_spans


def scenario(client: Client) -> None:
    """A short client session ending in a (handled) failure."""
    client.version()
    client.mkdir("/demo")
    client.set("/demo/config", "v1")
    client.get("/demo/config")
    client.test_and_set("/demo/config", "v2", prev_value="v1")
    client.set("/demo/session", "tok", ttl=30)
    client.ls("/demo")
    try:
        client.get("/demo/missing")  # the failure to visualize
    except EtcdKeyNotFound:
        pass
    client.delete("/demo", recursive=True)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        sink = Path(tmp) / "trace.jsonl"
        tracer = Tracer("pyetcd-client", sink=sink)

        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            instrument_object(client, tracer)
            scenario(client)

        spans = load_spans(sink)
        print(f"recorded {len(spans)} spans "
              f"(trace id {spans[0].trace_id})\n")

        print("=== timeline (one lane per span; '!' marks failures) ===")
        print(render_timeline(spans, width=60))

        print("\n=== event table ===")
        print(render_events(spans))

        failed = [span for span in spans if span.status != "ok"]
        print(f"\nfailed API calls: "
              f"{[f'{s.name} ({s.status})' for s in failed]}")


if __name__ == "__main__":
    main()
