#!/usr/bin/env python
"""Scanning at OpenStack scale (paper §V-D) on a synthetic codebase.

Generates a seeded codebase shaped like the paper's Nova/Neutron/Cinder
targets, expands a per-API faultload (the paper uses 120 DSL patterns),
scans it single- and multi-process, and reports locations/second with an
extrapolation to the paper's 400 KLoC.

Run:  python examples/openstack_scale_scan.py [files] [jobs]
"""

import os
import sys
import tempfile
import time

from repro.common.fsutil import count_lines, iter_python_files
from repro.faultmodel import expand_api_faults
from repro.scanner import scan_tree
from repro.synth import SynthConfig, generate_codebase, scan_pattern_apis


def main() -> None:
    files = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else (os.cpu_count() or 2)

    with tempfile.TemporaryDirectory() as tmp:
        print(f"generating {files} synthetic modules...")
        stats = generate_codebase(tmp, SynthConfig(files=files, seed=7))
        lines = count_lines(iter_python_files(tmp))
        print(f"  {stats.files} files, {lines} lines "
              f"({stats.functions or '?'} functions)")

        model = expand_api_faults(scan_pattern_apis(), kinds=None)
        specs = model.enabled_specs()
        print(f"faultload: {len(specs)} DSL patterns "
              f"({len(scan_pattern_apis())} APIs x "
              f"{len(specs) // len(scan_pattern_apis())} fault templates)")

        print("\nscanning single-process...")
        started = time.monotonic()
        serial = scan_tree(tmp, specs, jobs=1)
        serial_s = time.monotonic() - started
        print(f"  {len(serial.points)} locations in {serial_s:.1f} s")

        print(f"scanning with {jobs} processes...")
        started = time.monotonic()
        parallel = scan_tree(tmp, specs, jobs=jobs)
        parallel_s = time.monotonic() - started
        print(f"  {len(parallel.points)} locations in {parallel_s:.1f} s "
              f"(speedup {serial_s / max(parallel_s, 1e-9):.1f}x)")

        assert len(serial.points) == len(parallel.points)

        by_spec = parallel.by_spec()
        top = sorted(by_spec.items(), key=lambda kv: -len(kv[1]))[:5]
        print("\nmost productive patterns:")
        for name, points in top:
            print(f"  {name:<28} {len(points):>5} locations")

        kloc = lines / 1000.0
        minutes_400k = (parallel_s / kloc) * 400 / 60
        print(f"\nextrapolation: ~{minutes_400k:.0f} min for 400 KLoC on "
              f"this host with {jobs} processes "
              "(paper: ~20 min on 8 cores)")


if __name__ == "__main__":
    main()
