#!/usr/bin/env python
"""Quickstart: write a bug spec, scan a program, generate mutants.

This walks the core ProFIPy loop from paper §III/§IV-A on an embedded
code sample:

1. write a ``change { ... } into { ... }`` bug specification;
2. compile it and scan the target source for injection points;
3. generate a mutated version (with and without the run-time trigger);
4. save the fault model as JSON and load it back.

Run:  python examples/quickstart.py
"""

import tempfile
import textwrap
from pathlib import Path

from repro import FaultModel, Mutator, compile_text, parse_spec, scan_source

#: The target program: an OpenStack-flavoured cleanup routine.
TARGET = textwrap.dedent(
    """
    def release_resources(client, ports, log):
        log.info("releasing %d ports", len(ports))
        for port in ports:
            log.debug("releasing %s", port)
            client.delete_port(port)
            log.debug("released %s", port)
        log.info("done")
    """
).strip() + "\n"

#: Fig. 1a of the paper: omit a delete_* call that has statements around
#: it (the Missing Function Call fault, tuned with domain knowledge).
MFC_SPEC = """
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}
"""


def main() -> None:
    print("=== 1. compile the bug specification ===")
    model = compile_text(MFC_SPEC, name="MFC")
    print(f"compiled: {model.describe()}\n")

    print("=== 2. scan the target for injection points ===")
    points = scan_source(TARGET, [model], file="cleanup.py")
    for point in points:
        print(f"  {point.point_id} at line {point.lineno}: {point.snippet}")
    print(f"  -> {len(points)} injection point(s)\n")

    print("=== 3a. permanent mutant (classic mutation) ===")
    mutator = Mutator(trigger=False)
    mutation = mutator.mutate_source(TARGET, model, points[0].ordinal,
                                     file="cleanup.py")
    print(textwrap.indent(mutation.source, "    "))

    print("=== 3b. trigger-controlled mutant (EDFI-style, paper IV-B) ===")
    triggered = Mutator(trigger=True).mutate_source(
        TARGET, model, points[0].ordinal, file="cleanup.py"
    )
    print(textwrap.indent(triggered.source, "    "))

    print("=== 4. persist the fault model as JSON (paper IV-A) ===")
    fault_model = FaultModel(name="quickstart")
    fault_model.add(parse_spec(MFC_SPEC, name="MFC"),
                    description="omit delete_* calls",
                    odc_class="Function")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "quickstart.json"
        fault_model.save(path)
        loaded = FaultModel.load(path)
        print(f"  saved and re-loaded fault model "
              f"{loaded.name!r} with fault types {loaded.names()}")


if __name__ == "__main__":
    main()
