#!/usr/bin/env python
"""Author a custom fault model with the DSL (paper §III).

Shows the programmability that motivates the paper: fault types tailored
with domain knowledge — exception injection at library calls, corrupted
dictionary literals, resource hogs, artificial delays — assembled into a
fault model, persisted as JSON, and used to scan a real target (the
materialized pyetcd client) with plan filtering and sampling (§IV-A).

Run:  python examples/custom_fault_model.py
"""

import tempfile
from pathlib import Path

from repro import FaultModel, parse_spec
from repro.common.rng import SeededRandom
from repro.etcdsim import materialize_target
from repro.orchestrator.plan import Plan
from repro.scanner.scan import scan_tree

#: Exception injection on urllib calls, with a per-API exception list
#: (the $PICK directive chooses one per mutant, deterministically).
THROW_SPEC = """
change {
    $CALL#c{name=urllib*; ctx=any}
} into {
    raise $PICK{choices=TimeoutError('injected')|ConnectionError('injected')}
}
"""

#: Wrong/missing initialization of a dict literal ($CORRUPT drops a key).
CORRUPT_DICT_SPEC = """
change {
    $VAR#v = {'value': $EXPR#x}
} into {
    $VAR#v = $CORRUPT({'value': $EXPR#x})
}
"""

#: High resource consumption after request dispatch ($HOG directive).
HOG_SPEC = """
change {
    $VAR#r = $CALL#c{name=*._execute}(...)
} into {
    $VAR#r = $CALL#c(...)
    $HOG{resource=memory; seconds=1; mb=32}
}
"""

#: Performance bottleneck: delay before returning results ($TIMEOUT).
DELAY_SPEC = """
change {
    return $EXPR#result
} into {
    $TIMEOUT{seconds=0.5}
    return $EXPR#result
}
"""


def build_model() -> FaultModel:
    model = FaultModel(
        name="custom_resilience",
        description="Fault types tailored for an HTTP client library",
    )
    model.add(parse_spec(THROW_SPEC, name="THROW_URLLIB"),
              description="urllib raises per-API exceptions",
              odc_class="Interface")
    model.add(parse_spec(CORRUPT_DICT_SPEC, name="CORRUPT_FIELDS"),
              description="wrong initialization of request fields",
              odc_class="Assignment")
    model.add(parse_spec(HOG_SPEC, name="MEMORY_HOG"),
              description="memory hog after request dispatch",
              odc_class="Timing/Serialization")
    model.add(parse_spec(DELAY_SPEC, name="SLOW_RETURN"),
              description="delayed responses (performance bottleneck)",
              odc_class="Timing/Serialization")
    return model


def main() -> None:
    model = build_model()
    print(f"fault model {model.name!r} with {len(model.faults)} fault types:")
    for fault in model.faults:
        print(f"  [{fault.name:<16}] {fault.odc_class:<22} "
              f"{fault.description}")

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        json_path = tmp / "custom.json"
        model.save(json_path)
        print(f"\nsaved to {json_path.name} "
              f"({json_path.stat().st_size} bytes); reloading...")
        model = FaultModel.load(json_path)

        print("\nscanning the pyetcd client (materialized target)...")
        project = materialize_target(tmp / "target")
        scan = scan_tree(project.root / "pyetcd", model.enabled_specs())
        print(f"  {len(scan.points)} injection points "
              f"in {scan.files_scanned} files")

        plan = Plan.from_points(scan.points)
        print("\nplan configuration (paper IV-A):")
        only_client = plan.filter(files=["client.py"])
        print(f"  restricted to client.py: {len(only_client)} experiments")
        only_throw = only_client.filter(spec_names=["THROW_URLLIB",
                                                    "SLOW_RETURN"])
        print(f"  two fault types only:    {len(only_throw)} experiments")
        sampled = only_throw.sample(5, SeededRandom(42))
        print(f"  random sample (seed 42): {len(sampled)} experiments")
        for experiment in sampled:
            point = experiment.point
            print(f"    {experiment.experiment_id}: {point.spec_name} "
                  f"at {point.file}:{point.lineno}")

        plan_path = tmp / "plan.json"
        sampled.save(plan_path)
        print(f"\nplan saved to {plan_path.name}; reload gives "
              f"{len(Plan.load(plan_path))} experiments")


if __name__ == "__main__":
    main()
