#!/usr/bin/env python
"""The paper's case study (§V) at example scale.

Runs one of the three Table I campaigns against the etcd simulator: scan
the python-etcd-style client, reduce the plan by coverage, execute a
sample of trigger-controlled experiments over the integration-test
workload (two rounds each), and print the failure-mode report.

Run:  python examples/etcd_case_study.py [campaign] [sample]
      campaign in {external_api, wrong_inputs, resource_hogs}
"""

import sys

from repro.casestudy import run_case_study


def main() -> None:
    campaign = sys.argv[1] if len(sys.argv) > 1 else "wrong_inputs"
    sample = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    print(f"running case-study campaign {campaign!r} "
          f"(sample of {sample} experiments)\n")
    result, report = run_case_study(
        campaign,
        sample=sample,
        command_timeout=30,
        progress=lambda message: print(f"  {message}"),
    )

    print()
    print(report.render())

    print("\n=== per-experiment drill-down (paper IV-C) ===")
    for experiment in result.experiments:
        flags = []
        if experiment.failed_round1:
            flags.append("FAILED round 1")
        if experiment.failed_round2:
            flags.append("NOT RECOVERED in round 2")
        state = "; ".join(flags) or "no failure"
        print(f"  {experiment.experiment_id}  [{experiment.spec_name}] "
              f"{state}")
        print(f"      injected: {experiment.original_snippet.splitlines()[0]}"
              f"  ->  {experiment.mutated_snippet.splitlines()[0]}")


if __name__ == "__main__":
    main()
