"""ST1 — statistical engine: sequential stopping cost and monotone resume.

The statistical campaign engine's pitch is *bounded cost*: a campaign
with a margin target stops as soon as the Wilson intervals are tight
enough, and a sampled campaign grows toward exhaustive by resume without
re-executing anything.  This bench quantifies both over a synthetic
1000-experiment plan — no sandboxes, so the numbers isolate the engine:

* sequential stopping: drawing experiments in monotone sample order and
  feeding a deterministic outcome per id into the streaming estimator,
  the margin rule (eps=0.05 at 95%) must trip in well under half the
  exhaustive cost;
* monotone resume: extending a sampled-k stream to exhaustive via
  ``Plan.excluding`` executes exactly ``N - k`` experiments and lands on
  byte-identical canonical streams (the extend-vs-uninterrupted oracle).
"""

import hashlib

from conftest import write_result

from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.plan import Plan, PlannedExperiment
from repro.orchestrator.stream import ExperimentStream
from repro.scanner.points import InjectionPoint
from repro.stats.estimate import StreamingEstimator
from repro.stats.sampler import monotone_sample, sample_order
from repro.stats.stopping import MarginBelow, MinSampleFloor

PLAN_SIZE = 1000
SEED = 7
MARGIN = 0.05
#: The margin rule must trip within this fraction of exhaustive cost.
STOP_BUDGET = 0.45
SAMPLE_K = 200


def synthetic_plan() -> Plan:
    experiments = []
    for index in range(PLAN_SIZE):
        point = InjectionPoint(
            spec_name="WRR", file=f"mod{index % 7}.py", ordinal=index,
            lineno=1, end_lineno=1, snippet="",
            component=f"comp{index % 7}",
        )
        experiments.append(PlannedExperiment(
            experiment_id=f"exp-{index:04d}", point=point))
    return Plan(experiments=experiments)


def outcome_for(experiment_id: str) -> bool:
    """Deterministic synthetic verdict: ~30% of ids fail (a pure hash of
    the id, so the 'campaign' is reproducible across processes)."""
    digest = hashlib.sha256(experiment_id.encode("utf-8")).digest()
    return digest[0] < 77  # 77/256 ~ 0.30


def synthetic_result(experiment_id: str) -> ExperimentResult:
    from repro.common.procutil import CommandResult
    from repro.workload.runner import RoundResult

    failed = outcome_for(experiment_id)
    result = ExperimentResult(
        experiment_id=experiment_id,
        point={"file": "mod0.py", "component": "comp0",
               "spec_name": "WRR"},
        spec_name="WRR", status="completed",
    )
    command = CommandResult(
        command="run", returncode=1 if failed else 0, stdout="",
        stderr="WORKLOAD FAILURE" if failed else "", duration=0.0,
    )
    result.rounds.append(RoundResult(round_no=1, fault_enabled=True,
                                     commands=[command]))
    return result


def stop_point(plan: Plan) -> tuple[int, dict]:
    """Experiments consumed before the margin rule trips, walking the
    plan in monotone sample order."""
    estimator = StreamingEstimator(confidence=0.95)
    rule = MinSampleFloor(20, MarginBelow(MARGIN))
    order = sample_order(plan, SEED)
    for drawn, planned in enumerate(order, start=1):
        estimator.observe_result(synthetic_result(planned.experiment_id))
        if rule.should_stop(estimator) is not None:
            return drawn, estimator.summary()
    return len(order), estimator.summary()


def test_sequential_stopping_beats_exhaustive_cost(benchmark):
    plan = synthetic_plan()
    n_stop, summary = benchmark(stop_point, plan)
    assert n_stop <= PLAN_SIZE * STOP_BUDGET, (
        f"margin {MARGIN} needed {n_stop}/{PLAN_SIZE} experiments"
    )
    failure = summary["modes"]["workload_failure"]
    assert failure["margin"] <= MARGIN

    write_result(
        "statistical_engine_stopping",
        f"Sequential stopping on a synthetic {PLAN_SIZE}-experiment "
        f"plan (true failure rate ~30%):\n"
        f"  margin target: {MARGIN} at 95% confidence\n"
        f"  stopped after: {n_stop} experiments "
        f"({n_stop / PLAN_SIZE * 100:.1f}% of exhaustive)\n"
        f"  workload_failure estimate: {failure['proportion']:.3f} "
        f"[{failure['low']:.3f}, {failure['high']:.3f}] "
        f"(margin {failure['margin']:.4f})\n"
        f"  cost bound asserted: <= {STOP_BUDGET * 100:.0f}% of "
        "exhaustive",
    )


def extend_to_exhaustive(plan: Plan, tmp_path):
    """Record a sampled-k prefix, extend to exhaustive via resume
    semantics, and return (re_executed, delta, grown, uninterrupted)."""
    grown = ExperimentStream(tmp_path / "grown.jsonl")
    grown.write_meta({"campaign": "bench"})
    sampled = monotone_sample(plan, SAMPLE_K, SEED)
    for planned in sampled:
        grown.append(synthetic_result(planned.experiment_id))

    # The resume path: everything recorded is excluded from the plan.
    recorded = grown.recorded_ids()
    delta = plan.excluding(recorded)
    re_executed = sum(
        1 for planned in delta if planned.experiment_id in recorded
    )
    for planned in delta:
        grown.append(synthetic_result(planned.experiment_id))

    uninterrupted = ExperimentStream(tmp_path / "full.jsonl")
    uninterrupted.write_meta({"campaign": "bench"})
    for planned in plan:
        uninterrupted.append(synthetic_result(planned.experiment_id))
    return re_executed, delta, grown, uninterrupted


def test_monotone_resume_executes_zero_recorded(benchmark, tmp_path_factory):
    plan = synthetic_plan()

    def run():
        tmp_path = tmp_path_factory.mktemp("stat-resume")
        return extend_to_exhaustive(plan, tmp_path)

    re_executed, delta, grown, uninterrupted = benchmark(run)
    assert re_executed == 0, "resume re-executed recorded experiments"
    assert len(delta) == PLAN_SIZE - SAMPLE_K
    # Byte-equality oracle: growing the sample to exhaustive lands on
    # the same canonical stream as never having sampled at all.
    assert grown.canonical_bytes() == uninterrupted.canonical_bytes()

    write_result(
        "statistical_engine_resume",
        f"Monotone resume on a synthetic {PLAN_SIZE}-experiment plan:\n"
        f"  sampled prefix: {SAMPLE_K} experiments\n"
        f"  extension executed: {len(delta)} "
        f"(= {PLAN_SIZE} - {SAMPLE_K}; re-executed: {re_executed})\n"
        "  canonical streams byte-identical: yes",
    )
