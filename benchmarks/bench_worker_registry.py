"""RB2 — worker registry: heartbeat overhead and work-steal latency.

Two numbers quantify the fleet layer this PR adds:

* **heartbeat overhead** — the coordinator-side cost of one lease
  renewal over HTTP (register once, then many ``POST
  /v1/workers/{id}/heartbeat`` round-trips carrying live load).  Every
  worker pays this once per third of a lease; it must stay far below a
  millisecond budget or fleets of workers would saturate the
  coordinator with keep-alives.
* **steal latency** — how long a campaign takes to notice a frozen
  (parked) worker and re-place the shard's unmirrored tail onto an idle
  one: the gap between "shard parked on a straggler" and "first stolen
  result recorded elsewhere".  Bounded by the stall threshold plus one
  poll/refresh cycle — the knob an operator trades recovery speed
  against false steals with.
"""

import textwrap
import threading
import time

from conftest import TOY_SPEC, write_result

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.backends import RemoteBackend
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.registry import WorkerAgent
from repro.service.service import ProFIPyService
from repro.service.shards import ShardRun
from repro.workload.spec import WorkloadSpec

HEARTBEATS = 200
FUNCTIONS = 6
STALL_SECONDS = 1.0


def build_project(base):
    project = base / "target"
    project.mkdir()
    chunks = []
    for index in range(FUNCTIONS):
        chunks.append(textwrap.dedent(
            f"""
            def compute_{index}(x):
                steps = []
                steps.append('start')
                result = x * 2 + {index}
                steps.append('done')
                return result
            """
        ).strip())
    (project / "app.py").write_text("\n\n\n".join(chunks) + "\n")
    (project / "run.py").write_text(textwrap.dedent(
        f"""
        import sys

        import app

        for index in range({FUNCTIONS}):
            value = getattr(app, "compute_" + str(index))(3)
            if value != 6 + index:
                print("WORKLOAD FAILURE", file=sys.stderr)
                sys.exit(1)
        print("WORKLOAD SUCCESS")
        """
    ).strip() + "\n")
    return project


def test_heartbeat_overhead(tmp_path):
    coordinator = ProFIPyService(tmp_path / "coordinator")
    server, _thread = start_server(coordinator)
    try:
        client = ProFIPyClient(server.url)
        view = client.register_worker({"url": "http://bench-worker:1",
                                       "max_concurrent": 4})
        load = {"running": 2, "queued": 1, "max_concurrent": 4}
        # Warm the connection/handler path before timing.
        for _ in range(10):
            client.worker_heartbeat(view["worker_id"], load)
        started = time.monotonic()
        for _ in range(HEARTBEATS):
            client.worker_heartbeat(view["worker_id"], load)
        elapsed = time.monotonic() - started
    finally:
        server.shutdown()
        coordinator.close()

    per_tick_ms = elapsed / HEARTBEATS * 1e3
    # Very loose CI-safe bound: a lease renewal is one tiny JSON POST.
    assert per_tick_ms < 250.0, f"heartbeat took {per_tick_ms:.1f} ms"
    write_result(
        "worker_registry_heartbeat",
        f"Worker registry heartbeat overhead ({HEARTBEATS} renewals over "
        "HTTP, load-carrying):\n"
        f"  mean per heartbeat: {per_tick_ms:8.3f} ms\n"
        f"  renewals/second:    {HEARTBEATS / elapsed:8.0f}\n"
        "  (a worker heartbeats every lease/3 — 5 s at the default "
        "15 s lease)",
    )


def test_steal_latency(tmp_path):
    """Freeze-free steal benchmark: the first worker parks every shard
    (accepted, never executed), the second is idle — measure
    stall-detection → first stolen result landing locally."""
    project = build_project(tmp_path)
    model = FaultModel(name="toy")
    model.add(parse_spec(TOY_SPEC, name="WRR"),
              description="wrong return value")

    coordinator = ProFIPyService(tmp_path / "coordinator",
                                 lease_seconds=5.0)
    coordinator_server, _t = start_server(coordinator)
    parker = ProFIPyService(tmp_path / "parker")
    parker_server, _t = start_server(parker)
    healthy = ProFIPyService(tmp_path / "healthy")
    healthy_server, _t = start_server(healthy)

    parked_at = []

    def park(payload):
        host = parker.shards
        with host._lock:
            shard_id = host._next_shard_id()
            directory = host.shards_dir / shard_id
            directory.mkdir(parents=True, exist_ok=True)
            run = ShardRun(shard_id=shard_id, shard=int(payload["shard"]),
                           total=len(payload["planned"]),
                           directory=directory)
            host._runs[shard_id] = run
        parked_at.append(time.monotonic())
        return host.status(shard_id)

    parker.shards.submit = park

    parker_agent = WorkerAgent("local", parker_server.url, parker.shards,
                               client=coordinator, interval=0.2)
    rescuer = WorkerAgent("local", healthy_server.url, healthy.shards,
                          client=coordinator, interval=0.2)
    agents = [parker_agent]
    saved = (RemoteBackend.stall_seconds, RemoteBackend.poll_max_seconds)
    RemoteBackend.stall_seconds = STALL_SECONDS
    RemoteBackend.poll_max_seconds = 0.5
    outcome = {}
    try:
        # Only the parker is in the fleet at campaign start, so the
        # shard deterministically lands (and parks) there; the idle
        # rescuer joins afterwards and the stall detector must move the
        # whole shard onto it.
        parker_agent.start()
        config = CampaignConfig(
            name="bench-steal",
            target_dir=project,
            fault_model=model,
            workload=WorkloadSpec(commands=["{python} run.py"],
                                  command_timeout=30.0),
            injectable_files=["app.py"],
            coverage=False,
            parallelism=2,
            backend="remote",
            shards=1,
            registry_url=coordinator_server.url,
            seed=7,
            workspace=tmp_path / "ws",
        )

        def run():
            try:
                outcome["result"] = Campaign(config).run()
                outcome["done_at"] = time.monotonic()
            except BaseException as error:  # noqa: BLE001
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 60.0
        while not parked_at and time.monotonic() < deadline:
            time.sleep(0.02)
        assert parked_at, "the parker never received the shard"
        rescuer.start()
        agents.append(rescuer)
        thread.join(timeout=240.0)
        assert not thread.is_alive(), "campaign hung"
        if "error" in outcome:
            raise outcome["error"]
        result = outcome["result"]
        assert result.executed == FUNCTIONS
        # The rescuer executed everything the parker sat on.
        assert all(parker.shards.status(run.shard_id)["recorded"] == 0
                   for run in parker.shards._runs.values())
    finally:
        RemoteBackend.stall_seconds, RemoteBackend.poll_max_seconds = saved
        for agent in agents:
            agent.stop()
        for server in (coordinator_server, parker_server, healthy_server):
            server.shutdown()
        for service in (coordinator, parker, healthy):
            service.close()

    # The headline number: shard parked on the straggler → whole stolen
    # tail executed elsewhere.  The steal itself fires within
    # stall_seconds + one poll/refresh cycle of the rescuer joining.
    steal_to_done_s = outcome["done_at"] - parked_at[0]
    assert steal_to_done_s < 120.0
    write_result(
        "worker_registry_steal",
        f"Work-steal recovery ({FUNCTIONS} experiments parked on a "
        f"straggler, stall threshold {STALL_SECONDS:g} s):\n"
        f"  park → stolen tail fully executed elsewhere: "
        f"{steal_to_done_s:6.2f} s\n"
        "  stolen tail executed entirely on the idle worker: yes",
    )
