"""Zero-copy mutant materialization: span patching vs whole-tree unparse.

The legacy mutant path deep-copies the whole module AST and re-unparses
every line of the file per mutant; span patching splices only the
mutated window (plus the runtime import) into the pristine source.  On a
large module the per-mutant cost must drop by at least 3x — that gap is
what makes statistical campaigns with thousands of mutants affordable.
"""

import time

from conftest import write_result

from repro.common.rng import SeededRandom
from repro.faultmodel.library import extended_model, gswfit_model
from repro.mutator.mutate import Mutator
from repro.scanner.cache import MatchMemo
from repro.synth import SynthConfig, generate_codebase

MIN_SPEEDUP = 3.0


def build_large_module(tmp_path) -> str:
    """One big module: the whole synthetic corpus concatenated."""
    dest = tmp_path / "corpus"
    generate_codebase(dest, SynthConfig(files=16, seed=23))
    parts = []
    for path in sorted(dest.rglob("*.py")):
        if path.name == "__init__.py":
            continue
        parts.append(path.read_text(encoding="utf-8"))
    return "\n\n".join(parts)


def collect_targets(source, models, memo, limit=60):
    targets = []
    for model in models:
        for ordinal in range(memo.count(source, model)):
            targets.append((model, ordinal))
            if len(targets) >= limit:
                return targets
    return targets


def materialize_all(mutator, source, targets):
    for model, ordinal in targets:
        mutator.mutate_source(source, model, ordinal, file="big.py")


def test_span_patching_speedup(benchmark, tmp_path):
    source = build_large_module(tmp_path)
    models = gswfit_model().compile() + extended_model().compile()
    memo = MatchMemo()
    targets = collect_targets(source, models, memo)
    assert len(targets) >= 30  # the corpus must exercise the patcher

    span = Mutator(trigger=True, rng=SeededRandom(5), match_memo=memo)
    legacy = Mutator(trigger=True, rng=SeededRandom(5),
                     match_memo=memo, span_patching=False)

    # Warm the memo so both paths pay zero matching cost in the timed
    # region: the measured difference is pure materialization.
    materialize_all(span, source, targets)
    materialize_all(legacy, source, targets)

    def best_of(mutator, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            started = time.monotonic()
            materialize_all(mutator, source, targets)
            best = min(best, time.monotonic() - started)
        return best

    legacy_time = best_of(legacy)
    span_time = best_of(span)

    benchmark(materialize_all, span, source, targets)

    assert span.patch_stats["fallback"] < span.patch_stats["patched"]
    speedup = legacy_time / max(span_time, 1e-9)
    assert speedup >= MIN_SPEEDUP, (
        f"span patching is only {speedup:.1f}x faster than whole-tree "
        f"unparse (need >= {MIN_SPEEDUP}x)"
    )

    lines = source.count("\n")
    write_result(
        "zero_copy_mutation",
        "Per-mutant materialization — whole-tree unparse vs span patch:\n"
        f"  module:   {lines} lines, {len(targets)} mutants\n"
        f"  legacy:   {legacy_time * 1000 / len(targets):.2f} ms/mutant "
        f"(deepcopy + full ast.unparse)\n"
        f"  span:     {span_time * 1000 / len(targets):.2f} ms/mutant "
        f"(two-splice source patch)\n"
        f"  speedup:  {speedup:.1f}x (threshold {MIN_SPEEDUP:.0f}x)",
    )
