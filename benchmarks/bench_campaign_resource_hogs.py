"""VC — §V-C campaign: resource management bugs (CPU hogs).

Paper: 37 injectable locations, all covered, service failures in 14
experiments; stale CPU-hogging threads starve the client, causing process
terminations and inconsistent reads; mitigation is monitoring/cleanup of
stale threads.

Here: ``$HOG`` spawns stale busy threads inside the client's hot methods
(they are daemons, so sandbox teardown always reclaims them — the paper's
container cleanup).  The shape: high coverage, experiments still
terminate within their budget, and a fraction of them fail (timeouts or
slowed-down workload assertions).
"""

from conftest import write_result

from repro.casestudy import run_case_study

SAMPLE = 6


def test_campaign_resource_hogs(benchmark, tmp_path):
    def run():
        # parallelism=None applies the adaptive N-1 rule; hog experiments
        # interfere across sandboxes if the host is oversubscribed.
        return run_case_study(
            "resource_hogs",
            workspace=tmp_path,
            command_timeout=25,
            sample=SAMPLE,
            parallelism=None,
            seed=3,
        )

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.coverage is not None
    # Nearly all hog points sit on the hot request path.
    assert result.coverage.covered_count >= result.points_found - 3
    assert result.executed == SAMPLE
    assert all(e.completed for e in result.experiments)
    # Hog experiments terminate (daemon threads die with the sandbox).
    assert all(e.duration < 180 for e in result.experiments)
    # §V-C shape: hogs on hot paths cause service failures, cold sites
    # survive — a genuine mixture, not all-or-nothing.
    assert 0 < len(result.failures) < SAMPLE

    durations = sorted(e.duration for e in result.experiments)
    write_result(
        "campaign_resource_hogs",
        "Campaign V-C (resource hogs) — paper vs measured:\n"
        "  paper:    37 points, all covered, 14 experiments with service "
        "failures\n"
        f"  measured: {result.points_found} points, "
        f"{result.coverage.covered_count} covered, "
        f"{len(result.failures)}/{result.executed} sampled experiments "
        "with failures\n"
        f"  experiment durations: min={durations[0]:.1f}s "
        f"max={durations[-1]:.1f}s\n\n"
        + report.render(),
    )
