"""VB — §V-B campaign: wrong inputs to the client API.

Paper: 66 injection points, all covered by the workload, failures in 29
experiments; modes: ``AttributeError: 'NoneType' object has no attribute
startswith``, ``EtcdKeyNotFound``, ``EtcdException: Bad response: 400 Bad
Request``.

Here: corrupted/None keys and values and negative TTLs injected at the
parameter-handling sites of the pyetcd client.  The shape to reproduce:
100% coverage (the workload exercises every public API method), a large
failure fraction, and the same three failure-mode families.
"""

from conftest import write_result

from repro.casestudy import run_case_study

SAMPLE = 16


def test_campaign_wrong_inputs(benchmark, tmp_path):
    def run():
        return run_case_study(
            "wrong_inputs",
            workspace=tmp_path,
            command_timeout=30,
            sample=SAMPLE,
            parallelism=2,
            seed=2,
        )

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)

    # Shape of §V-B: full coverage and a substantial failure fraction.
    assert result.coverage is not None
    assert result.coverage.covered_count == result.points_found
    assert result.executed == SAMPLE
    assert len(result.failures) >= SAMPLE // 3

    modes = report.distribution.counts(include_no_failure=False)
    paper_modes = {"none_input_crash", "key_not_found", "bad_request"}
    observed_paper_modes = paper_modes & set(modes)
    assert observed_paper_modes, (
        f"expected at least one of {paper_modes}, got {set(modes)}"
    )

    write_result(
        "campaign_wrong_inputs",
        "Campaign V-B (wrong inputs) — paper vs measured:\n"
        "  paper:    66 points, 66 covered, 29 experiments with failures;\n"
        "            modes: NoneType startswith, EtcdKeyNotFound, "
        "400 Bad Request\n"
        f"  measured: {result.points_found} points, "
        f"{result.coverage.covered_count} covered, "
        f"{len(result.failures)}/{result.executed} sampled experiments "
        "with failures;\n"
        f"            paper modes observed: {sorted(observed_paper_modes)}\n\n"
        + report.render(),
    )
