"""VD3 — §V-D execution: experiment durations and N-1 parallelism.

Paper: a single Python-etcd experiment takes 10–120 s (worst case a hang);
experiments parallelize with at most N-1 containers on N cores (after
Winter et al.), backing off under memory pressure.

Here: (i) the duration profile of real two-round case-study experiments,
(ii) the pool's N-1 default and its throughput scaling on
latency-dominated jobs (experiments are I/O + sleep bound).
"""

import os
import time

from conftest import write_result

from repro.casestudy import run_case_study
from repro.sandbox.limits import default_parallelism
from repro.sandbox.pool import ExperimentPool


def test_experiment_durations(benchmark, tmp_path):
    def run():
        return run_case_study(
            "wrong_inputs",
            workspace=tmp_path,
            command_timeout=30,
            sample=4,
            parallelism=2,
            seed=4,
        )

    result, _report = benchmark.pedantic(run, rounds=1, iterations=1)
    durations = sorted(e.duration for e in result.experiments)

    # Two workload rounds with a TTL wait each: experiments take seconds,
    # bounded by the command timeout (the paper's 10-120 s band scaled to
    # the simulator).
    assert durations[0] > 1.0
    assert durations[-1] < 120.0

    cores = os.cpu_count() or 1
    assert default_parallelism() == max(1, cores - 1)

    write_result(
        "parallel_execution_durations",
        "V-D experiment durations — paper vs measured:\n"
        "  paper:    10 s to 120 s per Python-etcd experiment\n"
        f"  measured: {durations[0]:.1f} s to {durations[-1]:.1f} s per "
        "two-round experiment "
        f"(n={len(durations)})\n"
        f"  N-1 rule: {cores} cores -> default parallelism "
        f"{default_parallelism()}",
    )


def test_pool_scaling(benchmark):
    delay = 0.25
    jobs = 8

    def run_with(parallelism):
        pool = ExperimentPool(parallelism=parallelism)
        started = time.monotonic()
        outcomes = pool.run(
            [lambda: time.sleep(delay) or True for _ in range(jobs)]
        )
        assert all(outcome.ok for outcome in outcomes)
        return time.monotonic() - started

    serial = run_with(1)
    parallel = benchmark.pedantic(lambda: run_with(4), rounds=1,
                                  iterations=1)

    speedup = serial / parallel if parallel > 0 else float("inf")
    # Latency-bound jobs overlap: 4-wide must beat serial clearly.
    assert speedup > 1.8

    write_result(
        "parallel_execution_scaling",
        "Pool scaling on latency-bound jobs "
        f"({jobs} jobs x {delay:.2f} s):\n"
        f"  parallelism 1: {serial:.2f} s\n"
        f"  parallelism 4: {parallel:.2f} s\n"
        f"  speedup: {speedup:.1f}x (paper: parallel fault injection "
        "utility, Winter et al.)",
    )
