"""VA — §V-A campaign: errors from external library APIs.

Paper: 26 injection points in calls to urllib/os, 13 covered by the
workload, failures in 12 experiments; failure modes include reconnection
failures (unavailability in round 2), inconsistent server state, and
client crashes due to unhandled exceptions.

Here: the same fault categories (Throw Exception / None return / omitted
call / omitted parameters) on the pyetcd client's urllib/os calls.  The
absolute counts differ (our client is smaller than python-etcd 0.4.5);
the shape must hold — partial coverage (error handlers are not reached by
a fault-free run) and a majority of covered injections failing.
"""

from conftest import write_result

from repro.casestudy import run_case_study


def test_campaign_external_api(benchmark, tmp_path):
    def run():
        return run_case_study(
            "external_api",
            workspace=tmp_path,
            command_timeout=30,
            parallelism=2,
            seed=1,
        )

    result, report = benchmark.pedantic(run, rounds=1, iterations=1)

    # Shape of §V-A: partial coverage, and most covered faults bite.
    assert result.coverage is not None
    assert 0 < result.coverage.covered_count < result.points_found
    assert result.executed == result.coverage.covered_count
    assert len(result.failures) >= result.executed // 2

    availability = report.availability
    write_result(
        "campaign_external_api",
        "Campaign V-A (external API errors) — paper vs measured:\n"
        "  paper:    26 points, 13 covered, 12 experiments with failures\n"
        f"  measured: {result.points_found} points, "
        f"{result.coverage.covered_count} covered, "
        f"{len(result.failures)} experiments with failures\n"
        f"  round-2 availability: {availability.available}/"
        f"{availability.total}\n\n"
        + report.render(),
    )
