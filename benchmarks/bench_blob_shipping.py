"""RB3 — content-addressed target shipping: cold vs warm dispatch.

The remote backend ships the target image by content (``/v1/blobs``)
instead of assuming a filesystem shared with every worker.  The
questions this bench answers: what does a cold dispatch cost (empty
worker cache — every blob uploads over HTTP), what does a warm one cost
(one batched ``missing`` probe, nothing ships), and does a re-campaign
over the unchanged target really put **zero** blob bytes on the wire?

Method: snapshot a staged image into a manifest, then replay the exact
sync the dispatcher runs per placement (probe + upload of the missing
subset) against a cold and then a warm worker.  Then run the same
remote campaign twice against one worker with every ``put_blob``
counted: the second run must upload nothing.
"""

import time

from conftest import TOY_SPEC, write_result

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.sandbox.image import SandboxImage
from repro.service.blobs import BlobStore, ImageManifest
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService
from repro.workload.spec import WorkloadSpec

#: Synthetic target size: enough files that the batched probe matters.
FILES = 40
FILE_BYTES = 4096


def build_project(base):
    project = base / "target"
    project.mkdir()
    for index in range(FILES):
        filler = f"# module {index}\n" + ("x" * 63 + "\n") * (
            FILE_BYTES // 64
        )
        (project / f"mod_{index:03d}.py").write_text(filler)
    (project / "app.py").write_text(
        "def compute(x):\n"
        "    steps = []\n"
        "    steps.append('start')\n"
        "    return x * 2 + 1\n"
    )
    (project / "run.py").write_text(
        "import sys\n"
        "import app\n"
        "sys.exit(0 if app.compute(3) == 7 else 1)\n"
    )
    return project


def make_config(project, workspace, worker_url):
    model = FaultModel(name="toy")
    model.add(parse_spec(TOY_SPEC, name="WRR"),
              description="wrong return value")
    return CampaignConfig(
        name="bench-blobs",
        target_dir=project,
        fault_model=model,
        workload=WorkloadSpec(commands=["{python} run.py"],
                              command_timeout=30.0),
        injectable_files=["app.py"],
        coverage=False,
        parallelism=2,
        backend="remote",
        shards=1,
        workers=[worker_url],
        seed=7,
        workspace=workspace,
    )


def sync(client, manifest, store):
    """The dispatcher's per-placement blob sync, verbatim."""
    missing = client.missing_blobs(manifest.digests())
    shipped = 0
    for digest in missing:
        data = store.get_bytes(digest)
        client.put_blob(digest, data)
        shipped += len(data)
    return len(missing), shipped


def test_blob_shipping_cold_vs_warm(tmp_path, monkeypatch):
    project = build_project(tmp_path)
    image = SandboxImage.build(project, tmp_path / "image")
    store = BlobStore(tmp_path / "blobs")
    manifest = ImageManifest.from_image(image, store=store)

    # Two workers: one for the sync micro-bench, one kept cold for the
    # campaign half (so campaign #1 genuinely ships the tree).
    services = [ProFIPyService(tmp_path / f"worker-{index}")
                for index in range(2)]
    servers = [start_server(service)[0] for service in services]
    try:
        client = ProFIPyClient(servers[0].url)
        # -- cold dispatch: every blob crosses the wire -------------------
        started = time.monotonic()
        cold_missing, cold_bytes = sync(client, manifest, store)
        cold_s = time.monotonic() - started
        assert cold_missing == len(manifest.digests())
        assert cold_bytes >= manifest.total_bytes()

        # -- warm dispatch: one batched probe, nothing ships --------------
        started = time.monotonic()
        warm_missing, warm_bytes = sync(client, manifest, store)
        warm_s = time.monotonic() - started
        assert (warm_missing, warm_bytes) == (0, 0)

        # -- re-campaign bytes-on-wire ------------------------------------
        uploaded = []
        original_put = ProFIPyClient.put_blob

        def counting_put(self, digest, data):
            uploaded.append(len(data))
            return original_put(self, digest, data)

        monkeypatch.setattr(ProFIPyClient, "put_blob", counting_put)
        first = Campaign(make_config(project, tmp_path / "ws-1",
                                     servers[1].url)).run()
        assert first.executed >= 1
        first_bytes = sum(uploaded)
        assert first_bytes > 0, "cold campaign shipped no blobs"
        uploaded.clear()
        second = Campaign(make_config(project, tmp_path / "ws-2",
                                      servers[1].url)).run()
        assert second.executed == first.executed
        second_bytes = sum(uploaded)
        assert second_bytes == 0, (
            f"re-campaign re-uploaded {second_bytes} blob bytes"
        )
    finally:
        for server in servers:
            server.shutdown()
        for service in services:
            service.close()

    write_result(
        "blob_shipping",
        f"Content-addressed target shipping ({len(manifest.entries)} "
        f"files, {manifest.total_bytes() / 1024:.0f} KiB tree):\n"
        f"  cold dispatch (probe + {cold_missing} uploads, "
        f"{cold_bytes / 1024:.0f} KiB): {cold_s * 1e3:7.1f} ms\n"
        f"  warm dispatch (probe only, 0 uploads):       "
        f"{warm_s * 1e3:7.1f} ms\n"
        f"  campaign #1 blob bytes on the wire: {first_bytes / 1024:.0f} "
        f"KiB\n"
        f"  campaign #2 blob bytes on the wire: {second_bytes} "
        "(asserted == 0)",
    )
