"""TAB1 — Table I: the three case-study fault categories.

Regenerates the Table I rows (fault category / injection target / example
injections) from the implemented campaign fault models, and verifies that
each category produces a non-trivial faultload on the pyetcd client.  The
benchmark measures compiling all three campaign models and scanning the
client with them.
"""

from conftest import write_result

from repro.analysis.report import format_table
from repro.etcdsim.target import materialize_target
from repro.faultmodel.casestudy import (
    ALL_CAMPAIGNS,
    TABLE1_ROWS,
    all_campaign_models,
    campaign_model,
)
from repro.scanner.scan import scan_source


def test_table1_faultload(benchmark, tmp_path):
    project = materialize_target(tmp_path / "target")
    client_source = project.client_file.read_text(encoding="utf-8")

    def compile_and_scan():
        counts = {}
        for campaign, model in all_campaign_models().items():
            compiled = model.compile()
            points = scan_source(client_source, compiled,
                                 file="pyetcd/client.py")
            counts[campaign] = (len(compiled), len(points))
        return counts

    counts = benchmark(compile_and_scan)

    # Table I shape: every campaign defines fault types and finds points.
    for campaign in ALL_CAMPAIGNS:
        fault_types, points = counts[campaign]
        assert fault_types >= 3
        assert points >= 10
    # Campaign B (wrong inputs) is the largest, as in the paper (66 > 37).
    assert counts["wrong_inputs"][1] > counts["resource_hogs"][1]
    assert counts["wrong_inputs"][1] > counts["external_api"][1]

    rows = []
    for (category, target, examples), campaign in zip(TABLE1_ROWS,
                                                      ALL_CAMPAIGNS):
        fault_types, points = counts[campaign]
        rows.append([category, target, examples,
                     str(fault_types), str(points)])
    table = format_table(
        ["Fault Category", "Injection Target", "Examples of Injections",
         "fault types", "points"],
        rows,
    )
    descriptions = []
    for campaign in ALL_CAMPAIGNS:
        model = campaign_model(campaign)
        for fault in model.faults:
            descriptions.append(f"  {fault.name:<26} {fault.description}")
    write_result(
        "table1_faultload",
        "Table I (reproduced):\n" + table
        + "\n\nImplemented fault types:\n" + "\n".join(descriptions),
    )
