"""Shared fixtures and reporting helpers for the benchmark suite.

Every benchmark regenerates one table/figure of the paper (see DESIGN.md
§3).  Besides the pytest-benchmark timings, each bench writes the
paper-style rows to ``benchmarks/results/<name>.txt`` so the measured
numbers survive output capture; EXPERIMENTS.md collects them.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.synth import SynthConfig, generate_codebase
from repro.workload.spec import WorkloadSpec

RESULTS_DIR = Path(__file__).parent / "results"

TOY_APP = textwrap.dedent(
    """
    def compute(x):
        steps = []
        steps.append('start')
        result = x * 2
        steps.append('done')
        return result


    def unused_helper(x):
        marker = []
        marker.append('unused')
        result = x + 1
        marker.append('end')
        return result
    """
).strip() + "\n"

TOY_RUN = textwrap.dedent(
    """
    import sys

    import app

    value = app.compute(3)
    if value != 6:
        print("WORKLOAD FAILURE: compute(3) ==", value, file=sys.stderr)
        sys.exit(1)
    print("WORKLOAD SUCCESS")
    """
).strip() + "\n"

TOY_SPEC = """
change {
    $BLOCK{tag=pre; stmts=1,*}
    return $EXPR#v
} into {
    $BLOCK{tag=pre}
    return -1
}
"""


def write_result(name: str, text: str) -> None:
    """Persist a paper-style table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text.rstrip() + "\n", encoding="utf-8")
    print(f"\n[{name}]\n{text}")


@pytest.fixture(scope="session")
def synth_corpus(tmp_path_factory):
    """A small synthetic OpenStack-flavoured corpus (seeded)."""
    dest = tmp_path_factory.mktemp("synth-corpus")
    stats = generate_codebase(dest, SynthConfig(files=24, seed=11))
    return dest, stats


@pytest.fixture
def toy_project(tmp_path):
    project = tmp_path / "toy"
    project.mkdir()
    (project / "app.py").write_text(TOY_APP)
    (project / "run.py").write_text(TOY_RUN)
    return project


@pytest.fixture
def toy_model():
    model = FaultModel(name="toy")
    model.add(parse_spec(TOY_SPEC, name="WRR"),
              description="wrong return value")
    return model


@pytest.fixture
def toy_workload():
    return WorkloadSpec(commands=["{python} run.py"], command_timeout=30.0)
