"""Incremental tree scan: a k-file change re-scans k files, not N.

A re-campaign over a tree the tool has already scanned should cost work
proportional to what actually changed.  The stat manifest lets unchanged
files skip read+hash entirely, and the tree manifest serves a fully
unchanged tree from one cache entry.  The bench asserts the bookkeeping
(reads == k, stat trusts == N - k) and that the warm re-scan beats the
cold scan wall-clock.
"""

import os
import time

from conftest import write_result

from repro.faultmodel.library import extended_model, gswfit_model
from repro.scanner.cache import ScanCache
from repro.scanner.scan import scan_tree
from repro.synth import SynthConfig, generate_codebase

CHANGED = 3


def touch(path):
    stat = path.stat()
    path.write_text(path.read_text(encoding="utf-8") + "\n# touched\n",
                    encoding="utf-8")
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000_000,
                       stat.st_mtime_ns + 1_000_000_000))


def test_incremental_rescan_cost(benchmark, tmp_path):
    project = tmp_path / "project"
    generate_codebase(project, SynthConfig(files=40, seed=31))
    specs = (gswfit_model().enabled_specs()
             + extended_model().enabled_specs())
    files = sorted(project.rglob("*.py"))
    cache = ScanCache(tmp_path / "cache")

    started = time.monotonic()
    cold = scan_tree(project, specs, cache=cache)
    cold_time = time.monotonic() - started
    assert cache.stats()["files_read"] == len(files)

    started = time.monotonic()
    unchanged = scan_tree(project, specs, cache=cache)
    unchanged_time = time.monotonic() - started
    stats = cache.stats()
    assert unchanged.points == cold.points
    assert stats["files_read"] == len(files)  # no new reads at all
    assert stats["tree_hits"] == 1

    for path in files[:CHANGED]:
        touch(path)
    before = cache.stats()
    started = time.monotonic()
    scan_tree(project, specs, cache=cache)
    changed_time = time.monotonic() - started
    after = cache.stats()
    assert after["files_read"] - before["files_read"] == CHANGED
    assert (after["stat_hits"] - before["stat_hits"]
            == len(files) - CHANGED)

    benchmark(scan_tree, project, specs, cache=cache)

    # Loose wall-clock sanity: a warm re-scan must not cost a cold scan.
    assert unchanged_time < cold_time

    write_result(
        "incremental_scan",
        "Re-campaign scan cost over a cached tree "
        f"({len(files)} files):\n"
        f"  cold scan:           {cold_time * 1000:.0f} ms "
        f"({len(files)} files read)\n"
        f"  unchanged re-scan:   {unchanged_time * 1000:.0f} ms "
        "(0 files read, 1 tree-manifest hit)\n"
        f"  {CHANGED}-file re-scan:      {changed_time * 1000:.0f} ms "
        f"({CHANGED} files read, {len(files) - CHANGED} stat trusts)",
    )
