"""VD2 — §V-D performance at OpenStack scale.

Paper: scanning Nova+Neutron+Cinder (~400 KLoC) with 120 DSL patterns
identifies 17,488 injectable locations in ~20 minutes on an 8-core Xeon —
"reasonable for practical purposes", because scan parallelizes perfectly
across files.

Here: a seeded synthetic codebase with the same statement idioms and a
programmatically expanded 120-pattern faultload (20 API globs x 6 fault
templates).  We measure locations/second and extrapolate to 400 KLoC; the
benchmark also demonstrates the multi-process scan path.
"""

import os
import time

from conftest import write_result

from repro.common.fsutil import count_lines, iter_python_files
from repro.faultmodel.library import expand_api_faults
from repro.scanner.scan import scan_tree
from repro.synth import SynthConfig, generate_codebase, scan_pattern_apis

PAPER_KLOC = 400.0
PAPER_LOCATIONS = 17488
PAPER_MINUTES = 20.0


def test_scan_at_scale(benchmark, tmp_path_factory):
    dest = tmp_path_factory.mktemp("synth-large")
    stats = generate_codebase(dest, SynthConfig(files=36, seed=42))
    lines = count_lines(iter_python_files(dest))

    model = expand_api_faults(scan_pattern_apis(), kinds=None,
                              model_name="vd2")
    specs = model.enabled_specs()
    assert len(specs) == 120  # the paper's pattern count

    jobs = max(1, (os.cpu_count() or 2))

    def scan():
        return scan_tree(dest, specs, jobs=jobs)

    started = time.monotonic()
    result = benchmark.pedantic(scan, rounds=1, iterations=1)
    elapsed = time.monotonic() - started

    assert not result.parse_errors
    assert len(result.points) > 500

    locations_per_kloc = len(result.points) / (lines / 1000.0)
    extrapolated_minutes = (elapsed / (lines / 1000.0)) * PAPER_KLOC / 60.0
    write_result(
        "perf_scan_large",
        "V-D scan at scale — paper vs measured:\n"
        f"  paper:    {PAPER_KLOC:.0f} KLoC, 120 patterns -> "
        f"{PAPER_LOCATIONS} locations in ~{PAPER_MINUTES:.0f} min "
        "(8 cores)\n"
        f"  measured: {lines / 1000.0:.1f} KLoC ({stats.files} files), "
        f"120 patterns -> {len(result.points)} locations in "
        f"{elapsed:.1f} s with {jobs} process(es)\n"
        f"  density:  {locations_per_kloc:.0f} locations/KLoC "
        f"(paper: {PAPER_LOCATIONS / PAPER_KLOC:.0f})\n"
        f"  extrapolated to 400 KLoC on this host: "
        f"~{extrapolated_minutes:.0f} min "
        "(scan is embarrassingly parallel across files)",
    )
