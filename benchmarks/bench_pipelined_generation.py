"""EX2 — pipelined vs batched mutant pre-generation (memory + wall-clock).

The PR 2 engine materialized every mutant of the plan before the fan-out:
peak memory O(plan × file size).  The pipelined engine generates one
``(file, spec)`` group at a time from the job generator while the pool
executes earlier groups, so peak memory is bounded by the largest group —
and wall-clock must not regress, because generation overlaps execution.

Measured here with ``tracemalloc`` (resettable peak, unlike ``ru_maxrss``)
over a plan of many padded files, each file its own group:

* pipelined peak allocation must stay bounded by a couple of groups, far
  below the batched path's whole-plan peak;
* pipelined wall-clock at parallelism 4 must be no slower than batched.
"""

import textwrap
import time
import tracemalloc

from conftest import write_result

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.sandbox.pool import ExperimentPool
from repro.scanner.scan import scan_file
from repro.workload.spec import WorkloadSpec

FILES = 20
PARALLEL = 4
#: Padding per file so mutant sources dominate the allocation profile
#: (each mutant holds the whole mutated file as a string).
PAD_BYTES = 48 * 1024

SPEC = """
change {
    $BLOCK{tag=pre; stmts=1,*}
    return $EXPR#v
} into {
    $BLOCK{tag=pre}
    return -1
}
"""


def make_project(root, files=FILES):
    """One injection point per file; each file padded to PAD_BYTES so a
    materialized mutant is expensive and the plan's worth is FILES× that.

    The pad is a string *constant* (not comments): mutants are
    re-unparsed from the AST, and only constants survive into the
    mutated source."""
    pad = f'_PAD = "{"x" * PAD_BYTES}"\n'
    for index in range(files):
        (root / f"mod_{index:02d}.py").write_text(textwrap.dedent(
            f"""
            def compute(x):
                steps = []
                steps.append('start')
                result = x * 2 + {index}
                steps.append('done')
                return result
            """
        ).strip() + "\n\n\n" + pad)
    (root / "run.py").write_text(textwrap.dedent(
        f"""
        import sys

        failures = []
        for index in range({files}):
            mod = __import__("mod_%02d" % index)
            if mod.compute(3) != 6 + index:
                failures.append(index)
        if failures:
            print("WORKLOAD FAILURE:", failures, file=sys.stderr)
            sys.exit(1)
        print("WORKLOAD SUCCESS")
        """
    ).strip() + "\n")


def build_fixture(tmp_path):
    project = tmp_path / "target"
    project.mkdir()
    make_project(project)
    model = FaultModel(name="bench")
    model.add(parse_spec(SPEC, name="WRR"), description="wrong return")
    models = {m.name: m for m in model.compile()}
    points = []
    for index in range(FILES):
        scan = scan_file(project / f"mod_{index:02d}.py", model.compile(),
                         root=project)
        points.extend(scan.points)
    assert len(points) == FILES
    plan = Plan.from_points(points, prefix="bench")
    image = SandboxImage.build(project, tmp_path / "image")
    workload = WorkloadSpec(commands=["{python} run.py"],
                            command_timeout=30.0)
    return image, workload, models, plan


def run_engine(image, workload, models, plan, base_dir, pipelined):
    """One execution pass; returns (seconds, tracemalloc peak bytes)."""
    executor = ExperimentExecutor(
        image=image, workload=workload, models=models,
        base_dir=base_dir, trigger=True, campaign_seed=0,
    )
    pool = ExperimentPool(parallelism=PARALLEL)
    tracemalloc.reset_peak()
    baseline, _peak = tracemalloc.get_traced_memory()
    started = time.monotonic()
    if pipelined:
        def jobs():
            for planned, mutation in executor.iter_mutations(plan):
                yield (lambda p=planned, m=mutation:
                       executor.run(p, mutation=m))
        outcomes = pool.run(jobs(), retain_results=False)
    else:
        mutations = executor.prepare_mutations(plan)  # the PR 2 batch

        def jobs():
            for planned in plan:
                yield (lambda p=planned:
                       executor.run(p, mutation=mutations.pop(
                           p.experiment_id, None)))
        outcomes = pool.run(jobs(), retain_results=False)
    elapsed = time.monotonic() - started
    _size, peak = tracemalloc.get_traced_memory()
    assert len(outcomes) == len(plan)
    assert all(outcome.ok for outcome in outcomes)
    # Peak *growth* during this pass (reset_peak pins the peak to the
    # pre-pass size, so subtracting the baseline isolates the engine).
    return elapsed, max(0, peak - baseline)


def test_pipelined_generation(benchmark, tmp_path):
    image, workload, models, plan = build_fixture(tmp_path)

    def pass_dir(name):
        path = tmp_path / name
        path.mkdir(exist_ok=True)
        return path

    tracemalloc.start()
    try:
        # Warm-up: page-cache and import costs land outside the passes.
        run_engine(image, workload, models, list(plan)[:1],
                   pass_dir("warm"), pipelined=True)

        batched_seconds, batched_peak = run_engine(
            image, workload, models, plan, pass_dir("batched"),
            pipelined=False,
        )
        pipelined_seconds, pipelined_peak = benchmark.pedantic(
            lambda: run_engine(image, workload, models, plan,
                               pass_dir("pipelined"), pipelined=True),
            rounds=1, iterations=1,
        )
    finally:
        tracemalloc.stop()

    group_bytes = PAD_BYTES  # one (file, spec) group ≈ one padded source
    # Batched materializes the whole plan's mutants at once...
    assert batched_peak > group_bytes * (FILES - 2), (
        f"batched peak {batched_peak} unexpectedly small - "
        "fixture no longer exercises whole-plan materialization"
    )
    # ... while the pipelined producer holds O(one group): the pristine
    # source, the group being generated, and the PARALLEL in-flight
    # mutants — a constant independent of FILES (grow the plan and only
    # the batched peak grows), far below the plan-sized batch.
    assert pipelined_peak < batched_peak * 0.65, (
        f"pipelined peak {pipelined_peak} vs batched {batched_peak}"
    )
    assert pipelined_peak < group_bytes * (PARALLEL + 8), (
        f"pipelined peak {pipelined_peak} not bounded by group size"
    )
    # Pipelining overlaps generation with execution: no wall-clock
    # regression at parallelism 4 (generous margin - experiments spawn
    # real subprocesses, so single-run timing is noisy).
    assert pipelined_seconds <= batched_seconds * 1.35, (
        f"pipelined {pipelined_seconds:.2f}s vs "
        f"batched {batched_seconds:.2f}s"
    )

    count = len(plan)
    write_result(
        "pipelined_generation",
        f"Pipelined vs batched mutant generation "
        f"({count} experiments, parallelism {PARALLEL}, "
        f"{PAD_BYTES // 1024} KiB per source file):\n"
        f"  batched   : {batched_seconds:.2f} s, "
        f"peak alloc {batched_peak / 1024:.0f} KiB (whole plan)\n"
        f"  pipelined : {pipelined_seconds:.2f} s, "
        f"peak alloc {pipelined_peak / 1024:.0f} KiB "
        "(bounded by one (file, spec) group)\n"
        f"  memory ratio: {batched_peak / max(1, pipelined_peak):.1f}x "
        "lower peak, wall-clock parity",
    )
