"""Ablation — trigger-controlled vs. permanent injection (§IV-B).

The EDFI-style trigger is what enables the two-round availability analysis:
with the trigger, round 2 runs fault-free and only *persistent* error
states fail; in permanent mode the fault stays active, so round 2 conflates
fault activation with unrecovered state.  This ablation runs the same
faultload both ways and compares round-2 failure rates.
"""

from conftest import write_result

from repro.casestudy import case_study_config
from repro.orchestrator.campaign import Campaign

SAMPLE = 5


def _run(tmp_path, trigger: bool):
    config = case_study_config(
        "wrong_inputs", tmp_path,
        command_timeout=30, sample=SAMPLE, parallelism=2, seed=5,
    )
    config.trigger = trigger
    config.workspace = tmp_path / f"ws-{'trigger' if trigger else 'perm'}"
    return Campaign(config).run()


def test_trigger_vs_permanent(benchmark, tmp_path):
    triggered = benchmark.pedantic(lambda: _run(tmp_path, True),
                                   rounds=1, iterations=1)
    permanent = _run(tmp_path, False)

    assert triggered.executed == permanent.executed == SAMPLE
    # Same faultload: round-1 behaviour matches across modes.
    assert len(triggered.failures_round1) == len(permanent.failures_round1)
    # Permanent mode keeps failing in round 2 wherever round 1 failed;
    # the trigger recovers everything except genuinely persistent state.
    assert (len(permanent.failures_round2)
            >= len(triggered.failures_round2))
    assert len(permanent.failures_round2) >= len(
        permanent.failures_round1
    ) - 1  # allow flaky corruption variance

    write_result(
        "ablation_trigger",
        "Trigger ablation (same faultload, sample of "
        f"{SAMPLE} wrong-input experiments):\n"
        "                     round-1 fail   round-2 fail\n"
        f"  trigger (EDFI):   {len(triggered.failures_round1):>10}   "
        f"{len(triggered.failures_round2):>10}\n"
        f"  permanent mutant: {len(permanent.failures_round1):>10}   "
        f"{len(permanent.failures_round2):>10}\n"
        "Round-2 failures under the trigger isolate *unrecovered* error "
        "states\n(the paper's service availability metric); permanent "
        "mode cannot\nseparate them from plain fault re-activation.",
    )
