"""FIG1 — the three Fig. 1 bug specifications (MFC, MIFS, WPF).

Reproduces the paper's flagship DSL examples: each spec compiles, finds
injection points in OpenStack-flavoured code, and generates syntactically
valid mutants.  The benchmark measures compile+scan throughput per spec,
and the result table reports match counts on the synthetic corpus.
"""

import ast

from conftest import write_result

from repro.common.fsutil import count_lines, iter_python_files
from repro.dsl.compiler import compile_text
from repro.mutator.mutate import Mutator
from repro.scanner.scan import scan_source

FIG1_SPECS = {
    # Fig. 1a: missing function call on delete_* APIs.
    "MFC": """
    change {
        $BLOCK{tag=b1; stmts=1,*}
        $CALL{name=delete_*}(...)
        $BLOCK{tag=b2; stmts=1,*}
    } into {
        $BLOCK{tag=b1}
        $BLOCK{tag=b2}
    }
    """,
    # Fig. 1b: missing IF construct plus statements guarding `node`.
    "MIFS": """
    change {
        if $EXPR{var=node} :
            $BLOCK{stmts=1,4}
            continue
    } into {
    }
    """,
    # Fig. 1c: wrong parameter (corrupted flag string) in utils.execute.
    "WPF": """
    change {
        $CALL#c{name=utils.execute}(..., $STRING#s{val=*-*}, ...)
    } into {
        $CALL#c(..., $CORRUPT($STRING#s), ...)
    }
    """,
}


def _corpus_sources(synth_corpus):
    root, _stats = synth_corpus
    return {
        str(path.relative_to(root)): path.read_text(encoding="utf-8")
        for path in iter_python_files(root)
    }


def _scan_corpus(sources, model):
    points = []
    for file, source in sources.items():
        points.extend(scan_source(source, [model], file=file))
    return points


def test_fig1a_mfc(benchmark, synth_corpus):
    sources = _corpus_sources(synth_corpus)
    model = compile_text(FIG1_SPECS["MFC"], name="MFC")
    points = benchmark(lambda: _scan_corpus(sources, model))
    assert points, "Fig. 1a pattern must match the corpus"


def test_fig1b_mifs(benchmark, synth_corpus):
    sources = _corpus_sources(synth_corpus)
    model = compile_text(FIG1_SPECS["MIFS"], name="MIFS")
    points = benchmark(lambda: _scan_corpus(sources, model))
    assert points, "Fig. 1b pattern must match the corpus"


def test_fig1c_wpf(benchmark, synth_corpus):
    sources = _corpus_sources(synth_corpus)
    model = compile_text(FIG1_SPECS["WPF"], name="WPF")
    points = benchmark(lambda: _scan_corpus(sources, model))
    assert points, "Fig. 1c pattern must match the corpus"


def test_fig1_mutants_valid_and_summary(benchmark, synth_corpus):
    """Generate one mutant per spec (all must parse) and emit the table."""
    root, stats = synth_corpus
    sources = _corpus_sources(synth_corpus)
    lines = count_lines(iter_python_files(root))
    rows = []

    def generate_all():
        generated = 0
        for name, spec_text in FIG1_SPECS.items():
            model = compile_text(spec_text, name=name)
            for file, source in sources.items():
                matches = scan_source(source, [model], file=file)
                for point in matches[:2]:
                    mutation = Mutator(trigger=True).mutate_source(
                        source, model, point.ordinal, file=file
                    )
                    ast.parse(mutation.source)
                    generated += 1
        return generated

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    assert generated > 0

    for name, spec_text in FIG1_SPECS.items():
        model = compile_text(spec_text, name=name)
        total = sum(
            len(scan_source(source, [model], file=file))
            for file, source in sources.items()
        )
        rows.append(f"{name:<6} matches: {total:>5}")
    write_result(
        "fig1_dsl_patterns",
        "Fig. 1 specs on the synthetic corpus "
        f"({stats.files} files, {lines} lines):\n" + "\n".join(rows)
        + f"\ntrigger-mode mutants generated and parsed: {generated}",
    )
