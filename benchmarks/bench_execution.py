"""EX1 — execution engine: batched pre-generation + streaming throughput.

Paper §IV-B dominates campaign wall-clock once the scan is fast (PR 1).
This bench measures experiments/sec on a synthetic plan and compares the
streaming engine (mutants pre-generated serially before the fan-out,
results appended to ``experiments.jsonl``) against the seed-style inline
path (each experiment mutates inside its own critical section):

* at parallelism 1 the batched path must not be slower (the same work
  moved out of the loop, minus repeated parse+match);
* at parallelism N the engine must beat the serial seed path outright.
"""

import textwrap
import time

from conftest import write_result

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.orchestrator.stream import ExperimentStream
from repro.sandbox.image import SandboxImage
from repro.sandbox.pool import ExperimentPool
from repro.scanner.scan import scan_file
from repro.workload.spec import WorkloadSpec

FUNCTIONS = 6
PARALLEL = 4

SPEC = """
change {
    $BLOCK{tag=pre; stmts=1,*}
    return $EXPR#v
} into {
    $BLOCK{tag=pre}
    return -1
}
"""


def make_project(root, functions=FUNCTIONS):
    """A synthetic target with one injection point per function."""
    chunks = []
    for index in range(functions):
        chunks.append(textwrap.dedent(
            f"""
            def compute_{index}(x):
                steps = []
                steps.append('start')
                result = x * 2 + {index}
                steps.append('done')
                return result
            """
        ).strip())
    (root / "app.py").write_text("\n\n\n".join(chunks) + "\n")
    (root / "run.py").write_text(textwrap.dedent(
        f"""
        import sys
        import time

        import app

        # Real experiments are latency-bound (paper §V-D: 10-120 s of
        # service waits per experiment); model that with a short wait so
        # the parallel fan-out has overlap to exploit.
        time.sleep(0.15)
        for index in range({functions}):
            value = getattr(app, "compute_" + str(index))(3)
            if value != 6 + index:
                print("WORKLOAD FAILURE:", index, value, file=sys.stderr)
                sys.exit(1)
        print("WORKLOAD SUCCESS")
        """
    ).strip() + "\n")


def build_fixture(tmp_path):
    project = tmp_path / "target"
    project.mkdir()
    make_project(project)
    model = FaultModel(name="bench")
    model.add(parse_spec(SPEC, name="WRR"), description="wrong return")
    models = {m.name: m for m in model.compile()}
    scan = scan_file(project / "app.py", model.compile(), root=project)
    assert len(scan.points) == FUNCTIONS
    plan = Plan.from_points(scan.points, prefix="bench")
    image = SandboxImage.build(project, tmp_path / "image")
    workload = WorkloadSpec(commands=["{python} run.py"],
                            command_timeout=30.0)
    return image, workload, models, plan


def run_engine(image, workload, models, plan, base_dir, parallelism,
               batched, stream_path=None):
    """One execution-phase pass; returns (seconds, results-per-sec)."""
    executor = ExperimentExecutor(
        image=image, workload=workload, models=models,
        base_dir=base_dir, trigger=True, campaign_seed=0,
    )
    stream = ExperimentStream(stream_path) if stream_path else None
    started = time.monotonic()
    mutations = executor.prepare_mutations(plan) if batched else {}
    pool = ExperimentPool(parallelism=parallelism)

    def job_for(planned):
        def job():
            return executor.run(
                planned, mutation=mutations.pop(planned.experiment_id, None)
            )
        return job

    def on_result(outcome):
        assert outcome.ok, outcome.error
        if stream is not None:
            stream.append(outcome.result)

    outcomes = pool.run((job_for(p) for p in plan), on_result=on_result,
                        retain_results=False)
    elapsed = time.monotonic() - started
    assert len(outcomes) == len(plan)
    return elapsed


def test_execution_throughput(benchmark, tmp_path):
    image, workload, models, plan = build_fixture(tmp_path)

    def pass_dir(name):
        path = tmp_path / name
        path.mkdir(exist_ok=True)
        return path

    # Warm-up: first sandbox instantiation pays page-cache costs.
    run_engine(image, workload, models, list(plan)[:1], pass_dir("warm"), 1,
               batched=True)

    inline_p1 = run_engine(image, workload, models, plan,
                           pass_dir("inline-p1"), 1, batched=False)
    batched_p1 = benchmark.pedantic(
        lambda: run_engine(image, workload, models, plan,
                           pass_dir("batched-p1"), 1, batched=True,
                           stream_path=tmp_path / "p1.jsonl"),
        rounds=1, iterations=1,
    )
    batched_pn = run_engine(image, workload, models, plan,
                            pass_dir("batched-pn"), PARALLEL, batched=True,
                            stream_path=tmp_path / "pn.jsonl")

    count = len(plan)
    rate = lambda seconds: count / seconds if seconds > 0 else float("inf")

    # Streamed results landed on disk, one line per experiment.
    assert len(ExperimentStream(tmp_path / "p1.jsonl").recorded_ids()) == count
    assert len(ExperimentStream(tmp_path / "pn.jsonl").recorded_ids()) == count

    # Batched pre-generation must not lose to the inline seed path at
    # parallelism 1 (generous margin: each experiment spawns real
    # subprocesses, so single-run timing is noisy) ...
    assert batched_p1 <= inline_p1 * 1.35, (
        f"batched p1 {batched_p1:.2f}s vs inline p1 {inline_p1:.2f}s"
    )
    # ... and the engine at parallelism N must beat the serial seed path.
    assert batched_pn < inline_p1, (
        f"batched p{PARALLEL} {batched_pn:.2f}s vs inline p1 {inline_p1:.2f}s"
    )

    write_result(
        "execution_engine",
        f"Execution engine throughput ({count} two-round experiments):\n"
        f"  inline  p1: {inline_p1:.2f} s ({rate(inline_p1):.2f} exp/s) "
        "[seed-style: mutate inside the critical section]\n"
        f"  batched p1: {batched_p1:.2f} s ({rate(batched_p1):.2f} exp/s)\n"
        f"  batched p{PARALLEL}: {batched_pn:.2f} s "
        f"({rate(batched_pn):.2f} exp/s)\n"
        f"  speedup p{PARALLEL} vs seed-style serial: "
        f"{inline_p1 / batched_pn:.1f}x",
    )
