"""FIG2 — the full ProFIPy workflow (Scan -> Execution -> Data Analysis).

Runs the complete Fig. 2 pipeline on the toy target: compile fault model,
scan, coverage pre-run, two-round trigger-controlled execution, failure
classification and metrics.  One pedantic round (a campaign is seconds,
not microseconds); the result table reports the per-phase timings.
"""

from conftest import write_result

from repro.analysis.report import CampaignReport
from repro.orchestrator.campaign import Campaign, CampaignConfig


def test_fig2_full_workflow(benchmark, toy_project, toy_model,
                            toy_workload, tmp_path):
    def run_workflow():
        config = CampaignConfig(
            name="fig2-toy",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=True,
            parallelism=1,
            workspace=tmp_path / "ws",
        )
        result = Campaign(config).run()
        report = CampaignReport(result)
        return result, report

    result, report = benchmark.pedantic(run_workflow, rounds=1, iterations=1)

    assert result.points_found == 2
    assert result.coverage.covered_count == 1     # unused_helper pruned
    assert result.executed == 1
    assert result.failures_round1                 # fault visible in round 1
    assert not result.failures_round2             # trigger-off recovers

    write_result(
        "fig2_workflow",
        "Fig. 2 workflow on the toy target:\n"
        f"  scan:      {result.scan_seconds * 1000:8.1f} ms "
        f"({result.points_found} points)\n"
        f"  coverage:  {result.coverage_seconds:8.2f} s  "
        f"({result.coverage.covered_count}/{result.coverage.total} covered)\n"
        f"  execution: {result.execution_seconds:8.2f} s  "
        f"({result.executed} experiments, 2 rounds each)\n"
        f"  failures:  round1={len(result.failures_round1)} "
        f"round2={len(result.failures_round2)}\n\n"
        + report.render(),
    )
