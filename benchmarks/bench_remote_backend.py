"""RB1 — remote backend: HTTP shard-dispatch overhead vs ProcessBackend.

The remote backend replaces per-shard spawned processes with per-shard
workers behind the ``/v1`` service API.  The question this bench answers
for the paper's as-a-service claim: what does the HTTP hop — payload
serialization, dispatch, status polling, stream mirroring, merge — cost
over the process backend's spawn + IPC on the same host?

Method: the same small campaign (bigger toy target, several shards) runs
under ``process`` and under ``remote`` against live in-process worker
servers; both produce byte-identical canonical experiments (asserted),
so the wall-clock delta is pure dispatch/transport overhead.  Also
measured: a single empty-ish shard round-trip (submit → poll → stream →
merge path) as the metadata floor per shard.
"""

import textwrap
import time

from conftest import TOY_SPEC, write_result

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService
from repro.workload.spec import WorkloadSpec

FUNCTIONS = 8
SHARDS = 4
PARALLELISM = 4


def build_project(base):
    project = base / "target"
    project.mkdir()
    chunks = []
    for index in range(FUNCTIONS):
        chunks.append(textwrap.dedent(
            f"""
            def compute_{index}(x):
                steps = []
                steps.append('start')
                result = x * 2 + {index}
                steps.append('done')
                return result
            """
        ).strip())
    (project / "app.py").write_text("\n\n\n".join(chunks) + "\n")
    (project / "run.py").write_text(textwrap.dedent(
        f"""
        import sys

        import app

        for index in range({FUNCTIONS}):
            value = getattr(app, "compute_" + str(index))(3)
            if value != 6 + index:
                print("WORKLOAD FAILURE", file=sys.stderr)
                sys.exit(1)
        print("WORKLOAD SUCCESS")
        """
    ).strip() + "\n")
    return project


def make_config(project, workspace, backend, workers=None):
    model = FaultModel(name="toy")
    model.add(parse_spec(TOY_SPEC, name="WRR"),
              description="wrong return value")
    return CampaignConfig(
        name="bench-remote",
        target_dir=project,
        fault_model=model,
        workload=WorkloadSpec(commands=["{python} run.py"],
                              command_timeout=30.0),
        injectable_files=["app.py"],
        coverage=False,
        parallelism=PARALLELISM,
        backend=backend,
        shards=SHARDS,
        workers=workers,
        seed=7,
        workspace=workspace,
    )


def projection(result):
    return sorted(
        (e.experiment_id, e.seed, e.mutated_snippet, e.status)
        for e in result.experiments
    )


def test_remote_dispatch_overhead(tmp_path):
    project = build_project(tmp_path)

    # -- process backend: spawned per-shard workers -----------------------
    started = time.monotonic()
    process_result = Campaign(
        make_config(project, tmp_path / "ws-process", "process")
    ).run()
    process_s = time.monotonic() - started
    assert process_result.executed == FUNCTIONS

    # -- remote backend: two live worker servers over HTTP ----------------
    services = [ProFIPyService(tmp_path / f"worker-{index}")
                for index in range(2)]
    servers = [start_server(service)[0] for service in services]
    try:
        started = time.monotonic()
        remote_result = Campaign(make_config(
            project, tmp_path / "ws-remote", "remote",
            workers=[server.url for server in servers],
        )).run()
        remote_s = time.monotonic() - started
        assert remote_result.executed == FUNCTIONS
        assert projection(remote_result) == projection(process_result)

        # -- per-shard dispatch floor: one no-op shard round-trip ---------
        client = ProFIPyClient(servers[0].url)
        payload = {
            "shard": 0, "planned": [],
            "fault_model": make_config(project, tmp_path / "ws-floor",
                                       "process").fault_model.to_dict(),
            "workload": None,
            "image": {"source_dir": str(project),
                      "staging_dir": str(tmp_path / "ws-process" / "image"),
                      "env": {}},
            "trigger": True, "rounds": 2, "campaign_seed": 7,
            "artifacts_dir": None, "parallelism": 1,
        }
        floor_started = time.monotonic()
        view = client.submit_shard(payload)
        while client.shard_status(view["shard_id"])["state"] == "running":
            time.sleep(0.01)
        client.shard_stream(view["shard_id"])
        floor_s = time.monotonic() - floor_started
    finally:
        for server in servers:
            server.shutdown()
        for service in services:
            service.close()

    # Dispatch must not dominate: the campaign is experiment-bound, so
    # remote wall-clock stays within 2x of the process backend plus a
    # polling-grain allowance (very loose, CI-safe).
    assert remote_s < process_s * 2 + 10.0, (
        f"remote {remote_s:.2f}s vs process {process_s:.2f}s"
    )

    overhead = (remote_s - process_s) / max(process_s, 1e-9) * 100
    write_result(
        "remote_backend",
        f"Remote backend dispatch overhead ({FUNCTIONS} experiments, "
        f"{SHARDS} shards, parallelism {PARALLELISM}):\n"
        f"  process backend (spawned shard workers): {process_s:6.2f} s\n"
        f"  remote backend  (2 HTTP workers):        {remote_s:6.2f} s "
        f"({overhead:+.0f}%)\n"
        f"  empty-shard HTTP round-trip floor (submit+poll+stream): "
        f"{floor_s * 1e3:.1f} ms\n"
        f"  canonical experiments byte-identical across backends: yes",
    )
