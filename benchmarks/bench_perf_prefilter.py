"""VD3 — prefilter effectiveness: indexed scan engine vs. naive matcher.

The §V-D scalability story hinges on the scan being cheap per (spec, file)
pair.  This bench measures, on the same seeded synthetic corpus and the
same 120-pattern faultload as ``bench_perf_scan_large``:

* the **prefilter hit-rate** — the fraction of spec x file matcher runs the
  compile-time fingerprint requirements eliminate outright;
* the **speedup** of the indexed engine (prefilter + one shared AST walk
  per file) over the seed implementation (full walk per spec per file);
* **equivalence** — both engines must produce identical injection points.
"""

import ast
import time

from conftest import write_result

from repro.faultmodel.library import expand_api_faults
from repro.scanner.matcher import Matcher
from repro.scanner.scan import ScanEngine
from repro.synth import SynthConfig, generate_codebase, scan_pattern_apis


def naive_point_keys(sources, models):
    """The seed scan shape: one full walk + matcher run per (file, spec)."""
    keys = []
    for name, source in sources:
        tree = ast.parse(source)
        for model in models:
            for ordinal, match in enumerate(
                Matcher(model).find_matches(tree)
            ):
                keys.append((name, model.name, ordinal,
                             match.lineno, match.end_lineno))
    return keys


def indexed_point_keys(sources, engine):
    keys = []
    for name, source in sources:
        for row in engine.scan_rows(source):
            keys.append((name, row["spec_name"], row["ordinal"],
                         row["lineno"], row["end_lineno"]))
    return keys


def test_prefilter_hit_rate_and_speedup(benchmark, tmp_path_factory):
    dest = tmp_path_factory.mktemp("synth-prefilter")
    generate_codebase(dest, SynthConfig(files=12, seed=42))
    sources = [
        (path.name, path.read_text(encoding="utf-8"))
        for path in sorted(dest.rglob("*.py"))
    ]

    model = expand_api_faults(scan_pattern_apis(), kinds=None,
                              model_name="vd3")
    models = model.compile()
    assert len(models) == 120

    started = time.monotonic()
    naive_keys = naive_point_keys(sources, models)
    naive_seconds = time.monotonic() - started

    engine = ScanEngine(models)

    def indexed():
        return indexed_point_keys(sources, engine)

    started = time.monotonic()
    indexed_keys = benchmark.pedantic(indexed, rounds=1, iterations=1)
    indexed_seconds = time.monotonic() - started

    # Equivalence first: the fast path must not change the faultload.
    assert indexed_keys == naive_keys
    assert len(indexed_keys) > 100

    stats = engine.prefilter_stats()
    # Speedup is recorded, not asserted: single-shot wall-clock ratios are
    # scheduler-noise-prone on shared CI runners.  Equivalence above is the
    # functional gate; the JSON/extra_info trail tracks the trajectory.
    speedup = naive_seconds / max(indexed_seconds, 1e-9)

    benchmark.extra_info["naive_seconds"] = round(naive_seconds, 3)
    benchmark.extra_info["indexed_seconds"] = round(indexed_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["prefilter_skip_rate"] = round(
        stats["skip_rate"], 4)

    write_result(
        "perf_prefilter",
        "VD3 indexed scan engine vs naive matcher (same host, 1 process):\n"
        f"  corpus:    {len(sources)} files, {len(models)} DSL patterns, "
        f"{len(indexed_keys)} injection points\n"
        f"  naive:     {naive_seconds:.2f} s "
        "(full AST walk per spec per file)\n"
        f"  indexed:   {indexed_seconds:.2f} s "
        "(fingerprint prefilter + one shared walk per file)\n"
        f"  prefilter: {stats['pairs_skipped']}/{stats['pairs_total']} "
        f"spec x file matcher runs skipped "
        f"({100.0 * stats['skip_rate']:.1f}%)\n"
        f"  speedup:   {speedup:.1f}x (equivalence verified: "
        "identical point lists)",
    )
