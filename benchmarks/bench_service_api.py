"""SV1 — service API: submit/poll/fetch throughput, HTTP vs in-process.

The paper's as-a-service claim (§I) lives or dies on how many small
campaigns the service front-end can take in, schedule, and hand back
concurrently.  This bench drives the same burst of small campaigns
through both transports — the in-process :class:`ProFIPyService` facade
and the ``/v1`` HTTP API via :class:`ProFIPyClient` — over the bounded
job scheduler, then measures the pure metadata-plane overhead
(job get / list / summary fetch) per transport:

* end-to-end: N small campaigns submitted at once (``block=False``),
  drained by ``max_workers=2``, then summaries + experiment lists
  fetched — wall-clock per transport must be dominated by campaign
  execution, not by the transport;
* metadata plane: repeated job get/list/summary round-trips — the HTTP
  hop must stay in the low-millisecond range, far below the cost of a
  single experiment (so remote control of a campaign is effectively
  free).
"""

import time

from conftest import write_result

from repro.orchestrator.campaign import CampaignConfig
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService

N_CAMPAIGNS = 6
MAX_WORKERS = 2
METADATA_OPS = 60


def campaign_config(toy_project, toy_model, toy_workload, name):
    return CampaignConfig(
        name=name,
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=False,
        parallelism=1,
        seed=3,
    )


def drive_burst(facade, toy_project, toy_model, toy_workload):
    """Submit N campaigns at once, wait for the queue to drain, fetch
    everything back; returns (submit_s, drain_s, fetch_s)."""
    started = time.monotonic()
    jobs = [
        facade.submit_campaign(
            campaign_config(toy_project, toy_model, toy_workload,
                            f"burst-{index:02d}"),
            block=False,
        )
        for index in range(N_CAMPAIGNS)
    ]
    submit_s = time.monotonic() - started

    started = time.monotonic()
    for job in jobs:
        finished = facade.wait(job.job_id, timeout=300)
        assert finished.status == "completed", finished.error
    drain_s = time.monotonic() - started

    started = time.monotonic()
    for job in jobs:
        summary = facade.result_summary(job.job_id)
        experiments = facade.experiments(job.job_id)
        assert summary["experiments"] == len(experiments) > 0
    fetch_s = time.monotonic() - started
    return submit_s, drain_s, fetch_s


def metadata_plane_seconds(facade, job_id):
    """Average seconds per (job get + list + summary) round-trip."""
    started = time.monotonic()
    for _ in range(METADATA_OPS):
        facade.job(job_id)
        facade.list_jobs()
        facade.result_summary(job_id)
    return (time.monotonic() - started) / METADATA_OPS


def test_service_api_throughput(tmp_path, toy_project, toy_model,
                                toy_workload):
    # -- in-process facade ------------------------------------------------
    inprocess = ProFIPyService(tmp_path / "ws-inprocess",
                               max_workers=MAX_WORKERS)
    local = drive_burst(inprocess, toy_project, toy_model, toy_workload)
    local_meta = metadata_plane_seconds(inprocess, "job-0001")
    inprocess.close()

    # -- HTTP transport over the same core --------------------------------
    core = ProFIPyService(tmp_path / "ws-http", max_workers=MAX_WORKERS)
    server, _thread = start_server(core)
    try:
        client = ProFIPyClient(server.url)
        remote = drive_burst(client, toy_project, toy_model, toy_workload)
        remote_meta = metadata_plane_seconds(client, "job-0001")
    finally:
        server.shutdown()
        core.close()

    local_total = sum(local)
    remote_total = sum(remote)

    # The HTTP hop must not dominate: the burst is campaign-bound, so
    # end-to-end wall-clock over HTTP stays within 2x of in-process
    # (generous: both run real sandboxed experiments and share the host).
    assert remote_total < local_total * 2 + 5.0, (
        f"HTTP burst {remote_total:.2f}s vs in-process {local_total:.2f}s"
    )
    # Metadata-plane calls are low-millisecond, orders of magnitude below
    # one experiment; 50 ms/round-trip is an extremely loose CI bound.
    assert remote_meta < 0.05, f"metadata round-trip {remote_meta * 1e3:.2f}ms"

    rate = N_CAMPAIGNS / remote[1] if remote[1] > 0 else float("inf")
    write_result(
        "service_api",
        f"Service API throughput ({N_CAMPAIGNS} small campaigns, "
        f"max_workers={MAX_WORKERS}):\n"
        f"  in-process: submit {local[0] * 1e3:6.1f} ms | drain "
        f"{local[1]:5.2f} s | fetch {local[2] * 1e3:6.1f} ms\n"
        f"  HTTP /v1:   submit {remote[0] * 1e3:6.1f} ms | drain "
        f"{remote[1]:5.2f} s | fetch {remote[2] * 1e3:6.1f} ms\n"
        f"  campaign drain rate over HTTP: {rate:.2f} campaigns/s\n"
        f"  metadata plane (job get+list+summary): "
        f"{local_meta * 1e3:.2f} ms in-process vs "
        f"{remote_meta * 1e3:.2f} ms HTTP "
        f"({remote_meta / max(local_meta, 1e-9):.0f}x, both far below one "
        "experiment)\n"
        f"  HTTP end-to-end overhead vs in-process: "
        f"{(remote_total - local_total) / max(local_total, 1e-9) * 100:+.0f}%",
    )
