"""VD1 — §V-D performance: scan and mutate Python-etcd in under a minute.

Paper: "It took less than one minute to scan and mutate Python-etcd on an
8-core Intel Xeon."  Here: scan the pyetcd client with all three Table I
campaign faultloads and generate every mutant; the whole batch must stay
well under the paper's one-minute budget on this host too.
"""

import time

from conftest import write_result

from repro.etcdsim.target import materialize_target
from repro.faultmodel.casestudy import all_campaign_models
from repro.mutator.mutate import Mutator
from repro.scanner.scan import scan_source


def test_scan_and_mutate_pyetcd(benchmark, tmp_path):
    project = materialize_target(tmp_path / "target")
    source = project.client_file.read_text(encoding="utf-8")
    models = {
        model.name: model
        for campaign_model in all_campaign_models().values()
        for model in campaign_model.compile()
    }

    def scan_and_mutate_all():
        total_points = 0
        total_mutants = 0
        for model in models.values():
            points = scan_source(source, [model], file="pyetcd/client.py")
            total_points += len(points)
            mutator = Mutator(trigger=True)
            for point in points:
                mutator.mutate_source(source, model, point.ordinal,
                                      file="pyetcd/client.py")
                total_mutants += 1
        return total_points, total_mutants

    started = time.monotonic()
    points, mutants = benchmark(scan_and_mutate_all)
    single_pass = time.monotonic() - started

    assert points >= 60  # all three campaigns together
    assert mutants == points
    # The paper's budget: < 1 minute for the full scan+mutate batch.
    assert single_pass < 60

    write_result(
        "perf_scan_small",
        "V-D scan+mutate of the client library — paper vs measured:\n"
        "  paper:    < 60 s for scan + mutation of Python-etcd "
        "(8-core Xeon)\n"
        f"  measured: {points} injection points across "
        f"{len(models)} fault types,\n"
        f"            {mutants} trigger-mode mutants generated in "
        f"< {max(1.0, single_pass):.1f} s (first pass, this host)",
    )
