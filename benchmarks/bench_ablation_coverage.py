"""Ablation — coverage-based plan reduction (§IV-D).

ProFIPy runs a fault-free instrumented pass to drop injection points the
workload never reaches, "since the fault would not cause any effect".
This ablation runs the external-API campaign with and without the
reduction and reports experiments and wall-clock saved, plus the wasted
no-failure experiments the reduction avoided.
"""

from conftest import write_result

from repro.casestudy import case_study_config
from repro.orchestrator.campaign import Campaign


def _run(tmp_path, coverage: bool):
    config = case_study_config(
        "external_api", tmp_path,
        command_timeout=30, parallelism=2, seed=6,
    )
    config.coverage = coverage
    config.workspace = tmp_path / f"ws-{'cov' if coverage else 'nocov'}"
    return Campaign(config).run()


def test_coverage_reduction(benchmark, tmp_path):
    reduced = benchmark.pedantic(lambda: _run(tmp_path, True),
                                 rounds=1, iterations=1)
    full = _run(tmp_path, False)

    assert full.points_found == reduced.points_found
    assert reduced.executed < full.executed
    # Every experiment pruned by coverage would have been wasted: the
    # uncovered faults cause no failure when injected anyway.
    pruned = full.executed - reduced.executed
    no_failure_full = full.executed - len(full.failures)
    assert no_failure_full >= pruned

    write_result(
        "ablation_coverage",
        "Coverage-reduction ablation (external-API campaign):\n"
        f"  without reduction: {full.executed} experiments, "
        f"{len(full.failures)} with failures, "
        f"{full.execution_seconds:.0f} s execution\n"
        f"  with reduction:    {reduced.executed} experiments, "
        f"{len(reduced.failures)} with failures, "
        f"{reduced.execution_seconds:.0f} s execution "
        f"(+{reduced.coverage_seconds:.0f} s pre-run)\n"
        f"  pruned {pruned} experiments that cannot fail "
        "(fault never activated)",
    )
