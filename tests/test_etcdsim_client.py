"""Integration tests: client against a live in-process server."""

import pytest

from repro.etcdsim import (
    Client,
    EtcdAlreadyExist,
    EtcdCompareFailed,
    EtcdConnectionFailed,
    EtcdException,
    EtcdKeyNotFound,
    EtcdServer,
    EtcdValueError,
    EtcdWatchTimedOut,
)


@pytest.fixture(scope="module")
def server():
    with EtcdServer() as instance:
        yield instance


@pytest.fixture
def client(server):
    instance = Client(host=server.host, port=server.port)
    try:
        instance.delete("/", recursive=True)
    except (EtcdKeyNotFound, EtcdException):
        pass
    for child in instance.ls("/"):
        instance.delete(child, recursive=True)
    return instance


class TestBasicOps:
    def test_set_get(self, client):
        client.set("/k", "v")
        assert client.get("/k").value == "v"

    def test_get_missing(self, client):
        with pytest.raises(EtcdKeyNotFound):
            client.get("/missing")

    def test_delete(self, client):
        client.set("/k", "v")
        client.delete("/k")
        with pytest.raises(EtcdKeyNotFound):
            client.get("/k")

    def test_update_requires_existence(self, client):
        with pytest.raises(EtcdKeyNotFound):
            client.update("/nope", "v")

    def test_create_conflict(self, client):
        client.create("/once", "1")
        with pytest.raises(EtcdAlreadyExist):
            client.create("/once", "2")

    def test_test_and_set(self, client):
        client.set("/cas", "a")
        client.test_and_set("/cas", "b", prev_value="a")
        assert client.get("/cas").value == "b"
        with pytest.raises(EtcdCompareFailed):
            client.test_and_set("/cas", "c", prev_value="zzz")

    def test_mkdir_and_ls(self, client):
        client.mkdir("/dir")
        client.set("/dir/a", "1")
        client.set("/dir/b", "2")
        assert client.ls("/dir") == ["/dir/a", "/dir/b"]

    def test_recursive_get_leaves(self, client):
        client.set("/tree/x/1", "a")
        client.set("/tree/y/2", "b")
        result = client.get("/tree", recursive=True)
        assert {leaf.key for leaf in result.leaves} == {"/tree/x/1",
                                                        "/tree/y/2"}

    def test_append_in_order(self, client):
        client.mkdir("/q")
        first = client.append("/q", "one")
        second = client.append("/q", "two")
        assert first.key < second.key
        assert [c.value for c in client.get("/q", sorted=True).children] == [
            "one", "two",
        ]

    def test_ttl_round_trip(self, client):
        client.set("/ttl", "x", ttl=30)
        assert client.get("/ttl").ttl <= 30

    def test_version_and_stats(self, client):
        assert "sim" in client.version()
        stats = client.stats()
        assert "etcdIndex" in stats


class TestErrors:
    def test_bad_request_on_invalid_ttl(self, client):
        with pytest.raises(EtcdValueError):
            client.set("/k", "v", ttl=-5)

    def test_bad_request_on_control_chars(self, client):
        with pytest.raises((EtcdValueError, EtcdException)):
            client.set("/k\x00x", "v")

    def test_connection_failure(self):
        dead = Client(host="127.0.0.1", port=1, read_timeout=0.5)
        with pytest.raises(EtcdConnectionFailed):
            dead.get("/k")

    def test_key_without_leading_slash_normalized(self, client):
        client.set("plain", "v")
        assert client.get("/plain").value == "v"


class TestWatch:
    def test_watch_historic_event(self, client):
        result = client.set("/w", "1")
        event = client.watch("/w", index=result.modified_index, timeout=2)
        assert event.value == "1"

    def test_watch_timeout(self, client):
        client.set("/w2", "1")
        with pytest.raises(EtcdWatchTimedOut):
            client.watch("/quiet", index=10**9, timeout=0.3)


class TestEnvironmentDefaults:
    def test_env_configuration(self, server, monkeypatch):
        monkeypatch.setenv("ETCDSIM_HOST", server.host)
        monkeypatch.setenv("ETCDSIM_PORT", str(server.port))
        client = Client()
        assert client.port == server.port
        client.set("/env", "works")
        assert client.get("/env").value == "works"

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("ETCDSIM_PORT", "1111")
        client = Client(port=2222)
        assert client.port == 2222
