"""Unit tests for the source-code mutator (trigger wrapping, substitution)."""

import ast
import textwrap

import pytest

from repro.common.rng import SeededRandom
from repro.dsl import BindingError, compile_text
from repro.mutator import Mutator, RUNTIME_MODULE_NAME
from repro.mutator.runtime import write_runtime

MFC = """
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}
"""

TARGET = textwrap.dedent(
    """
    def cleanup(client, ports):
        log(1)
        client.delete_port(ports[0])
        log(2)
    """
)


def run_no_trigger(spec, target, name="spec", ordinal=0):
    model = compile_text(spec, name=name)
    mutation = Mutator(trigger=False).mutate_source(
        textwrap.dedent(target), model, ordinal
    )
    return mutation


class TestPermanentMutation:
    def test_mfc_removes_call(self):
        mutation = run_no_trigger(MFC, TARGET, name="MFC")
        assert "delete_port" not in mutation.source
        assert "log(1)" in mutation.source and "log(2)" in mutation.source

    def test_mutant_parses(self):
        mutation = run_no_trigger(MFC, TARGET, name="MFC")
        ast.parse(mutation.source)

    def test_empty_replacement_gets_pass(self):
        mutation = run_no_trigger(
            "change { foo() } into { }",
            "def f():\n    foo()\n",
        )
        tree = ast.parse(mutation.source)
        func = tree.body[0]
        assert len(func.body) == 1
        assert isinstance(func.body[0], ast.Pass)

    def test_snippets_recorded(self):
        mutation = run_no_trigger(MFC, TARGET, name="MFC")
        assert "delete_port" in mutation.original_snippet
        assert "delete_port" not in mutation.mutated_snippet

    def test_ordinal_selects_match(self):
        target = "f('-a')\nf('-b')\n"
        spec = "change { $CALL{name=f}($STRING{val=-*}) } into { pass }"
        first = run_no_trigger(spec, target, ordinal=0)
        second = run_no_trigger(spec, target, ordinal=1)
        assert "'-a'" not in first.source and "'-b'" in first.source
        assert "'-b'" not in second.source and "'-a'" in second.source

    def test_bad_ordinal_raises(self):
        model = compile_text("change { foo() } into { pass }")
        with pytest.raises(IndexError, match="ordinal"):
            Mutator().mutate_source("foo()\n", model, 5)


class TestTriggerMutation:
    def test_trigger_wraps_original_and_faulty(self):
        model = compile_text(MFC, name="MFC")
        mutation = Mutator(trigger=True).mutate_source(TARGET, model, 0)
        tree = ast.parse(mutation.source)
        guard = tree.body[-1].body[0]
        assert isinstance(guard, ast.If)
        assert "enabled" in ast.unparse(guard.test)
        assert "delete_port" not in ast.unparse(guard.body)
        assert "delete_port" in ast.unparse(guard.orelse)

    def test_runtime_import_added_once(self):
        model = compile_text(MFC, name="MFC")
        mutation = Mutator(trigger=True).mutate_source(TARGET, model, 0)
        count = mutation.source.count(f"import {RUNTIME_MODULE_NAME}")
        assert count == 1

    def test_import_after_docstring_and_future(self):
        source = '"""Doc."""\nfrom __future__ import annotations\nfoo()\n'
        model = compile_text("change { foo() } into { pass }")
        mutation = Mutator(trigger=True).mutate_source(source, model, 0)
        tree = ast.parse(mutation.source)
        assert isinstance(tree.body[0].value, ast.Constant)
        assert isinstance(tree.body[1], ast.ImportFrom)
        assert isinstance(tree.body[2], ast.Import)

    def test_fault_id_embedded(self):
        model = compile_text("change { foo() } into { pass }", name="NOP")
        mutation = Mutator(trigger=True).mutate_source(
            "foo()\n", model, 0, fault_id="NOP:x.py:0"
        )
        assert "NOP:x.py:0" in mutation.source

    def test_trigger_mutant_behaves_per_trigger(self, tmp_path):
        # End-to-end: run the mutant with the fault on, then off.
        model = compile_text(
            "change { return $NUM#n } into { return -1 }", name="WRV"
        )
        source = "def f():\n    return 42\n"
        mutation = Mutator(trigger=True).mutate_source(source, model, 0)
        write_runtime(tmp_path)
        (tmp_path / "target.py").write_text(mutation.source)
        trigger = tmp_path / "trigger"

        import subprocess
        import sys

        def run(flag):
            trigger.write_text(flag)
            env = {"PROFIPY_TRIGGER_FILE": str(trigger), "PATH": "/usr/bin:/bin"}
            out = subprocess.run(
                [sys.executable, "-c", "import target; print(target.f())"],
                cwd=tmp_path, env=env, capture_output=True, text=True,
            )
            assert out.returncode == 0, out.stderr
            return out.stdout.strip()

        assert run("1") == "-1"
        assert run("0") == "42"


class TestSubstitution:
    def test_corrupt_wraps_argument(self):
        mutation = run_no_trigger(
            "change { $CALL#c{name=f}(..., $STRING#s{val=-*}, ...) }"
            " into { $CALL#c(..., $CORRUPT($STRING#s), ...) }",
            "f('cmd', '-x', 3)\n",
        )
        assert "__pfp_rt__.corrupt('-x', 'auto')" in mutation.source
        assert "'cmd'" in mutation.source and "3)" in mutation.source
        assert f"import {RUNTIME_MODULE_NAME}" in mutation.source

    def test_drop_wildcard_arguments(self):
        mutation = run_no_trigger(
            "change { $CALL#c{name=f}($EXPR#first, ...) }"
            " into { $CALL#c($EXPR#first) }",
            "f(1, 2, 3)\n",
        )
        tree = ast.parse(mutation.source)
        call = tree.body[0].value
        assert len(call.args) == 1

    def test_too_many_wildcards_in_replacement(self):
        model = compile_text(
            "change { $CALL#c{name=f}($EXPR) } into { $CALL#c(..., ...) }"
        )
        with pytest.raises(BindingError, match="more '...' wildcards"):
            Mutator(trigger=False).mutate_source("f(1)\n", model, 0)

    def test_keywords_preserved_through_wildcard(self):
        mutation = run_no_trigger(
            "change { $CALL#c{name=f}(...) } into { $CALL#c(...) }",
            "f(1, timeout=3)\n",
        )
        assert "timeout=3" in mutation.source

    def test_hog_statement(self):
        mutation = run_no_trigger(
            "change { $CALL#c{name=f}(...) } into {\n"
            "    $CALL#c(...)\n"
            "    $HOG{resource=cpu; seconds=5; threads=3}\n"
            "}",
            "f(1)\n",
        )
        assert "__pfp_rt__.hog('cpu', 5.0, 3, 64)" in mutation.source

    def test_timeout_statement(self):
        mutation = run_no_trigger(
            "change { foo() } into { $TIMEOUT{seconds=2.5}\n    foo() }",
            "foo()\n",
        )
        assert "__pfp_rt__.delay(2.5)" in mutation.source

    def test_pick_deterministic_per_seed(self):
        spec = ("change { foo() } into "
                "{ raise $PICK{choices=ValueError()|KeyError()|OSError()} }")
        model = compile_text(spec)

        def mutate(seed):
            mutator = Mutator(trigger=False, rng=SeededRandom(seed))
            return mutator.mutate_source("foo()\n", model, 0).source

        assert mutate(7) == mutate(7)
        variants = {mutate(seed) for seed in range(12)}
        assert len(variants) > 1

    def test_pick_statement_level(self):
        mutation = run_no_trigger(
            "change { foo() } into { $PICK{choices=x = 1|y = 2} }",
            "foo()\n",
        )
        assert mutation.source.strip() in {"x = 1", "y = 2"}

    def test_expr_reference_reused(self):
        mutation = run_no_trigger(
            "change { if $EXPR#cond :\n    $BLOCK{tag=b; stmts=1,*} }"
            " into { if not ($EXPR#cond) :\n    $BLOCK{tag=b} }",
            "if ready:\n    start()\n",
        )
        assert "if not ready:" in mutation.source

    def test_var_swap(self):
        mutation = run_no_trigger(
            "change { g($VAR#a, $VAR#b) } into { g($VAR#b, $VAR#a) }",
            "g(x, y)\n",
        )
        assert "g(y, x)" in mutation.source


class TestCoverageInstrumentation:
    def test_probes_inserted(self):
        model = compile_text("change { foo() } into { pass }", name="NOP")
        source = "def f():\n    foo()\n    bar()\n    foo()\n"
        instrumented = Mutator().instrument_source(
            source,
            [(model, 0, "NOP:f.py:0"), (model, 1, "NOP:f.py:1")],
        )
        assert instrumented.count("__pfp_rt__.cover") == 2
        tree = ast.parse(instrumented)
        body = tree.body[-1].body
        assert "cover" in ast.unparse(body[0])
        assert "foo" in ast.unparse(body[1])

    def test_probe_order_preserves_targets(self):
        model = compile_text("change { foo() } into { pass }", name="NOP")
        source = "foo()\nfoo()\n"
        instrumented = Mutator().instrument_source(
            source, [(model, 0, "p0"), (model, 1, "p1")]
        )
        lines = [line for line in instrumented.splitlines() if line.strip()]
        assert lines[1].startswith("__pfp_rt__.cover('p0')")
        assert lines[3].startswith("__pfp_rt__.cover('p1')")

    def test_no_targets_no_import(self):
        instrumented = Mutator().instrument_source("x = 1\n", [])
        assert RUNTIME_MODULE_NAME not in instrumented
