"""Unit tests for the DSL lexer (directive tokenization)."""

import pytest

from repro.dsl.directives import DirectiveKind
from repro.dsl.errors import DslDirectiveError, DslSyntaxError
from repro.dsl.lexer import is_placeholder, lex_fragment, placeholder_name


def kinds(result):
    return [d.kind for d in result.directives.values()]


class TestPlaceholders:
    def test_placeholder_name_round_trip(self):
        assert is_placeholder(placeholder_name(0))
        assert is_placeholder(placeholder_name(123))

    def test_non_placeholders_rejected(self):
        assert not is_placeholder("x")
        assert not is_placeholder("_PFP_PH_")
        assert not is_placeholder("_PFP_PH_x_")


class TestLexing:
    def test_plain_python_untouched(self):
        text = "x = foo(1, 2)\n"
        result = lex_fragment(text)
        assert result.text == text
        assert result.directives == {}

    def test_single_directive_substituted(self):
        result = lex_fragment("$CALL{name=delete_*}(...)")
        assert len(result.directives) == 1
        placeholder, directive = next(iter(result.directives.items()))
        assert placeholder in result.text
        assert directive.kind is DirectiveKind.CALL
        assert directive.name_pattern == "delete_*"

    def test_tag_suffix(self):
        result = lex_fragment("$CALL#c{name=utils.execute}(...)")
        directive = next(iter(result.directives.values()))
        assert directive.tag == "c"

    def test_tag_param(self):
        result = lex_fragment("$BLOCK{tag=b1; stmts=1,*}")
        directive = next(iter(result.directives.values()))
        assert directive.tag == "b1"
        assert directive.stmt_range == (1, -1)

    def test_multiple_directives_unique_placeholders(self):
        result = lex_fragment("$BLOCK{stmts=1,*}\n$CALL(...)\n$BLOCK{stmts=1,*}")
        assert len(result.directives) == 3
        assert len(set(result.directives)) == 3

    def test_start_index_offsets_numbering(self):
        first = lex_fragment("$EXPR")
        second = lex_fragment("$EXPR", start_index=len(first.directives))
        assert not set(first.directives) & set(second.directives)

    def test_dollar_inside_string_ignored(self):
        result = lex_fragment('x = "$CALL is not a directive"')
        assert result.directives == {}
        assert "$CALL" in result.text

    def test_dollar_inside_triple_string_ignored(self):
        result = lex_fragment('x = """$BLOCK{stmts=1}"""')
        assert result.directives == {}

    def test_dollar_inside_comment_ignored(self):
        result = lex_fragment("x = 1  # $CALL here\n$VAR")
        assert kinds(result) == [DirectiveKind.VAR]

    def test_unknown_directive_rejected(self):
        with pytest.raises(DslDirectiveError, match="unknown directive"):
            lex_fragment("$BOGUS{x=1}")

    def test_lowercase_dollar_not_a_directive(self):
        result = lex_fragment("cost = price_in_$usd")
        assert result.directives == {}

    def test_unterminated_params_raise(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            lex_fragment("$CALL{name=foo")

    def test_missing_tag_name_raises(self):
        with pytest.raises(DslSyntaxError, match="expected tag name"):
            lex_fragment("$CALL#{name=foo}")

    def test_params_with_nested_braces(self):
        result = lex_fragment("$PICK{choices={'a': 1}|{'b': 2}}")
        directive = next(iter(result.directives.values()))
        assert directive.params.get_choices("choices") == ["{'a': 1}", "{'b': 2}"]

    def test_line_numbers_recorded(self):
        result = lex_fragment("x = 1\ny = 2\n$HOG{resource=cpu}")
        directive = next(iter(result.directives.values()))
        assert directive.line == 3

    def test_escaped_quote_in_string(self):
        result = lex_fragment("x = 'it\\'s $CALL'\n$VAR")
        assert kinds(result) == [DirectiveKind.VAR]
