"""Tests for the service-level regression workflow and the jobs CLI."""

import pytest

from repro.cli import main
from repro.orchestrator.campaign import CampaignConfig
from repro.service import ProFIPyService

pytestmark = pytest.mark.integration


@pytest.fixture
def completed_job(tmp_path, toy_project, toy_model, toy_workload):
    service = ProFIPyService(tmp_path / "ws")
    config = CampaignConfig(
        name="toy",
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=True,
        parallelism=1,
        workspace=tmp_path / "campaign-ws",
    )
    job = service.submit_campaign(config, block=True)
    assert job.status == "completed", job.error
    return service, job


class TestServiceRegression:
    def test_regression_tests_generated_for_failures(self, completed_job,
                                                     tmp_path):
        service, job = completed_job
        written = service.generate_regression_tests(
            job.job_id, tmp_path / "regr"
        )
        assert len(written) == 1
        content = written[0].read_text()
        assert "WRR" in content
        assert "still causes a service" in content

    def test_missing_config_rejected(self, tmp_path):
        service = ProFIPyService(tmp_path / "ws")
        job = service.runner.submit("bare", lambda d: None, block=True)
        with pytest.raises(FileNotFoundError, match="config"):
            service.generate_regression_tests(job.job_id, tmp_path / "r")


class TestJobsCli:
    def test_jobs_list_and_report(self, completed_job, tmp_path, capsys):
        service, job = completed_job
        workspace = str(service.workspace)
        assert main(["--workspace", workspace, "jobs", "list"]) == 0
        out = capsys.readouterr().out
        assert job.job_id in out
        assert "completed" in out

        assert main(["--workspace", workspace, "jobs", "report",
                     job.job_id]) == 0
        assert "Campaign summary" in capsys.readouterr().out

    def test_regression_cli(self, completed_job, tmp_path, capsys):
        service, job = completed_job
        out_dir = tmp_path / "regr-cli"
        assert main(["--workspace", str(service.workspace), "regression",
                     job.job_id, "--out", str(out_dir)]) == 0
        assert list(out_dir.glob("test_regression_*.py"))

    def test_jobs_list_empty(self, tmp_path, capsys):
        assert main(["--workspace", str(tmp_path / "empty-ws"),
                     "jobs", "list"]) == 0
        assert "no jobs" in capsys.readouterr().out
