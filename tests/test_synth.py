"""Tests for the synthetic codebase generator (§V-D substrate)."""

import ast

from repro.faultmodel.library import expand_api_faults, gswfit_model
from repro.scanner.scan import scan_tree
from repro.synth import (
    SynthConfig,
    generate_codebase,
    generate_module,
    scan_pattern_apis,
)


class TestGenerateModule:
    def test_deterministic_for_seed(self):
        first = generate_module(SynthConfig(seed=5), "nova", 3)
        second = generate_module(SynthConfig(seed=5), "nova", 3)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_module(SynthConfig(seed=5), "nova", 3)
        second = generate_module(SynthConfig(seed=6), "nova", 3)
        assert first[1] != second[1]

    def test_generated_source_parses(self):
        for index in range(6):
            _, source = generate_module(SynthConfig(seed=1), "neutron", index)
            ast.parse(source)

    def test_contains_target_idioms(self):
        sources = "".join(
            generate_module(SynthConfig(seed=2, files=1), "cinder", i)[1]
            for i in range(8)
        )
        assert "delete_" in sources           # MFC / Fig. 1a surface
        assert "utils.execute(" in sources    # WPF / Fig. 1c surface
        assert "if node:" in sources          # MIFS / Fig. 1b surface
        assert "try:" in sources


class TestGenerateCodebase:
    def test_stats_and_layout(self, tmp_path):
        stats = generate_codebase(tmp_path, SynthConfig(files=6, seed=0))
        assert stats.files == 6
        assert stats.lines > 100
        assert len(stats.paths) == 6
        packages = {path.parent.name for path in stats.paths}
        assert packages == {"nova", "neutron", "cinder"}
        for path in stats.paths:
            assert (path.parent / "__init__.py").exists()

    def test_all_files_scannable(self, tmp_path):
        generate_codebase(tmp_path, SynthConfig(files=4, seed=9))
        result = scan_tree(tmp_path, gswfit_model().enabled_specs())
        assert not result.parse_errors
        assert result.points

    def test_parallel_scan_matches_serial(self, tmp_path):
        generate_codebase(tmp_path, SynthConfig(files=4, seed=9))
        specs = gswfit_model().enabled_specs()[:4]
        serial = scan_tree(tmp_path, specs, jobs=1)
        parallel = scan_tree(tmp_path, specs, jobs=2)
        serial_ids = [point.point_id for point in serial.points]
        parallel_ids = [point.point_id for point in parallel.points]
        assert serial_ids == parallel_ids


class TestPatternApis:
    def test_twenty_apis(self):
        apis = scan_pattern_apis()
        assert len(apis) == 20
        assert len(set(apis)) == 20

    def test_expansion_reaches_120_patterns(self):
        model = expand_api_faults(scan_pattern_apis(), kinds=None)
        assert len(model.faults) == 120
        assert len(model.compile()) == 120
