"""Worker registry: lease transitions, fencing, and the agent loop.

The lease edge cases the ISSUE calls out get deterministic coverage
here, under an injected fake clock:

* a worker that misses heartbeats walks alive → suspect → dead →
  pruned, at exact lease multiples;
* a heartbeat after eviction re-registers under a *fresh* id;
* a re-registered URL fences the old lease — the previous incarnation
  answering late gets ``lease_expired``, not silently accepted;
* listings are deterministic functions of the fake clock.
"""

import pytest

from repro.service.registry import (
    ALIVE,
    DEAD,
    DEAD_AFTER_LEASES,
    PRUNE_AFTER_LEASES,
    SUSPECT,
    LeaseExpiredError,
    WorkerAgent,
    WorkerRegistry,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return WorkerRegistry(lease_seconds=10.0, clock=clock)


def state_of(registry, worker_id):
    views = {view["worker_id"]: view for view in registry.list_workers()}
    return views[worker_id]["state"] if worker_id in views else None


class TestLeaseTransitions:
    def test_alive_suspect_dead_pruned_at_lease_multiples(self, registry,
                                                          clock):
        view = registry.register("http://w:1")
        wid = view["worker_id"]
        assert state_of(registry, wid) == ALIVE

        clock.advance(10.0)  # exactly one lease: still alive
        assert state_of(registry, wid) == ALIVE
        clock.advance(0.1)  # past one lease: suspect
        assert state_of(registry, wid) == SUSPECT

        clock.advance(10.0)  # past DEAD_AFTER_LEASES leases: dead
        assert DEAD_AFTER_LEASES == 2
        assert state_of(registry, wid) == DEAD

        clock.advance(10.0 * (PRUNE_AFTER_LEASES - DEAD_AFTER_LEASES))
        assert state_of(registry, wid) is None  # pruned from listings

    def test_heartbeat_revives_a_suspect(self, registry, clock):
        wid = registry.register("http://w:1")["worker_id"]
        clock.advance(15.0)
        assert state_of(registry, wid) == SUSPECT
        view = registry.heartbeat(wid)
        assert view["state"] == ALIVE
        assert state_of(registry, wid) == ALIVE

    def test_dead_lease_rejects_heartbeats(self, registry, clock):
        wid = registry.register("http://w:1")["worker_id"]
        clock.advance(25.0)
        assert state_of(registry, wid) == DEAD
        with pytest.raises(LeaseExpiredError):
            registry.heartbeat(wid)

    def test_pruned_lease_is_unknown(self, registry, clock):
        wid = registry.register("http://w:1")["worker_id"]
        clock.advance(10.0 * PRUNE_AFTER_LEASES + 1.0)
        with pytest.raises(KeyError):
            registry.heartbeat(wid)

    def test_unmanaged_peer_never_expires(self, registry, clock):
        wid = registry.register("http://pin:1", managed=False)["worker_id"]
        clock.advance(10.0 * PRUNE_AFTER_LEASES * 5)
        assert state_of(registry, wid) == ALIVE

    def test_alive_filter_skips_suspects(self, registry, clock):
        registry.register("http://w1:1")
        clock.advance(15.0)
        registry.register("http://w2:1")
        urls = [view["url"] for view in registry.alive()]
        assert urls == ["http://w2:1"]

    def test_load_carried_by_heartbeat(self, registry):
        wid = registry.register("http://w:1")["worker_id"]
        view = registry.heartbeat(
            wid, {"running": 3, "queued": 1, "max_concurrent": 4}
        )
        assert view["load"] == {"running": 3, "queued": 1,
                                "max_concurrent": 4}
        assert view["max_concurrent"] == 4

    def test_malformed_load_rejected(self, registry):
        wid = registry.register("http://w:1")["worker_id"]
        with pytest.raises(ValueError):
            registry.heartbeat(wid, {"running": -1})
        with pytest.raises(ValueError):
            registry.heartbeat(wid, "busy")

    def test_listing_age_tracks_fake_clock(self, registry, clock):
        wid = registry.register("http://w:1")["worker_id"]
        clock.advance(7.5)
        views = {v["worker_id"]: v for v in registry.list_workers()}
        assert views[wid]["seconds_since_heartbeat"] == pytest.approx(7.5)
        assert views[wid]["lease_seconds"] == 10.0


class TestFencing:
    def test_reregistration_fences_the_old_lease(self, registry):
        old = registry.register("http://w:1")["worker_id"]
        new = registry.register("http://w:1")["worker_id"]
        assert new != old
        # The old incarnation answering late is told the truth —
        # lease_expired, not unknown_worker — so it re-registers
        # instead of assuming a coordinator restart.
        with pytest.raises(LeaseExpiredError):
            registry.heartbeat(old)
        assert state_of(registry, new) == ALIVE
        assert state_of(registry, old) == DEAD

    def test_fenced_lease_never_resurrects(self, registry, clock):
        old = registry.register("http://w:1")["worker_id"]
        registry.register("http://w:1")
        # Sweeping at any point must keep the tombstone dead even
        # though its heartbeat age says "alive".
        clock.advance(0.5)
        assert state_of(registry, old) == DEAD
        with pytest.raises(LeaseExpiredError):
            registry.heartbeat(old)

    def test_fenced_lease_eventually_prunes(self, registry, clock):
        old = registry.register("http://w:1")["worker_id"]
        registry.register("http://w:1")
        clock.advance(10.0 * PRUNE_AFTER_LEASES + 1.0)
        assert state_of(registry, old) is None

    def test_rejoined_worker_is_eligible_again(self, registry, clock):
        registry.register("http://w:1")
        clock.advance(25.0)
        assert registry.alive() == []
        rejoined = registry.register("http://w:1")
        assert [v["worker_id"] for v in registry.alive()] == [
            rejoined["worker_id"]
        ]

    def test_unmanaged_reregistration_is_idempotent(self, registry):
        first = registry.register("http://pin:1", managed=False)
        again = registry.register("http://pin:1", managed=False)
        assert again["worker_id"] == first["worker_id"]
        assert len(registry.list_workers()) == 1


class TestWireForm:
    def test_register_worker_validates_payload(self, registry):
        with pytest.raises(ValueError):
            registry.register_worker([])
        with pytest.raises(ValueError):
            registry.register_worker({})
        with pytest.raises(ValueError):
            registry.register_worker({"url": "   "})
        with pytest.raises(ValueError):
            registry.register_worker({"url": "http://w:1",
                                      "max_concurrent": 0})

    def test_url_normalized(self, registry):
        view = registry.register_worker({"url": " http://w:1/ "})
        assert view["url"] == "http://w:1"


class TestWorkerAgent:
    """The agent against an in-process service facade (no HTTP)."""

    def _service(self, tmp_path, lease_seconds=10.0):
        from repro.service.service import ProFIPyService

        return ProFIPyService(tmp_path / "ws", lease_seconds=lease_seconds)

    def test_register_carries_shard_host_capacity(self, tmp_path):
        service = self._service(tmp_path)
        agent = WorkerAgent("local", "http://me:1",
                            service.shards, client=service)
        view = agent.register()
        assert agent.worker_id == view["worker_id"]
        assert view["max_concurrent"] == service.shards.max_concurrent

    def test_heartbeat_after_eviction_reregisters_fresh_id(self, tmp_path):
        clock = FakeClock()
        service = self._service(tmp_path)
        service.registry.clock = clock
        agent = WorkerAgent("local", "http://me:1",
                            service.shards, client=service)
        agent.register()
        old_id = agent.worker_id
        clock.advance(10.0 * (PRUNE_AFTER_LEASES + 1))
        view = agent.heartbeat()  # unknown_worker → re-register
        assert agent.worker_id == view["worker_id"]
        assert agent.worker_id != old_id

    def test_heartbeat_after_fencing_reregisters(self, tmp_path):
        service = self._service(tmp_path)
        agent = WorkerAgent("local", "http://me:1",
                            service.shards, client=service)
        agent.register()
        old_id = agent.worker_id
        # Another incarnation of the same URL joined (worker restart).
        service.register_worker({"url": "http://me:1"})
        agent.heartbeat()  # lease_expired → re-register
        assert agent.worker_id != old_id
        alive = [v["worker_id"] for v in service.registry.alive()]
        assert agent.worker_id in alive
        assert old_id not in alive

    def test_heartbeat_carries_live_load(self, tmp_path):
        service = self._service(tmp_path)
        agent = WorkerAgent("local", "http://me:1",
                            service.shards, client=service)
        agent.register()
        view = agent.heartbeat()
        assert view["load"] == {"running": 0, "queued": 0,
                                "max_concurrent":
                                    service.shards.max_concurrent}

    def test_agent_thread_heartbeats(self, tmp_path):
        import time as _time

        service = self._service(tmp_path, lease_seconds=0.3)
        agent = WorkerAgent("local", "http://me:1",
                            service.shards, client=service,
                            interval=0.05)
        agent.start()
        try:
            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline:
                views = service.list_workers()
                if views and views[0]["load"] is not None:
                    break
                _time.sleep(0.02)
            else:
                pytest.fail("agent thread never heartbeated")
            # Stays alive across several lease windows only because the
            # thread keeps renewing.
            _time.sleep(0.5)
            assert service.registry.alive()
        finally:
            agent.stop()


class TestPlacementHelpers:
    """The dispatcher-side fleet helpers the remote backend places by."""

    def _fleet(self):
        return {
            "http://a:1": {"url": "http://a:1", "state": ALIVE,
                           "max_concurrent": 4,
                           "load": {"running": 3, "queued": 0}},
            "http://b:1": {"url": "http://b:1", "state": ALIVE,
                           "max_concurrent": 4,
                           "load": {"running": 1, "queued": 0}},
            "http://c:1": {"url": "http://c:1", "state": DEAD,
                           "max_concurrent": 4,
                           "load": {"running": 0, "queued": 0}},
        }

    def test_least_loaded_skips_dead_workers(self):
        from repro.orchestrator.backends import least_loaded_worker

        choice = least_loaded_worker(self._fleet(), {})
        assert choice["url"] == "http://b:1"

    def test_assigned_shards_count_towards_load(self):
        from repro.orchestrator.backends import least_loaded_worker

        # b already carries 3 of our placements: a (3/4) now beats
        # b (1+3 = 4/4).
        choice = least_loaded_worker(self._fleet(), {"http://b:1": 3})
        assert choice["url"] == "http://a:1"

    def test_excluded_workers_avoided_until_nothing_else_is_left(self):
        from repro.orchestrator.backends import least_loaded_worker

        fleet = self._fleet()
        choice = least_loaded_worker(fleet, {}, excluded={"http://b:1"})
        assert choice["url"] == "http://a:1"
        # Every alive worker excluded → exclusion is waived, not fatal.
        choice = least_loaded_worker(
            fleet, {}, excluded={"http://a:1", "http://b:1"}
        )
        assert choice is not None
        # No alive worker at all → None.
        for view in fleet.values():
            view["state"] = DEAD
        assert least_loaded_worker(fleet, {}) is None

    def test_deterministic_url_tie_break(self):
        from repro.orchestrator.backends import least_loaded_worker

        fleet = {
            url: {"url": url, "state": ALIVE, "max_concurrent": 2,
                  "load": {"running": 0, "queued": 0}}
            for url in ("http://b:1", "http://a:1")
        }
        assert least_loaded_worker(fleet, {})["url"] == "http://a:1"

    def test_idle_capacity(self):
        from repro.orchestrator.backends import idle_capacity

        fleet = self._fleet()
        assert idle_capacity(fleet, {})
        # Saturate both alive workers: no room to steal into.
        assert not idle_capacity(fleet, {"http://a:1": 1, "http://b:1": 3})
        # Unknown capacity (a static pin) always counts as room.
        fleet["http://pin:1"] = {"url": "http://pin:1", "state": ALIVE,
                                 "max_concurrent": None, "load": None}
        assert idle_capacity(fleet, {"http://a:1": 1, "http://b:1": 3})

    def test_adaptive_poll_decays_and_resets(self):
        from repro.orchestrator.backends import _AdaptivePoll

        poll = _AdaptivePoll(0.25, 2.0, 2.0)
        assert poll.interval == 0.25
        poll.record(progressed=False)
        assert poll.interval == 0.5
        poll.record(progressed=False)
        poll.record(progressed=False)
        poll.record(progressed=False)
        assert poll.interval == 2.0  # capped
        poll.record(progressed=True)
        assert poll.interval == 0.25  # progress snaps back to fast


@pytest.mark.integration
class TestRegistryOverHTTP:
    """The same semantics through the real server and client."""

    @pytest.fixture
    def served(self, tmp_path):
        from repro.service.client import ProFIPyClient
        from repro.service.http import start_server
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path / "ws", lease_seconds=10.0)
        clock = FakeClock()
        service.registry.clock = clock
        server, _thread = start_server(service)
        yield ProFIPyClient(server.url), clock
        server.shutdown()
        service.close()

    def test_round_trip(self, served):
        client, clock = served
        view = client.register_worker({"url": "http://w:1",
                                       "max_concurrent": 2})
        assert view["state"] == ALIVE
        hb = client.worker_heartbeat(
            view["worker_id"],
            {"running": 1, "queued": 0, "max_concurrent": 2},
        )
        assert hb["load"]["running"] == 1
        listed = client.list_workers()
        assert [w["worker_id"] for w in listed] == [view["worker_id"]]

    def test_error_codes_over_the_wire(self, served):
        client, clock = served
        with pytest.raises(KeyError):
            client.worker_heartbeat("worker-9999")
        view = client.register_worker({"url": "http://w:1"})
        client.register_worker({"url": "http://w:1"})
        with pytest.raises(LeaseExpiredError):
            client.worker_heartbeat(view["worker_id"])
        with pytest.raises(ValueError):
            client.register_worker({"url": ""})

    def test_transitions_visible_over_the_wire(self, served):
        client, clock = served
        view = client.register_worker({"url": "http://w:1"})
        clock.advance(15.0)
        assert client.list_workers()[0]["state"] == SUSPECT
        clock.advance(10.0)
        assert client.list_workers()[0]["state"] == DEAD
