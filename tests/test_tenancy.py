"""Multi-tenancy tests: the tenant directory and token auth, fair-share
scheduling, per-tenant namespaces and quotas, and the two-tenants-on-one-
live-server isolation contract (the PR acceptance criterion).
"""

import hashlib
import json
import threading
import time
import urllib.request

import pytest

from repro.faultmodel.library import gswfit_model
from repro.orchestrator.campaign import CampaignConfig
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.jobs import JobRunner
from repro.service.service import ProFIPyService
from repro.service.tenants import (
    DEFAULT_TENANT,
    UNLIMITED_SPEC,
    AuthenticationError,
    QuotaExceededError,
    TenantDirectory,
    TenantForbiddenError,
    TenantSpec,
    TokenBucket,
    validate_tenant_name,
)


def quick_config(toy_project, toy_model, toy_workload, name="toy"):
    return CampaignConfig(
        name=name,
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=False,
        parallelism=1,
        seed=7,
    )


# -- tenant directory and specs ---------------------------------------------------


class TestTenantSpecAndDirectory:
    def test_valid_names(self):
        for name in ("alice", "team-7", "a.b_c", "X"):
            assert validate_tenant_name(name) == name

    @pytest.mark.parametrize("name", ["", "../up", "a/b", ".", "..",
                                      "-lead", "x" * 65, 7, None])
    def test_invalid_names_rejected(self, name):
        with pytest.raises(ValueError):
            validate_tenant_name(name)

    def test_spec_validates_bounds(self):
        with pytest.raises(ValueError):
            TenantSpec(name="a", max_running=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", max_queued=-1)
        with pytest.raises(ValueError):
            TenantSpec(name="a", requests_per_second=0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", burst=0)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            TenantSpec.from_dict("a", {"token": "t", "max_jobs": 3})

    def test_directory_rejects_reserved_default_name(self):
        with pytest.raises(ValueError, match="reserved"):
            TenantDirectory([TenantSpec(name=DEFAULT_TENANT, token="t")])

    def test_directory_requires_unique_tokens(self):
        with pytest.raises(ValueError, match="unique"):
            TenantDirectory([TenantSpec(name="a", token="same"),
                             TenantSpec(name="b", token="same")])

    def test_directory_requires_tokens(self):
        with pytest.raises(ValueError, match="no token"):
            TenantDirectory([TenantSpec(name="a")])

    def test_authenticate(self):
        directory = TenantDirectory.from_dict({"tenants": {
            "alice": {"token": "a-tok"},
            "bob": {"token": "b-tok", "max_queued": 3},
        }})
        assert directory.authenticate("a-tok") == "alice"
        assert directory.authenticate("b-tok") == "bob"
        with pytest.raises(AuthenticationError):
            directory.authenticate(None)
        with pytest.raises(AuthenticationError):
            directory.authenticate("wrong")
        assert directory.spec("bob").max_queued == 3
        assert directory.spec(DEFAULT_TENANT) is UNLIMITED_SPEC
        assert directory.names() == ["alice", "bob"]

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": {
            "alice": {"token": "s3cret", "max_running": 2},
        }}), encoding="utf-8")
        directory = TenantDirectory.from_file(path)
        assert directory.authenticate("s3cret") == "alice"
        assert directory.spec("alice").max_running == 2

    def test_from_file_errors_are_valueerrors(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            TenantDirectory.from_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            TenantDirectory.from_file(bad)

    def test_token_never_leaks_from_redacted_view(self):
        spec = TenantSpec(name="a", token="hunter2")
        assert spec.to_dict(redact_token=True)["token"] == "***"
        assert spec.to_dict()["token"] == "hunter2"


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock[0] += 1.0
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3, clock=lambda: clock[0])
        clock[0] += 60.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()


# -- fair-share scheduler ---------------------------------------------------------


class TestFairShareScheduler:
    def _runner(self, tmp_path, max_workers=1, limits=None):
        return JobRunner(tmp_path / "jobs", max_workers=max_workers,
                         tenants_root=tmp_path / "tenants", limits=limits)

    def test_backlog_does_not_starve_other_tenant(self, tmp_path):
        """A tenant's deep backlog must not block another tenant's
        first job — the round-robin drain interleaves tenants."""
        runner = self._runner(tmp_path, max_workers=1)
        order = []
        gate = threading.Event()

        def body(name):
            def run(job_dir):
                order.append(name)
                if name == "a-0":
                    gate.wait(15)
            return run

        jobs = [runner.submit(name, body(name), tenant="alice")
                for name in ("a-0", "a-1", "a-2")]
        jobs.append(runner.submit("b-0", body("b-0"), tenant="bob"))
        gate.set()
        for job in jobs:
            assert runner.wait(job.job_id, 30).status == "completed"
        runner.close()
        # bob's first job runs ahead of the tail of alice's backlog.
        assert order.index("b-0") < order.index("a-2")

    def test_max_running_caps_one_tenant_not_others(self, tmp_path):
        limits = {"alice": TenantSpec(name="alice", token="t",
                                      max_running=1)}
        runner = self._runner(
            tmp_path, max_workers=2,
            limits=lambda tenant: limits.get(tenant, UNLIMITED_SPEC),
        )
        gate = threading.Event()
        first = runner.submit("a-first", lambda d: gate.wait(15),
                              tenant="alice")
        deadline = time.monotonic() + 10
        while (runner.get(first.job_id).status != "running"
               and time.monotonic() < deadline):
            time.sleep(0.02)
        second = runner.submit("a-second", lambda d: None, tenant="alice")
        # A free worker slot exists, but alice is at her cap.
        time.sleep(0.3)
        assert runner.get(second.job_id).status == "queued"
        # bob is not affected by alice's cap: his job takes the free slot.
        done = runner.submit("b-job", lambda d: None, tenant="bob",
                             block=True)
        assert done.status == "completed"
        gate.set()
        assert runner.wait(second.job_id, 30).status == "completed"
        runner.close()

    def test_max_queued_quota(self, tmp_path):
        limits = {"alice": TenantSpec(name="alice", token="t",
                                      max_running=1, max_queued=1)}
        runner = self._runner(
            tmp_path, max_workers=1,
            limits=lambda tenant: limits.get(tenant, UNLIMITED_SPEC),
        )
        gate = threading.Event()
        blocker = runner.submit("blocker", lambda d: gate.wait(15),
                                tenant="alice")
        deadline = time.monotonic() + 10
        while (runner.get(blocker.job_id).status != "running"
               and time.monotonic() < deadline):
            time.sleep(0.02)
        queued = runner.submit("queued", lambda d: None, tenant="alice")
        with pytest.raises(QuotaExceededError, match="max_queued"):
            runner.submit("rejected", lambda d: None, tenant="alice")
        # The other tenant still submits freely.
        other = runner.submit("bob-job", lambda d: None, tenant="bob")
        gate.set()
        for job in (blocker, queued, other):
            assert runner.wait(job.job_id, 30).status == "completed"
        runner.close()

    def test_tenant_jobs_live_in_tenant_namespace(self, tmp_path):
        runner = self._runner(tmp_path)
        scoped = runner.submit("scoped", lambda d: None, tenant="alice",
                               block=True)
        plain = runner.submit("plain", lambda d: None, block=True)
        assert scoped.directory.parent == tmp_path / "tenants" / "alice" \
            / "jobs"
        assert plain.directory.parent == tmp_path / "jobs"
        assert scoped.tenant == "alice"
        assert plain.tenant == DEFAULT_TENANT
        assert [j.job_id for j in runner.list("alice")] == [scoped.job_id]
        assert [j.job_id for j in runner.list(DEFAULT_TENANT)] == \
            [plain.job_id]
        assert len(runner.list()) == 2
        runner.close()

    def test_rescan_recovers_tenant_jobs_and_global_ids(self, tmp_path):
        runner = self._runner(tmp_path)
        scoped = runner.submit("scoped", lambda d: None, tenant="alice",
                               block=True)
        runner.close()
        reborn = self._runner(tmp_path)
        recovered = reborn.get(scoped.job_id)
        assert recovered.tenant == "alice"
        assert recovered.status == "completed"
        # Job ids stay globally unique across tenant namespaces.
        fresh = reborn.submit("fresh", lambda d: None, block=True)
        assert fresh.job_id != scoped.job_id
        reborn.close()


# -- in-process service namespaces -------------------------------------------------


class TestServiceTenantNamespaces:
    def test_model_registry_is_namespaced(self, tmp_path):
        service = ProFIPyService(tmp_path / "ws")
        alice = service.for_tenant("alice")
        bob = service.for_tenant("bob")
        model = gswfit_model()
        model.name = "custom"
        path = alice.save_model(model)
        assert (tmp_path / "ws" / "tenants" / "alice" / "models") in \
            path.parents
        assert "custom" in alice.list_models()
        assert "custom" not in bob.list_models()
        with pytest.raises(KeyError):
            bob.load_model("custom")
        # Pre-defined models stay available to every tenant.
        assert bob.load_model("gswfit").name == "gswfit"
        service.close()

    def test_default_tenant_keeps_single_user_layout(self, tmp_path):
        service = ProFIPyService(tmp_path / "ws")
        model = gswfit_model()
        model.name = "plain"
        path = service.save_model(model)
        assert path.parent == tmp_path / "ws" / "models"
        service.close()

    @pytest.mark.integration
    def test_jobs_and_stats_are_tenant_scoped(
            self, tmp_path, toy_project, toy_model, toy_workload):
        service = ProFIPyService(tmp_path / "ws", max_workers=2)
        alice = service.for_tenant("alice")
        bob = service.for_tenant("bob")
        job = alice.submit_campaign(
            quick_config(toy_project, toy_model, toy_workload), block=True
        )
        assert job.status == "completed", job.error
        # On disk: the job, its scan cache, and its stats index all live
        # under the tenant namespace.
        root = tmp_path / "ws" / "tenants" / "alice"
        assert root / "jobs" in job.directory.parents
        assert (root / "scan_cache").is_dir()
        assert (root / "stats").is_dir()
        # Visibility: alice sees her job and stats, bob sees neither.
        assert [j.job_id for j in alice.list_jobs()] == [job.job_id]
        assert bob.list_jobs() == []
        assert alice.stats_campaigns()
        assert bob.stats_campaigns() == []
        # Cross-tenant access answers forbidden, for every accessor.
        for call in (bob.job, bob.cancel, bob.report_text,
                     bob.result_summary, bob.experiments, bob.job_progress):
            with pytest.raises(TenantForbiddenError):
                call(job.job_id)
        with pytest.raises(TenantForbiddenError):
            bob.wait(job.job_id, timeout=1)
        with pytest.raises(TenantForbiddenError):
            bob.submit_campaign(
                quick_config(toy_project, toy_model, toy_workload),
                block=False, resume_from=job.job_id,
            )
        # The unscoped in-process caller (operator) still sees all jobs.
        assert service.job(job.job_id).status == "completed"
        service.close()


# -- the live-server isolation contract --------------------------------------------


TENANTS = {"tenants": {
    "alice": {"token": "alice-token", "max_running": 1, "max_queued": 1,
              "max_blob_bytes": 10},
    "bob": {"token": "bob-token", "max_running": 1},
    "carol": {"token": "carol-token", "requests_per_second": 0.001,
              "burst": 2},
}}


@pytest.fixture
def tenant_stack(tmp_path):
    """One live server with three configured tenants, plus one client
    per tenant."""
    service = ProFIPyService(
        tmp_path / "ws", max_workers=2,
        tenants=TenantDirectory.from_dict(TENANTS),
    )
    server, _thread = start_server(service)
    clients = {name: ProFIPyClient(server.url,
                                   token=f"{name}-token")
               for name in ("alice", "bob", "carol")}
    yield service, server, clients
    server.shutdown()
    service.close()


class TestAuthOverHTTP:
    def test_missing_or_bad_token_is_unauthorized(self, tenant_stack):
        _service, server, _clients = tenant_stack
        for client in (ProFIPyClient(server.url),
                       ProFIPyClient(server.url, token="wrong")):
            with pytest.raises(AuthenticationError):
                client.list_jobs()
            with pytest.raises(AuthenticationError):
                client.list_models()

    def test_ping_stays_open(self, tenant_stack):
        _service, server, _clients = tenant_stack
        assert ProFIPyClient(server.url).ping()["service"] == "profipy"

    def test_non_bearer_authorization_is_unauthorized(self, tenant_stack):
        _service, server, _clients = tenant_stack
        request = urllib.request.Request(
            server.url + "/v1/jobs",
            headers={"Authorization": "Basic YWxpY2U6cHc="},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 401

    def test_rate_limit_answers_429(self, tenant_stack):
        _service, _server, clients = tenant_stack
        carol = clients["carol"]
        # burst=2 at a negligible refill rate: two requests pass, the
        # third bounces.
        carol.list_jobs()
        carol.list_jobs()
        with pytest.raises(QuotaExceededError):
            carol.list_jobs()
        # Other tenants have their own (absent) bucket.
        assert clients["bob"].list_jobs() == []


@pytest.mark.integration
class TestTenantIsolationOverHTTP:
    """Two tenants on one live server cannot see, cancel, or wait on
    each other's jobs/models/stats — and quotas bind per tenant."""

    def test_cross_tenant_isolation(self, tenant_stack, toy_project,
                                    toy_model, toy_workload):
        _service, _server, clients = tenant_stack
        alice, bob = clients["alice"], clients["bob"]

        model = gswfit_model()
        model.name = "alice-custom"
        alice.save_model(model)
        assert "alice-custom" in alice.list_models()
        assert "alice-custom" not in bob.list_models()
        with pytest.raises(KeyError):
            bob.load_model("alice-custom")

        job = alice.submit_campaign(
            quick_config(toy_project, toy_model, toy_workload), block=True
        )
        assert job.status == "completed", job.error
        assert [j.job_id for j in alice.list_jobs()] == [job.job_id]
        assert bob.list_jobs() == []
        for call in (bob.job, bob.cancel, bob.report_text,
                     bob.result_summary, bob.experiments):
            with pytest.raises(TenantForbiddenError):
                call(job.job_id)
        with pytest.raises(TenantForbiddenError):
            bob.wait(job.job_id, timeout=5)
        assert alice.stats_campaigns()
        assert bob.stats_campaigns() == []

    def test_over_quota_429_while_other_tenant_drains(
            self, tenant_stack, toy_project, toy_model, toy_workload):
        service, _server, clients = tenant_stack
        alice, bob = clients["alice"], clients["bob"]
        # Hold alice's single execution slot server-side, then fill her
        # one-deep queue.
        gate = threading.Event()
        blocker = service.runner.submit("blocker",
                                        lambda d: gate.wait(30),
                                        tenant="alice")
        config = quick_config(toy_project, toy_model, toy_workload)
        queued = alice.submit_campaign(config, block=False)
        with pytest.raises(QuotaExceededError):
            alice.submit_campaign(config, block=False)
        # The other tenant's submissions still drain to completion.
        done = bob.submit_campaign(config, block=True)
        assert done.status == "completed", done.error
        gate.set()
        assert alice.wait(blocker.job_id, timeout=60).status == "completed"
        assert alice.wait(queued.job_id, timeout=120).status == "completed"

    def test_blob_quota_charges_new_bytes_only(self, tenant_stack):
        _service, _server, clients = tenant_stack
        alice = clients["alice"]  # max_blob_bytes=10
        small = b"12345678"
        digest = hashlib.sha256(small).hexdigest()
        assert alice.put_blob(digest, small)["digest"] == digest
        # Re-putting the same blob is free (content-addressed dedup).
        assert alice.put_blob(digest, small)["digest"] == digest
        other = b"87654321"
        with pytest.raises(QuotaExceededError):
            alice.put_blob(hashlib.sha256(other).hexdigest(), other)
        # bob has no blob quota at all.
        assert clients["bob"].put_blob(
            hashlib.sha256(other).hexdigest(), other
        )["digest"] == hashlib.sha256(other).hexdigest()
