"""Tests for the tracing substrate and failure visualization."""

import time

import pytest

from repro.analysis.visualization import render_events, render_timeline
from repro.tracing import Span, Tracer, instrument_object, load_spans


class TestTracer:
    def test_span_records_timing(self):
        tracer = Tracer("svc")
        with tracer.span("op"):
            time.sleep(0.01)
        [span] = tracer.spans
        assert span.name == "op"
        assert span.duration >= 0.01
        assert span.status == "ok"

    def test_nested_spans_linked(self):
        tracer = Tracer("svc")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_exception_marks_span(self):
        tracer = Tracer("svc")
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        [span] = tracer.spans
        assert span.status == "error: ValueError"
        assert span.end is not None

    def test_annotations_stringified(self):
        tracer = Tracer("svc")
        with tracer.span("op", key=123):
            pass
        assert tracer.spans[0].annotations == {"key": "123"}

    def test_jsonl_sink_round_trip(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer("svc", sink=sink)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        spans = load_spans(sink)
        assert [span.name for span in spans] == ["one", "two"]
        assert spans[0].trace_id == tracer.trace_id

    def test_load_missing_file(self, tmp_path):
        assert load_spans(tmp_path / "none.jsonl") == []


class TestInstrumentation:
    class Api:
        def __init__(self):
            self.calls = []

        def ping(self, value):
            self.calls.append(value)
            return value * 2

        def explode(self):
            raise RuntimeError("bang")

    def test_wrapping_preserves_behavior(self):
        api = self.Api()
        tracer = Tracer("api")
        instrument_object(api, tracer, methods=["ping"])
        assert api.ping(21) == 42
        assert api.calls == [21]
        [span] = tracer.spans
        assert span.name == "ping"
        assert "21" in span.annotations["args"]

    def test_exceptions_propagate_and_mark(self):
        api = self.Api()
        tracer = Tracer("api")
        instrument_object(api, tracer, methods=["explode"])
        with pytest.raises(RuntimeError):
            api.explode()
        assert tracer.spans[0].status == "error: RuntimeError"

    def test_default_wraps_public_methods(self):
        api = self.Api()
        tracer = Tracer("api")
        instrument_object(api, tracer)
        api.ping(1)
        assert len(tracer.spans) == 1

    def test_non_callable_rejected(self):
        api = self.Api()
        api.value = 3
        with pytest.raises(TypeError):
            instrument_object(api, Tracer("api"), methods=["value"])


class TestVisualization:
    def spans(self):
        return [
            Span(service="client", name="set", start=0.0, end=0.5),
            Span(service="server", name="PUT /k", start=0.1, end=0.3),
            Span(service="client", name="get", start=0.6, end=0.7,
                 status="error: EtcdKeyNotFound"),
        ]

    def test_timeline_contains_lanes_and_bars(self):
        text = render_timeline(self.spans(), width=40)
        assert "client" in text and "server" in text
        assert "#" in text
        assert "!" in text  # failed span drawn differently
        assert "error: EtcdKeyNotFound" in text

    def test_timeline_empty(self):
        assert "no spans" in render_timeline([])

    def test_events_chronological(self):
        text = render_events(self.spans())
        lines = text.splitlines()
        assert "client.set" in lines[0]
        assert "server.PUT /k" in lines[1]
        assert "<<error: EtcdKeyNotFound>>" in lines[2]

    def test_events_empty(self):
        assert "no spans" in render_events([])
