"""Behavioural tests: each G-SWFIT operator transforms code as specified.

One focused scenario per operator (paper §II/§III): a snippet with exactly
one intended match, mutated in permanent mode, checked against the
operator's definition.
"""

import ast
import textwrap

import pytest

from repro.faultmodel.library import extended_model, gswfit_model
from repro.mutator.mutate import Mutator
from repro.scanner.scan import scan_source

MODELS = {model.name: model
          for model in gswfit_model().compile() + extended_model().compile()}


def mutate(name, source, ordinal=0):
    source = textwrap.dedent(source).strip() + "\n"
    model = MODELS[name]
    points = scan_source(source, [model])
    assert points, f"{name} found no injection points"
    mutation = Mutator(trigger=False).mutate_source(source, model, ordinal)
    ast.parse(mutation.source)
    return mutation.source, len(points)


class TestGswfitOperators:
    def test_mfc_removes_call_keeps_context(self):
        mutated, _ = mutate("MFC", """
            def f():
                setup()
                notify(listener)
                teardown()
        """)
        assert "notify" not in mutated
        assert "setup()" in mutated and "teardown()" in mutated

    def test_mviv_removes_numeric_initialization(self):
        mutated, _ = mutate("MVIV", """
            def f():
                retries = 3
                run(retries)
        """)
        assert "retries = 3" not in mutated
        assert "run(retries)" in mutated

    def test_mvav_removes_string_assignment(self):
        mutated, _ = mutate("MVAV", """
            def f():
                prepare()
                mode = 'strict'
                apply(mode)
        """)
        assert "mode = 'strict'" not in mutated
        assert "prepare()" in mutated and "apply(mode)" in mutated

    def test_mvae_keeps_call_drops_assignment(self):
        mutated, _ = mutate("MVAE", """
            def f():
                prepare()
                handle = acquire(resource)
                release(handle)
        """)
        assert "handle = acquire" not in mutated
        assert "acquire(resource)" in mutated  # side effects preserved

    def test_mia_unwraps_if_body(self):
        mutated, _ = mutate("MIA", """
            if ready:
                launch()
        """)
        tree = ast.parse(mutated)
        assert not any(isinstance(node, ast.If) for node in ast.walk(tree))
        assert "launch()" in mutated

    def test_mifs_removes_guarded_block(self):
        mutated, _ = mutate("MIFS", """
            def f():
                if ready:
                    launch()
                cleanup()
        """)
        assert "launch" not in mutated
        assert "cleanup()" in mutated

    def test_mieb_drops_else_branch(self):
        mutated, _ = mutate("MIEB", """
            if ok:
                accept()
            else:
                reject()
        """)
        assert "accept()" in mutated
        assert "reject" not in mutated

    def test_mlac_drops_second_conjunct(self):
        mutated, _ = mutate("MLAC", """
            if valid and authorized:
                proceed()
        """)
        assert "if valid:" in mutated
        assert "authorized" not in mutated

    def test_mloc_drops_second_disjunct(self):
        mutated, _ = mutate("MLOC", """
            if cached or fresh:
                serve()
        """)
        assert "if cached:" in mutated
        assert "fresh" not in mutated

    def test_mlpa_removes_two_consecutive_calls(self):
        mutated, _ = mutate("MLPA", """
            def f():
                begin()
                step_one()
                step_two()
                end()
        """)
        assert "step_one" not in mutated and "step_two" not in mutated
        assert "begin()" in mutated and "end()" in mutated

    def test_wvav_corrupts_assigned_value(self):
        mutated, _ = mutate("WVAV", "limit = compute_limit()\n")
        assert "__pfp_rt__.corrupt(compute_limit()" in mutated

    def test_wpfv_corrupts_variable_argument(self):
        mutated, _ = mutate("WPFV", "send(packet)\n")
        assert "send(__pfp_rt__.corrupt(packet, 'auto'))" in mutated

    def test_waep_flips_arithmetic(self):
        mutated, _ = mutate("WAEP", "resize(width + margin)\n")
        assert "width - margin" in mutated


class TestExtendedOperators:
    def test_throw_on_call_raises(self):
        mutated, _ = mutate("THROW_ON_CALL", "x = fetch(url)\n")
        assert mutated.startswith("raise ")

    def test_none_return(self):
        mutated, _ = mutate("NONE_RETURN", "conn = connect(host)\n")
        assert "conn = None" in mutated

    def test_mpfc_drops_last_argument(self):
        mutated, _ = mutate("MPFC", "configure(base, timeout)\n")
        assert "configure(base)" in mutated

    def test_wlec_negates_condition(self):
        mutated, _ = mutate("WLEC", """
            if healthy:
                keep()
        """)
        assert "if not healthy:" in mutated

    def test_hog_cpu_appends_hog(self):
        mutated, _ = mutate("HOG_CPU", "process(batch)\n")
        assert "process(batch)" in mutated
        assert "__pfp_rt__.hog('cpu'" in mutated

    def test_delay_call_prepends_delay(self):
        mutated, _ = mutate("DELAY_CALL", "flush(queue)\n")
        lines = [line for line in mutated.splitlines() if line.strip()]
        delay_index = next(i for i, line in enumerate(lines)
                           if "delay" in line)
        flush_index = next(i for i, line in enumerate(lines)
                           if "flush" in line)
        assert delay_index < flush_index

    def test_mrs_removes_return(self):
        mutated, _ = mutate("MRS", """
            def f():
                compute()
                return result
        """)
        assert "return" not in mutated
        assert "compute()" in mutated


class TestOperatorSelectivity:
    """Operators must not fire on shapes outside their definition."""

    @pytest.mark.parametrize("name,source", [
        ("MFC", "def f():\n    only_call()\n"),          # lone statement
        ("MIFS", "if c:\n    a()\nelse:\n    b()\n"),    # has an else
        ("MLAC", "if a or b:\n    go()\n"),              # wrong operator
        ("MIEB", "if a:\n    go()\n"),                   # no else branch
        ("WAEP", "f(x * y)\n"),                          # not additive
        ("MPFC", "f()\n"),                               # no args to drop
    ])
    def test_no_match(self, name, source):
        model = MODELS[name]
        assert scan_source(source, [model]) == []
