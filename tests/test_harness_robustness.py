"""Failure injection into the injector: the harness must degrade gracefully.

Malformed targets, broken workloads, dead services, and hostile source
files must surface as recorded errors/failure modes — never as crashes of
the campaign itself.
"""

import pytest

from repro.dsl.compiler import compile_text
from repro.faultmodel.library import gswfit_model
from repro.mutator.mutate import Mutator
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file, scan_tree
from repro.workload.spec import WorkloadSpec


class TestHostileTargets:
    def test_unparseable_file_recorded_not_fatal(self, tmp_path):
        (tmp_path / "good.py").write_text("foo()\nbar()\n")
        (tmp_path / "broken.py").write_text("def :::\n")
        result = scan_tree(tmp_path, gswfit_model().enabled_specs()[:3])
        assert "broken.py" in result.parse_errors
        assert result.files_scanned == 2

    def test_unparseable_file_in_parallel_scan(self, tmp_path):
        (tmp_path / "a.py").write_text("foo()\n")
        (tmp_path / "b.py").write_text("if True\n")
        result = scan_tree(tmp_path, gswfit_model().enabled_specs()[:2],
                           jobs=2)
        assert "b.py" in result.parse_errors

    def test_unicode_and_bom_sources(self, tmp_path):
        source = '﻿# coding comment\nname = "café"\nuse(name)\n'
        path = tmp_path / "uni.py"
        path.write_text(source, encoding="utf-8")
        model = compile_text("change { use($VAR#v) } into { pass }")
        result = scan_file(path, [model], root=tmp_path)
        # BOM is tolerated (either matched or recorded, never raised).
        assert result.files_scanned == 1

    def test_deeply_nested_target(self):
        depth = 40
        source = ""
        for level in range(depth):
            source += "    " * level + f"if cond_{level}:\n"
        source += "    " * depth + "action()\n"
        model = compile_text("change { action() } into { pass }")
        from repro.scanner.scan import scan_source

        points = scan_source(source, [model])
        assert len(points) == 1

    def test_empty_file(self, tmp_path):
        (tmp_path / "empty.py").write_text("")
        result = scan_tree(tmp_path, gswfit_model().enabled_specs()[:2])
        assert result.points == []
        assert not result.parse_errors


class TestBrokenWorkloads:
    @pytest.fixture
    def image(self, toy_project, tmp_path):
        return SandboxImage.build(toy_project, tmp_path / "image")

    @pytest.fixture
    def models(self, toy_model):
        return {model.name: model for model in toy_model.compile()}

    @pytest.fixture
    def plan(self, toy_project, toy_model):
        scan = scan_file(toy_project / "app.py", toy_model.compile(),
                         root=toy_project)
        return Plan.from_points(scan.points)

    def test_workload_command_not_found(self, image, models, plan,
                                        tmp_path):
        workload = WorkloadSpec(commands=["definitely_not_a_command_xyz"],
                                command_timeout=10)
        executor = ExperimentExecutor(image=image, workload=workload,
                                      models=models,
                                      base_dir=tmp_path / "boxes")
        result = executor.run(plan.experiments[0])
        assert result.completed
        assert result.failed_round1  # classified, not crashed

    def test_service_never_ready_is_recorded(self, image, models, plan,
                                             tmp_path):
        workload = WorkloadSpec(
            service_commands=["sleep 30"],
            commands=["echo hi"],
            ready_file="never",
            ready_timeout=0.3,
        )
        executor = ExperimentExecutor(image=image, workload=workload,
                                      models=models,
                                      base_dir=tmp_path / "boxes")
        result = executor.run(plan.experiments[0])
        assert result.status == "service_start_failed"
        assert "never" in result.error

    def test_hanging_workload_times_out(self, image, models, plan,
                                        tmp_path):
        workload = WorkloadSpec(commands=["sleep 60"], command_timeout=0.5)
        executor = ExperimentExecutor(image=image, workload=workload,
                                      models=models,
                                      base_dir=tmp_path / "boxes")
        result = executor.run(plan.experiments[0])
        assert result.completed
        assert result.round(1).timed_out
        assert result.duration < 30

    def test_missing_model_is_harness_error(self, image, plan, tmp_path,
                                            toy_workload):
        executor = ExperimentExecutor(image=image, workload=toy_workload,
                                      models={},  # spec lookup will fail
                                      base_dir=tmp_path / "boxes")
        result = executor.run(plan.experiments[0])
        assert result.status == "harness_error"
        assert "KeyError" in result.error


@pytest.mark.integration
class TestCampaignResilience:
    def test_campaign_survives_broken_workload(self, toy_project, toy_model,
                                               tmp_path):
        config = CampaignConfig(
            name="broken",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=WorkloadSpec(commands=["exit 7"], command_timeout=10),
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            workspace=tmp_path / "ws",
        )
        result = Campaign(config).run()
        assert result.executed == 2
        # Every experiment failed (workload broken), none crashed the run.
        assert all(e.completed for e in result.experiments)
        assert len(result.failures) == 2

    def test_mutator_rejects_spec_without_matches_cleanly(self):
        model = compile_text("change { never_called_anywhere() } into { }")
        with pytest.raises(IndexError):
            Mutator().mutate_source("x = 1\n", model, 0)


class TestDrillDown:
    def test_inspect_renders_failing_experiments(self, toy_project,
                                                 toy_model, toy_workload,
                                                 tmp_path):
        from repro.analysis.report import CampaignReport

        config = CampaignConfig(
            name="drill",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=True,
            parallelism=1,
            workspace=tmp_path / "ws",
        )
        result = Campaign(config).run()
        report = CampaignReport(result)
        [mode] = [m for m in report.distribution.counts()
                  if m != "no_failure"]
        text = report.inspect(mode)
        assert "injected :" in text
        assert "WORKLOAD FAILURE" in text

    def test_inspect_unknown_mode(self, tmp_path):
        from repro.analysis.report import CampaignReport
        from repro.orchestrator.campaign import CampaignResult

        report = CampaignReport(CampaignResult(name="x"))
        assert "no experiments" in report.inspect("nope")
