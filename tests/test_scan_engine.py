"""Indexed scan engine: equivalence, caching, parallelism, match memo.

The property at the heart of this module: the indexed engine (prefilter +
shared AST walk + warm workers + cache) must return **identical**
``InjectionPoint`` lists — same points, same order, same ordinals — as the
naive per-spec reference matcher, across the synthetic §V-D codebase and
every ``expand_api_faults`` pattern.
"""

import ast
from pathlib import Path

import pytest

from repro.common.textutil import truncate
from repro.faultmodel.library import (
    expand_api_faults,
    extended_model,
    gswfit_model,
)
from repro.mutator.mutate import Mutator
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.scanner.cache import MatchMemo, ScanCache, faultload_digest
from repro.scanner.matcher import Matcher
from repro.scanner.points import InjectionPoint, component_of
from repro.scanner.scan import (
    ScanEngine,
    match_source,
    scan_file,
    scan_files,
    scan_source,
    scan_tree,
)
from repro.synth import SynthConfig, generate_codebase, scan_pattern_apis


def naive_scan_source(source, models, file="<string>"):
    """The seed implementation: full AST walk per spec, no prefilter."""
    tree = ast.parse(source)
    points = []
    component = component_of(file)
    for model in models:
        matches = Matcher(model).find_matches(tree)
        for ordinal, match in enumerate(matches):
            snippet = "; ".join(
                ast.unparse(stmt).splitlines()[0] for stmt in match.stmts[:3]
            )
            points.append(InjectionPoint(
                spec_name=model.name,
                file=file,
                ordinal=ordinal,
                lineno=match.lineno,
                end_lineno=match.end_lineno,
                snippet=truncate(snippet, 120),
                component=component,
            ))
    return points


@pytest.fixture(scope="module")
def synth_tree(tmp_path_factory):
    dest = tmp_path_factory.mktemp("synth-engine")
    generate_codebase(dest, SynthConfig(files=4, seed=13))
    return dest


@pytest.fixture(scope="module")
def api_model():
    model = expand_api_faults(scan_pattern_apis(), kinds=None,
                              model_name="engine_eq")
    assert len(model.enabled_specs()) == 120
    return model


class TestEquivalence:
    def test_indexed_equals_naive_on_synth_corpus(self, synth_tree, api_model):
        """All 120 expanded patterns + both predefined models, every file."""
        models = (api_model.compile() + gswfit_model().compile()
                  + extended_model().compile())
        engine = ScanEngine(models)
        for path in sorted(synth_tree.rglob("*.py")):
            source = path.read_text(encoding="utf-8")
            naive = naive_scan_source(source, models, file=path.name)
            indexed = engine.scan_source(source, file=path.name)
            assert indexed == naive
        stats = engine.prefilter_stats()
        assert stats["pairs_skipped"] > 0  # the prefilter actually fires

    def test_scan_tree_parallel_matches_serial(self, synth_tree, api_model):
        specs = api_model.enabled_specs()
        serial = scan_tree(synth_tree, specs, jobs=1)
        parallel = scan_tree(synth_tree, specs, jobs=2)
        assert parallel.points == serial.points
        assert parallel.files_scanned == serial.files_scanned
        assert parallel.parse_errors == serial.parse_errors

    def test_scan_source_prefilter_skips_are_sound(self):
        source = "def f():\n    return compute(1)\n"
        models = gswfit_model().compile()
        assert scan_source(source, models) == naive_scan_source(source, models)

    def test_bracket_class_glob_still_matches(self):
        # Regression: `[.]` matches a literal dot; the prefilter must not
        # fabricate segment requirements from bracket-class globs.
        from repro.dsl.compiler import compile_text

        model = compile_text(
            "change {\n$CALL{name=a[.]b}(...)\n} into {\npass\n}",
            name="bracket",
        )
        source = "def f():\n    a.b()\n"
        assert len(match_source(source, model)) == 1


class TestScanCache:
    def test_memory_cache_round_trip(self, synth_tree, api_model):
        specs = api_model.enabled_specs()
        cache = ScanCache()
        first = scan_tree(synth_tree, specs, cache=cache)
        assert cache.misses > 0
        assert cache.misses + cache.hits == first.files_scanned
        hits_after_first = cache.hits
        second = scan_tree(synth_tree, specs, cache=cache)
        assert second.points == first.points
        # The whole second scan is served from the cache.
        assert cache.hits == hits_after_first + first.files_scanned

    def test_disk_cache_survives_instances(self, tmp_path, api_model):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "a.py").write_text(
            "def f(ctx):\n    base.client.delete_port(ctx)\n")
        specs = api_model.enabled_specs()
        cache_dir = tmp_path / "cache"
        first = scan_tree(project, specs, cache=ScanCache(cache_dir))
        warm = ScanCache(cache_dir)
        second = scan_tree(project, specs, cache=warm)
        assert warm.hits == 1 and warm.misses == 0
        assert second.points == first.points

    def test_identical_content_shares_entry_across_paths(self, tmp_path,
                                                         api_model):
        project = tmp_path / "proj"
        (project / "pkg").mkdir(parents=True)
        body = "def f(ctx):\n    base.client.delete_port(ctx)\n"
        (project / "a.py").write_text(body)
        (project / "pkg" / "b.py").write_text(body)
        cache = ScanCache()
        result = scan_tree(project, api_model.enabled_specs(), cache=cache)
        assert cache.hits == 1  # second file hits the first file's entry
        files = {point.file for point in result.points}
        assert files == {"a.py", str(Path("pkg") / "b.py")}

    def test_syntax_error_is_cached(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "bad.py").write_text("def broken(:\n")
        specs = gswfit_model().enabled_specs()
        cache = ScanCache()
        first = scan_tree(project, specs, cache=cache)
        second = scan_tree(project, specs, cache=cache)
        assert "bad.py" in first.parse_errors
        assert second.parse_errors == first.parse_errors
        assert cache.hits == 1

    def test_malformed_disk_entry_degrades_to_miss(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "a.py").write_text("def f():\n    x = 1\n    return x\n")
        specs = gswfit_model().enabled_specs()
        cache_dir = tmp_path / "cache"
        first = scan_tree(project, specs, cache=ScanCache(cache_dir))

        def drop_manifests():
            # Remove the whole-tree fast-path entries so the rescan must
            # consult (and survive) the corrupted per-file entry.
            for path in list(cache_dir.glob("tree-*.json")):
                path.unlink()
            for path in list(cache_dir.glob("statmanifest-*.json")):
                path.unlink()

        # Corrupt every per-file entry in ways that still parse as JSON.
        drop_manifests()
        entries = sorted(cache_dir.glob("*.json"))
        assert entries
        entries[0].write_text('{"matches": [{}], "version": 1}\n')
        rescanned = scan_tree(project, specs, cache=ScanCache(cache_dir))
        assert rescanned.points == first.points  # re-derived, no KeyError
        drop_manifests()
        entries[0].write_text('{"matches": [], "error": null, "version": 0}\n')
        stale = ScanCache(cache_dir)
        assert scan_tree(project, specs, cache=stale).points == first.points
        assert stale.misses >= 1  # version mismatch is a miss, not a crash

    def test_malformed_tree_entry_degrades_to_per_file(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "a.py").write_text("def f():\n    x = 1\n    return x\n")
        specs = gswfit_model().enabled_specs()
        cache_dir = tmp_path / "cache"
        first = scan_tree(project, specs, cache=ScanCache(cache_dir))
        for path in cache_dir.glob("tree-*.json"):
            path.write_text('{"version": 1, "files": {"a.py": {}}}\n')
        stale = ScanCache(cache_dir)
        rescan = scan_tree(project, specs, cache=stale)
        assert rescan.points == first.points
        assert stale.tree_misses >= 1  # malformed tree entry, not a crash
        assert stale.hits >= 1  # served by the per-file layer instead

    def test_disk_cache_is_pruned_to_cap(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ScanCache(cache_dir)
        for index in range(6):
            cache.store(f"{index:064d}", "d" * 16,
                        {"matches": [], "error": None})
        assert len(list(cache_dir.glob("*.json"))) == 6
        pruned = ScanCache(cache_dir, max_disk_entries=2)
        assert len(list(cache_dir.glob("*.json"))) == 2
        assert pruned.max_disk_entries == 2

    def test_disk_prune_is_lru_not_fifo(self, tmp_path):
        import os
        import time

        cache_dir = tmp_path / "cache"
        cache = ScanCache(cache_dir)
        old_sha, new_sha = "a" * 64, "b" * 64
        cache.store(old_sha, "d" * 16, {"matches": [], "error": None})
        cache.store(new_sha, "d" * 16, {"matches": [], "error": None})
        # Backdate both, then hit the *older* entry from a fresh instance:
        # the hit must refresh its recency so pruning keeps it.
        stale = time.time() - 1000
        for path in cache_dir.glob("*.json"):
            os.utime(path, (stale, stale))
        reader = ScanCache(cache_dir)
        assert reader.lookup(old_sha, "d" * 16) is not None
        ScanCache(cache_dir, max_disk_entries=1)
        survivor = ScanCache(cache_dir)
        assert survivor.lookup(old_sha, "d" * 16) is not None
        assert survivor.lookup(new_sha, "d" * 16) is None

    def test_digest_depends_on_spec_order(self, api_model):
        specs = api_model.enabled_specs()
        assert (faultload_digest(specs)
                != faultload_digest(list(reversed(specs))))


class TestMissingFiles:
    def test_scan_file_records_missing_file(self, tmp_path):
        models = gswfit_model().compile()
        result = scan_file(tmp_path / "nope.py", models, root=tmp_path)
        assert result.points == []
        assert "nope.py" in result.parse_errors
        assert "unreadable" in result.parse_errors["nope.py"]

    def test_scan_files_continues_past_missing(self, tmp_path):
        (tmp_path / "ok.py").write_text("def f():\n    x = 1\n    return x\n")
        specs = gswfit_model().enabled_specs()
        result = scan_files(
            [tmp_path / "missing.py", tmp_path / "ok.py"],
            specs, root=tmp_path,
        )
        assert "missing.py" in result.parse_errors
        assert any(point.file == "ok.py" for point in result.points)

    def test_campaign_scan_records_missing_injectables(
        self, toy_project, toy_model, toy_workload
    ):
        config = CampaignConfig(
            name="missing",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py", "gone.py"],
        )
        result = Campaign(config).scan()  # must not raise FileNotFoundError
        assert "gone.py" in result.parse_errors
        assert any(point.file == "app.py" for point in result.points)

    def test_campaign_scan_jobs_matches_serial(
        self, toy_project, toy_model, toy_workload
    ):
        serial = Campaign(CampaignConfig(
            name="serial", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload,
        )).scan()
        parallel = Campaign(CampaignConfig(
            name="parallel", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload, scan_jobs=2,
        )).scan()
        assert parallel.points == serial.points


class TestMatchMemo:
    SOURCE = (
        "def handler(ctx, client):\n"
        "    log = []\n"
        "    log.append('start')\n"
        "    result = client.delete_port(ctx, 5)\n"
        "    if result:\n"
        "        state = client.refresh(result)\n"
        "        log.append('mid')\n"
        "    value = compute(result, 1 + 2)\n"
        "    return value\n"
    )

    def all_models(self):
        return gswfit_model().compile() + extended_model().compile()

    @pytest.mark.parametrize("trigger", [False, True])
    def test_memoized_mutation_equals_plain(self, trigger):
        memo = MatchMemo()
        for model in self.all_models():
            plain_mutator = Mutator(trigger=trigger)
            memo_mutator = Mutator(trigger=trigger, match_memo=memo)
            count = memo.count(self.SOURCE, model)
            for ordinal in range(count):
                plain = plain_mutator.mutate_source(
                    self.SOURCE, model, ordinal)
                memoized = memo_mutator.mutate_source(
                    self.SOURCE, model, ordinal)
                assert memoized.source == plain.source
                assert memoized.original_snippet == plain.original_snippet
                assert memoized.mutated_snippet == plain.mutated_snippet

    def test_memo_take_is_isolated_per_call(self):
        model = gswfit_model().compile()[0]
        memo = MatchMemo()
        mutator = Mutator(trigger=True, match_memo=memo)
        first = mutator.mutate_source(self.SOURCE, model, 0)
        second = mutator.mutate_source(self.SOURCE, model, 0)
        assert first.source == second.source  # pristine tree never mutated

    def test_memo_out_of_range_matches_plain_error(self):
        model = gswfit_model().compile()[0]
        memo = MatchMemo()
        with pytest.raises(IndexError, match="ordinal 999 requested"):
            Mutator(match_memo=memo).mutate_source(self.SOURCE, model, 999)

    def test_memo_distinguishes_same_name_different_pattern(self):
        from repro.dsl.compiler import compile_text

        returner = compile_text(
            "change {\n$BLOCK{tag=pre; stmts=1,*}\nreturn $EXPR#v\n} "
            "into {\n$BLOCK{tag=pre}\nreturn -1\n}",
            name="twin",
        )
        deleter = compile_text(
            "change {\n$CALL{name=delete_*}(...)\n} into {\npass\n}",
            name="twin",  # same name, different pattern
        )
        memo = MatchMemo()
        first = memo.count(self.SOURCE, returner)
        second = memo.count(self.SOURCE, deleter)
        assert first == len(match_source(self.SOURCE, returner))
        assert second == len(match_source(self.SOURCE, deleter))
        assert first != second  # the cache must not conflate the twins

    def test_memo_eviction_keeps_working(self):
        memo = MatchMemo(max_entries=2)
        models = self.all_models()[:4]
        counts = [memo.count(self.SOURCE, model) for model in models]
        assert len(memo._entries) <= 2
        # Evicted entries are re-derived transparently and identically.
        assert [memo.count(self.SOURCE, model)
                for model in models] == counts
