"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def target_file(tmp_path):
    path = tmp_path / "svc.py"
    path.write_text(
        "def cleanup(client):\n"
        "    log('begin')\n"
        "    client.delete_port(1)\n"
        "    log('end')\n"
    )
    return path


class TestModelsCommands:
    def test_models_list(self, tmp_path, capsys):
        assert main(["--workspace", str(tmp_path), "models", "list"]) == 0
        out = capsys.readouterr().out
        assert "gswfit: 13 fault types" in out
        assert "extended" in out

    def test_models_show(self, tmp_path, capsys):
        assert main(["--workspace", str(tmp_path), "models", "show",
                     "gswfit"]) == 0
        out = capsys.readouterr().out
        assert "[MFC]" in out
        assert "change {" in out

    def test_models_export_and_reuse(self, tmp_path, capsys):
        out_path = tmp_path / "gswfit.json"
        assert main(["--workspace", str(tmp_path), "models", "export",
                     "gswfit", str(out_path)]) == 0
        assert out_path.exists()
        # Exported file is accepted as --model path.
        assert main(["--workspace", str(tmp_path), "models", "show",
                     str(out_path)]) == 0

    def test_unknown_model_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown fault model"):
            main(["--workspace", str(tmp_path), "models", "show", "zzz"])


class TestScanCommand:
    def test_scan_prints_points(self, tmp_path, target_file, capsys):
        assert main(["--workspace", str(tmp_path), "scan",
                     str(target_file)]) == 0
        captured = capsys.readouterr()
        assert "MFC:svc.py:0" in captured.out
        assert "injection points" in captured.err

    def test_scan_directory(self, tmp_path, target_file, capsys):
        assert main(["--workspace", str(tmp_path), "scan",
                     str(target_file.parent)]) == 0
        assert "MFC" in capsys.readouterr().out


class TestMutateCommand:
    def test_mutate_to_stdout(self, tmp_path, target_file, capsys):
        assert main([
            "--workspace", str(tmp_path), "mutate", str(target_file),
            "--spec", "MFC", "--no-trigger",
        ]) == 0
        out = capsys.readouterr().out
        assert "delete_port" not in out
        assert "log('begin')" in out

    def test_mutate_to_file(self, tmp_path, target_file):
        output = tmp_path / "mutant.py"
        assert main([
            "--workspace", str(tmp_path), "mutate", str(target_file),
            "--spec", "MFC", "-o", str(output),
        ]) == 0
        assert "__pfp_rt__.enabled" in output.read_text()

    def test_mutate_unknown_spec(self, tmp_path, target_file):
        with pytest.raises(KeyError):
            main(["--workspace", str(tmp_path), "mutate", str(target_file),
                  "--spec", "NOPE"])


class TestJobsCommands:
    def test_jobs_list_empty(self, tmp_path, capsys):
        assert main(["--workspace", str(tmp_path), "jobs", "list"]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_jobs_list_with_timestamps(self, tmp_path, capsys):
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path)
        service.runner.submit("demo", lambda d: None, block=True)
        assert main(["--workspace", str(tmp_path), "jobs", "list"]) == 0
        out = capsys.readouterr().out
        assert "JOB" in out and "STATUS" in out and "SUBMITTED" in out
        assert "job-0001" in out
        assert "completed" in out
        assert "demo" in out

    def test_jobs_list_shows_progress(self, tmp_path, capsys):
        from repro.common.fsutil import write_json
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path)
        job = service.runner.submit("demo", lambda d: None, block=True)
        write_json(job.directory / "progress.json", {
            "backend": "process", "experiments_done": 3,
            "experiments_total": 8,
            "shards": [{"shard": 0, "total": 8, "done": 3,
                        "state": "running"}],
        })
        assert main(["--workspace", str(tmp_path), "jobs", "list"]) == 0
        out = capsys.readouterr().out
        assert "PROGRESS" in out
        assert "3/8" in out

    def test_jobs_cancel(self, tmp_path, capsys):
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path)
        service.runner.submit("demo", lambda d: None, block=True)
        assert main(["--workspace", str(tmp_path), "jobs", "cancel",
                     "job-0001"]) == 0
        assert "completed" in capsys.readouterr().out  # idempotent no-op

    def test_jobs_list_against_server(self, tmp_path, capsys):
        from repro.service.http import start_server
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path)
        service.runner.submit("remote-demo", lambda d: None, block=True)
        server, _thread = start_server(service)
        try:
            assert main(["jobs", "--server", server.url, "list"]) == 0
            out = capsys.readouterr().out
            assert "job-0001" in out and "remote-demo" in out
        finally:
            server.shutdown()
            service.close()

    def test_jobs_wait(self, tmp_path, capsys):
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path)
        service.runner.submit("demo", lambda d: None, block=True)
        assert main(["--workspace", str(tmp_path), "jobs", "wait",
                     "job-0001"]) == 0
        assert "completed" in capsys.readouterr().out


@pytest.mark.integration
class TestCampaignCommand:
    def test_toy_campaign(self, tmp_path, toy_project, toy_model, capsys):
        model_path = tmp_path / "toy.json"
        toy_model.save(model_path)
        assert main([
            "--workspace", str(tmp_path / "ws"),
            "campaign", str(toy_project),
            "--model", str(model_path),
            "--run-cmd", "{python} run.py",
            "--files", "app.py",
            "--parallel", "2",
            "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign summary" in out
        assert "Failure mode distribution" in out

    def test_toy_campaign_process_backend_with_shards(
            self, tmp_path, toy_project, toy_model, capsys):
        model_path = tmp_path / "toy.json"
        toy_model.save(model_path)
        assert main([
            "--workspace", str(tmp_path / "ws"),
            "campaign", str(toy_project),
            "--model", str(model_path),
            "--run-cmd", "{python} run.py",
            "--files", "app.py",
            "--no-coverage",
            "--backend", "process",
            "--shards", "2",
            "--parallel", "2",
            "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "Campaign summary" in out
        # The job's final shard-aware progress is visible in the listing.
        assert main(["--workspace", str(tmp_path / "ws"),
                     "jobs", "list"]) == 0
        listing = capsys.readouterr().out
        assert "PROGRESS" in listing
        assert "2/2" in listing

    def test_toy_campaign_remote_backend_with_worker(
            self, tmp_path, toy_project, toy_model, capsys):
        from repro.service.http import start_server
        from repro.service.service import ProFIPyService

        model_path = tmp_path / "toy.json"
        toy_model.save(model_path)
        worker_service = ProFIPyService(tmp_path / "worker-ws")
        server, _thread = start_server(worker_service)
        try:
            assert main([
                "--workspace", str(tmp_path / "ws"),
                "campaign", str(toy_project),
                "--model", str(model_path),
                "--run-cmd", "{python} run.py",
                "--files", "app.py",
                "--no-coverage",
                "--backend", "remote",
                "--worker", server.url,
                "--shards", "2",
                "--parallel", "2",
                "--timeout", "30",
            ]) == 0
            out = capsys.readouterr().out
            assert "Campaign summary" in out
            # The worker actually ran shards for this campaign.
            assert worker_service.list_shards()
        finally:
            server.shutdown()
            worker_service.close()
