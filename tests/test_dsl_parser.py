"""Unit tests for the change/into spec parser."""

import pytest

from repro.dsl.errors import DslSyntaxError
from repro.dsl.parser import parse_spec, parse_specs

SIMPLE = """
change {
    foo()
} into {
    pass
}
"""


class TestParseSpec:
    def test_single_spec(self):
        spec = parse_spec(SIMPLE)
        assert spec.pattern == "foo()"
        assert spec.replacement == "pass"

    def test_name_override(self):
        spec = parse_spec(SIMPLE, name="MFC")
        assert spec.name == "MFC"

    def test_default_positional_name(self):
        assert parse_spec(SIMPLE).name == "spec_1"

    def test_empty_replacement(self):
        spec = parse_spec("change { foo() } into { }")
        assert spec.replacement == ""

    def test_indentation_preserved(self):
        spec = parse_spec(
            "change {\n"
            "    if x:\n"
            "        foo()\n"
            "} into {\n"
            "}\n"
        )
        assert spec.pattern == "if x:\n    foo()"

    def test_missing_into_rejected(self):
        with pytest.raises(DslSyntaxError, match="expected 'into'"):
            parse_spec("change { foo() }")

    def test_missing_braces_rejected(self):
        with pytest.raises(DslSyntaxError, match="expected '{'"):
            parse_spec("change foo() into { }")

    def test_unterminated_block_rejected(self):
        with pytest.raises(DslSyntaxError, match="unterminated"):
            parse_spec("change { foo() into { }")

    def test_garbage_between_blocks_rejected(self):
        with pytest.raises(DslSyntaxError, match="unexpected text"):
            parse_spec("change { foo() } whatever into { }")

    def test_no_spec_rejected(self):
        with pytest.raises(DslSyntaxError, match="no 'change"):
            parse_spec("just some text")

    def test_two_specs_rejected_by_parse_spec(self):
        with pytest.raises(DslSyntaxError, match="exactly one"):
            parse_spec(SIMPLE + SIMPLE)

    def test_braces_in_pattern_strings(self):
        spec = parse_spec('change { log("a {b}") } into { }')
        assert spec.pattern == 'log("a {b}")'

    def test_dict_literal_in_pattern(self):
        spec = parse_spec("change { x = {'a': 1} } into { x = {} }")
        assert spec.pattern == "x = {'a': 1}"
        assert spec.replacement == "x = {}"


class TestParseSpecs:
    def test_multiple_specs(self):
        specs = parse_specs(SIMPLE + SIMPLE)
        assert [s.name for s in specs] == ["spec_1", "spec_2"]

    def test_named_via_comment(self):
        text = (
            "# name: MFC\n" + SIMPLE +
            "# name: WPF\n" + SIMPLE
        )
        specs = parse_specs(text)
        assert [s.name for s in specs] == ["MFC", "WPF"]

    def test_comment_applies_to_next_spec_only(self):
        text = "# name: MFC\n" + SIMPLE + SIMPLE
        specs = parse_specs(text)
        assert [s.name for s in specs] == ["MFC", "spec_2"]

    def test_raw_text_round_trip(self):
        specs = parse_specs(SIMPLE)
        reparsed = parse_specs(specs[0].raw)
        assert reparsed[0].pattern == specs[0].pattern
        assert reparsed[0].replacement == specs[0].replacement
