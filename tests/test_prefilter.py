"""Prefilter requirement extraction and fingerprint soundness."""

import ast

import pytest

from repro.dsl.compiler import compile_text
from repro.faultmodel.library import extended_model, gswfit_model
from repro.scanner.matcher import Matcher
from repro.scanner.prefilter import (
    FileFingerprint,
    derive_requirements,
    literal_glob_segments,
)


def spec(change: str, into: str = "pass") -> str:
    return "change {\n%s\n} into {\n%s\n}" % (change, into)


class TestLiteralGlobSegments:
    def test_dotted_literal(self):
        assert literal_glob_segments("utils.execute") == {"utils", "execute"}

    def test_single_literal(self):
        assert literal_glob_segments("delete_port") == {"delete_port"}

    def test_wildcard_segments_dropped(self):
        assert literal_glob_segments("delete_*") == frozenset()
        assert literal_glob_segments("nova.*.delete") == {"nova", "delete"}
        assert literal_glob_segments("base.client.*") == {"base", "client"}

    def test_question_and_class_dropped(self):
        assert literal_glob_segments("delete_?") == frozenset()
        assert literal_glob_segments("delete_[ab]") == frozenset()

    def test_regex_has_no_requirements(self):
        assert literal_glob_segments("/delete_.*/") == frozenset()

    def test_bracket_class_disables_all_segments(self):
        # `[.]` matches a literal dot, so splitting on "." would fabricate
        # bogus segments like "]b" — any bracket glob yields no requirement.
        assert literal_glob_segments("a[.]b") == frozenset()
        assert literal_glob_segments("pkg.del[ae]te") == frozenset()

    def test_star_alone(self):
        assert literal_glob_segments("*") == frozenset()


class TestDeriveRequirements:
    def test_call_glob_requirements(self):
        model = compile_text(spec("$CALL{name=utils.execute}(...)"))
        req = model.requirements
        assert {"utils", "execute"} <= set(req.call_segments)
        assert "Call" in req.node_types

    def test_call_wildcard_has_no_segments(self):
        model = compile_text(spec("$CALL{name=delete_*}(...)"))
        assert model.requirements.call_segments == frozenset()
        assert "Call" in model.requirements.node_types

    def test_call_ctx_any_requires_only_a_call(self):
        model = compile_text(spec("$CALL#c{name=close; ctx=any}"))
        req = model.requirements
        assert "Call" in req.node_types
        assert "Expr" not in req.node_types
        assert "close" in req.call_segments

    def test_bare_call_stmt_requires_expr(self):
        model = compile_text(spec("$CALL#c{name=close}"))
        req = model.requirements
        assert {"Call", "Expr"} <= set(req.node_types)

    def test_block_imposes_nothing(self):
        model = compile_text(spec(
            "$BLOCK{tag=b1; stmts=1,*}\n$CALL{name=*}(...)\n"
            "$BLOCK{tag=b2; stmts=1,*}",
            "$BLOCK{tag=b1}\n$BLOCK{tag=b2}",
        ))
        req = model.requirements
        assert req.call_segments == frozenset()
        assert req.node_types == frozenset({"Call", "Expr"})

    def test_string_literal_value_required(self):
        model = compile_text(spec("$VAR#v = $STRING{val=start}"))
        req = model.requirements
        assert "start" in req.constants
        assert {"Constant", "Name"} <= set(req.node_types)

    def test_string_wildcard_value_not_required(self):
        model = compile_text(spec("$VAR#v = $STRING#s"))
        req = model.requirements
        assert req.constants == frozenset()
        assert "Constant" in req.node_types

    def test_num_requires_constant(self):
        model = compile_text(spec("$VAR#v = $NUM#n"))
        assert "Constant" in model.requirements.node_types

    def test_concrete_constants_and_calls(self):
        model = compile_text(spec("steps.append('start')"))
        req = model.requirements
        assert "start" in req.constants
        assert {"steps", "append"} <= set(req.call_segments)

    def test_assignment_from_dotted_call(self):
        model = compile_text(spec(
            "$VAR#v = $CALL{name=base.refresh}(...)", "$VAR#v = None"
        ))
        req = model.requirements
        assert {"base", "refresh"} <= set(req.call_segments)
        assert {"Assign", "Name", "Call"} <= set(req.node_types)

    def test_placeholder_attribute_base_not_required(self):
        # `$EXPR#e.append(x)`: the base may match any object, only the
        # attribute chain is forced onto the target call name.
        model = compile_text(spec("$EXPR#e.append(x)"))
        req = model.requirements
        assert "append" in req.call_segments
        assert not any(seg.startswith("_PFP_PH_")
                       for seg in req.call_segments)

    def test_if_pattern_requires_if(self):
        model = compile_text(spec(
            "if $EXPR#cond :\n    $BLOCK{tag=body; stmts=1,4}",
            "$BLOCK{tag=body}",
        ))
        assert "If" in model.requirements.node_types


class TestFingerprint:
    SOURCE = (
        "def f(ctx):\n"
        "    steps = []\n"
        "    steps.append('start')\n"
        "    result = utils.execute(ctx, 2)\n"
        "    return result\n"
    )

    def fingerprint(self):
        return FileFingerprint.from_tree(ast.parse(self.SOURCE))

    def test_collects_node_types(self):
        fp = self.fingerprint()
        assert {"FunctionDef", "Call", "Assign", "Return"} <= fp.node_types

    def test_collects_call_segments(self):
        fp = self.fingerprint()
        assert {"steps", "append", "utils", "execute"} <= fp.call_segments

    def test_collects_constants(self):
        fp = self.fingerprint()
        assert "start" in fp.constants
        assert 2 in fp.constants

    def test_satisfied_and_unsatisfied(self):
        fp = self.fingerprint()
        hit = compile_text(spec("$CALL{name=utils.execute}(...)"))
        miss = compile_text(spec("$CALL{name=os.remove}(...)"))
        assert hit.requirements.satisfied_by(fp)
        assert not miss.requirements.satisfied_by(fp)

    def test_missing_constant_rejects(self):
        fp = self.fingerprint()
        miss = compile_text(spec("$VAR#v = $STRING{val=shutdown}"))
        assert not miss.requirements.satisfied_by(fp)


SOUNDNESS_SOURCES = [
    # Call statements, assignments, returns.
    "def f(ctx, client):\n"
    "    log = []\n"
    "    log.append('start')\n"
    "    result = client.delete_port(ctx, 5)\n"
    "    state = 'ok'\n"
    "    value = compute(result, 1 + 2)\n"
    "    return value\n",
    # Conditionals with and/or, else branches.
    "def g(a, b):\n"
    "    if a and b:\n"
    "        cleanup(a)\n"
    "    if a or b:\n"
    "        refresh(b)\n"
    "    if a:\n"
    "        notify('x')\n"
    "    else:\n"
    "        fallback()\n"
    "    x = 3\n"
    "    return x\n",
]


@pytest.mark.parametrize("source", SOUNDNESS_SOURCES)
def test_prefilter_never_skips_a_matching_spec(source):
    """Soundness: whenever the matcher finds matches, the prefilter accepts."""
    tree = ast.parse(source)
    fingerprint = FileFingerprint.from_tree(tree)
    for model_set in (gswfit_model(), extended_model()):
        for model in model_set.compile():
            matches = Matcher(model).find_matches(tree)
            requirements = derive_requirements(model)
            if matches:
                assert requirements.satisfied_by(fingerprint), (
                    f"prefilter would wrongly skip {model.name} "
                    f"({len(matches)} matches)"
                )
