"""Streaming result sink: JSONL append, crash tolerance, campaign resume."""

import json
import shutil

import pytest

from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.stream import ExperimentStream
from repro.service import COMPLETED, ProFIPyService


def make_result(experiment_id, **kwargs):
    return ExperimentResult(experiment_id=experiment_id, point={}, **kwargs)


class TestExperimentStream:
    def test_append_and_load_roundtrip(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.append(make_result("e1", seed=42, error="boom"))
        stream.append(make_result("e2"))
        loaded = stream.load()
        assert [e.experiment_id for e in loaded] == ["e1", "e2"]
        assert loaded[0].seed == 42
        assert loaded[0].error == "boom"
        assert len(stream) == 2
        assert stream.recorded_ids() == {"e1", "e2"}

    def test_missing_file_is_empty(self, tmp_path):
        stream = ExperimentStream(tmp_path / "nope.jsonl")
        assert stream.load() == []
        assert stream.recorded_ids() == set()

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "experiments.jsonl"
        stream = ExperimentStream(path)
        stream.append(make_result("e1"))
        # Simulate a process killed mid-write: a half-written JSON line.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"experiment_id": "e2", "poi')
        assert stream.recorded_ids() == {"e1"}
        assert [e.experiment_id for e in stream.load()] == ["e1"]

    def test_append_after_truncated_line_not_corrupted(self, tmp_path):
        # Regression: appending after a crash-truncated line (no trailing
        # newline) must not glue the new record onto the partial one.
        path = tmp_path / "experiments.jsonl"
        stream = ExperimentStream(path)
        stream.append(make_result("e1"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"experiment_id": "e2", "poi')
        stream.append(make_result("e3"))
        assert stream.recorded_ids() == {"e1", "e3"}

    def test_clear(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.append(make_result("e1"))
        stream.clear()
        assert stream.load() == []
        stream.clear()  # idempotent on a missing file

    def test_last_record_wins_for_duplicate_ids(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.append(make_result("e1", status="harness_error",
                                  error="sandbox died"))
        stream.append(make_result("e1", status="completed"))
        [loaded] = stream.load()
        assert loaded.status == "completed"
        assert len(stream) == 1

    def test_harness_errors_not_in_resume_set(self, tmp_path):
        # Harness errors are infrastructure failures: a resumed campaign
        # should retry them, not carry them forward forever.
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.append(make_result("ok", status="completed"))
        stream.append(make_result("broken", status="harness_error"))
        assert stream.recorded_ids() == {"ok"}
        # ...unless a later (retried) record superseded the error.
        stream.append(make_result("broken", status="completed"))
        assert stream.recorded_ids() == {"ok", "broken"}

    def test_meta_roundtrip_and_skipped_by_readers(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        assert stream.read_meta() is None
        stream.write_meta({"seed": 7})
        stream.append(make_result("e1"))
        assert stream.read_meta() == {"seed": 7}
        assert stream.recorded_ids() == {"e1"}
        assert len(stream) == 1


@pytest.mark.integration
class TestCampaignStreaming:
    def config(self, toy_project, toy_model, toy_workload, workspace,
               **kwargs):
        return CampaignConfig(
            name="resume",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            workspace=workspace,
            **kwargs,
        )

    def test_results_streamed_to_workspace(self, toy_project, toy_model,
                                           toy_workload, tmp_path):
        config = self.config(toy_project, toy_model, toy_workload,
                             tmp_path / "ws")
        result = Campaign(config).run()
        assert result.experiments_path == tmp_path / "ws" / \
            "experiments.jsonl"
        assert result.experiments_path.exists()
        streamed = ExperimentStream(result.experiments_path).load()
        assert len(streamed) == 2
        assert result.executed == 2
        assert result.resumed == 0

    def test_resume_skips_recorded_experiments(self, toy_project, toy_model,
                                               toy_workload, tmp_path):
        workspace = tmp_path / "ws"
        workspace.mkdir()
        # Simulate a campaign killed after its first experiment: the
        # stream already records resume-0001 (with a marker we can trace).
        pre = make_result("resume-0001", error="PRERECORDED")
        ExperimentStream(workspace / "experiments.jsonl").append(pre)

        config = self.config(toy_project, toy_model, toy_workload, workspace)
        result = Campaign(config).run()
        assert result.resumed == 1
        assert result.executed == 2
        by_id = {e.experiment_id: e for e in result.experiments}
        assert by_id["resume-0001"].error == "PRERECORDED"  # not re-run
        assert by_id["resume-0002"].completed

    def test_resume_retries_harness_errors(self, toy_project, toy_model,
                                           toy_workload, tmp_path):
        workspace = tmp_path / "ws"
        workspace.mkdir()
        pre = make_result("resume-0001", status="harness_error",
                          error="sandbox machinery died")
        ExperimentStream(workspace / "experiments.jsonl").append(pre)

        config = self.config(toy_project, toy_model, toy_workload, workspace)
        result = Campaign(config).run()
        assert result.resumed == 0  # the broken record did not count
        by_id = {e.experiment_id: e for e in result.experiments}
        assert by_id["resume-0001"].completed  # retried and superseded

    def test_resume_rejects_mismatched_campaign(self, toy_project, toy_model,
                                                toy_workload, tmp_path):
        workspace = tmp_path / "ws"
        config = self.config(toy_project, toy_model, toy_workload, workspace,
                             seed=1)
        Campaign(config).run()
        changed = self.config(toy_project, toy_model, toy_workload,
                              workspace, seed=2)
        with pytest.raises(ValueError, match="different campaign.*seed"):
            Campaign(changed).run()
        # The explicit escape hatch still works and replaces the stream.
        rerun = self.config(toy_project, toy_model, toy_workload, workspace,
                            seed=2, resume=False)
        result = Campaign(rerun).run()
        assert result.resumed == 0
        assert result.executed == 2

    def test_no_resume_reruns_everything(self, toy_project, toy_model,
                                         toy_workload, tmp_path):
        workspace = tmp_path / "ws"
        workspace.mkdir()
        pre = make_result("resume-0001", error="PRERECORDED")
        ExperimentStream(workspace / "experiments.jsonl").append(pre)

        config = self.config(toy_project, toy_model, toy_workload, workspace,
                             resume=False)
        result = Campaign(config).run()
        assert result.resumed == 0
        by_id = {e.experiment_id: e for e in result.experiments}
        assert by_id["resume-0001"].error != "PRERECORDED"

    def test_temp_workspace_results_survive_cleanup(self, toy_project,
                                                    toy_model, toy_workload):
        # Owned temporary workspace is deleted after the run; the results
        # must have been materialized before the stream file vanished.
        config = CampaignConfig(
            name="resume", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload, injectable_files=["app.py"],
            coverage=False, parallelism=1,
        )
        result = Campaign(config).run()
        assert result.workspace is None
        assert result.experiments_path is None
        assert result.executed == 2

    def test_keep_artifacts_surfaces_workspace(self, toy_project, toy_model,
                                               toy_workload):
        config = CampaignConfig(
            name="resume", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload, injectable_files=["app.py"],
            coverage=False, parallelism=1, keep_artifacts=True,
        )
        result = Campaign(config).run()
        try:
            assert result.workspace is not None
            assert result.workspace.exists()
            assert result.artifacts_dir is not None
            assert result.artifacts_dir.exists()
            assert result.experiments_path.exists()
            summary = result.summary()
            assert summary["workspace"] == str(result.workspace)
            assert summary["artifacts_dir"] == str(result.artifacts_dir)
        finally:
            shutil.rmtree(result.workspace, ignore_errors=True)


@pytest.mark.integration
class TestServiceResume:
    def test_killed_job_resumes_without_rerunning(self, tmp_path,
                                                  toy_project, toy_model,
                                                  toy_workload):
        service = ProFIPyService(tmp_path / "ws")
        config = CampaignConfig(
            name="toy",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            workspace=tmp_path / "campaign-ws1",
        )
        first = service.submit_campaign(config, block=True)
        assert first.status == COMPLETED, first.error
        stream_path = first.directory / "experiments.jsonl"
        lines = stream_path.read_text(encoding="utf-8").splitlines()
        # One campaign-metadata line plus two experiment records.
        assert len(lines) == 3
        assert "meta" in json.loads(lines[0])

        # Simulate the job having been killed mid-campaign: only the
        # first experiment made it to the stream, plus a half-written
        # line from the in-flight second one.
        stream_path.write_text(lines[0] + "\n" + lines[1] + "\n"
                               + lines[2][:25], encoding="utf-8")

        second = service.submit_campaign(
            config, block=True, resume_from=first.job_id,
        )
        assert second.status == COMPLETED, second.error
        assert second.job_id != first.job_id
        summary = service.result_summary(second.job_id)
        assert summary["resumed"] == 1
        assert summary["experiments"] == 2
        # The carried-over experiment is byte-identical to the original
        # record: it was copied from the stream, not re-executed.
        resumed_lines = (second.directory / "experiments.jsonl") \
            .read_text(encoding="utf-8").splitlines()
        assert lines[1] in resumed_lines
        experiments = service.experiments(second.job_id)
        assert [e.experiment_id for e in experiments] == \
            ["toy-0001", "toy-0002"]
        first_id = json.loads(lines[1])["experiment_id"]
        assert first_id == "toy-0001"
