"""Zero-copy mutant materialization: span patching vs deepcopy+unparse.

The property at the heart of this module: for every mutant the span
patcher can materialize, the patched source must be **AST-equivalent** to
the legacy deepcopy + whole-file ``ast.unparse`` mutant — same program,
same fault, same trigger guard — while preserving every byte outside the
patched window.  Windows the patcher declines (same-line compound
statements, ``elif`` windows, decorated defs, ``;``-joined lines) must
fall back to the legacy path transparently and still produce equivalent
mutants.  The sweep runs the full 120-pattern §V-D faultload over the
synthetic codebase with the verification oracle armed.
"""

import ast

import pytest

from repro.common.rng import SeededRandom
from repro.dsl.compiler import compile_text
from repro.faultmodel.library import (
    expand_api_faults,
    extended_model,
    gswfit_model,
)
from repro.mutator.mutate import Mutator
from repro.mutator.patch import ast_equivalent, patch_mutant
from repro.scanner.cache import MatchMemo
from repro.synth import SynthConfig, generate_codebase, scan_pattern_apis


@pytest.fixture(scope="module")
def synth_sources(tmp_path_factory):
    dest = tmp_path_factory.mktemp("synth-zero-copy")
    generate_codebase(dest, SynthConfig(files=4, seed=29))
    return {
        str(path.relative_to(dest)): path.read_text(encoding="utf-8")
        for path in sorted(dest.rglob("*.py"))
        if path.name != "__init__.py"
    }


@pytest.fixture(scope="module")
def corpus_models():
    model = expand_api_faults(scan_pattern_apis(), kinds=None,
                              model_name="zero_copy_eq")
    compiled = (model.compile() + gswfit_model().compile()
                + extended_model().compile())
    assert len(model.enabled_specs()) == 120
    return compiled


def mutate_both(source, model, ordinal, trigger, file="<string>"):
    """One mutant through each path, same RNG stream, oracle armed."""
    span = Mutator(trigger=trigger, rng=SeededRandom(7),
                   match_memo=MatchMemo(), verify_patches=True)
    legacy = Mutator(trigger=trigger, rng=SeededRandom(7),
                     span_patching=False)
    a = span.mutate_source(source, model, ordinal, file=file)
    b = legacy.mutate_source(source, model, ordinal, file=file)
    assert span.patch_stats["verify_mismatch"] == 0, (model.name, ordinal)
    assert legacy.patch_stats["patched"] == 0
    return a, b, span.patch_stats


class TestCorpusEquivalence:
    @pytest.mark.parametrize("trigger", [False, True])
    def test_span_equals_legacy_across_corpus(self, synth_sources,
                                              corpus_models, trigger):
        # verify_patches arms the oracle: every successful span patch is
        # cross-checked for AST equivalence against the legacy deepcopy+
        # unparse mutant inside mutate_source, and any mismatch both
        # counts and silently falls back — so verify_mismatch == 0 proves
        # equivalence across every mutant of the sweep.
        memo = MatchMemo()
        span = Mutator(trigger=trigger, rng=SeededRandom(3),
                       match_memo=memo, verify_patches=True)
        compared = 0
        for rel, source in synth_sources.items():
            for model in corpus_models:
                for ordinal in range(memo.count(source, model)):
                    span.mutate_source(source, model, ordinal, file=rel)
                    compared += 1
        assert compared > 100  # the corpus actually exercises the patcher
        assert span.patch_stats["verify_mismatch"] == 0
        # Span patching is the mainline, not a lucky special case.
        assert span.patch_stats["patched"] > span.patch_stats["fallback"]

    @pytest.mark.parametrize("trigger", [False, True])
    def test_span_mutation_fields_equal_legacy(self, synth_sources,
                                               corpus_models, trigger):
        # Explicit dual-path run over one file: every Mutation field
        # (not just the program text) must agree between the paths.
        rel, source = next(iter(synth_sources.items()))
        span = Mutator(trigger=trigger, rng=SeededRandom(3),
                       match_memo=MatchMemo(), verify_patches=True)
        legacy = Mutator(trigger=trigger, rng=SeededRandom(3),
                         span_patching=False, match_memo=MatchMemo())
        memo = MatchMemo()
        for model in corpus_models[:40]:
            for ordinal in range(memo.count(source, model)):
                a = span.mutate_source(source, model, ordinal, file=rel)
                b = legacy.mutate_source(source, model, ordinal, file=rel)
                assert ast_equivalent(a.source, b.source), (
                    model.name, ordinal
                )
                assert a.mutated_snippet == b.mutated_snippet
                assert a.original_snippet == b.original_snippet
                assert a.lineno == b.lineno
                assert a.fault_id == b.fault_id
        assert span.patch_stats["verify_mismatch"] == 0


class TestBytePreservation:
    SOURCE = (
        '"""Module doc."""\n'
        "from __future__ import annotations\n"
        "import os  # keep me\n"
        "\n"
        "WEIRD = 'quotes \"stay\" as-is'\n"
        "\n"
        "\n"
        "def handler(ctx, client):  # comment on def\n"
        "    log = []       # alignment preserved\n"
        "    log.append('start')\n"
        "    result = client.delete_port(ctx, 5)\n"
        "    if result:\n"
        "        return result\n"
        "    return None\n"
    )

    def model(self):
        return compile_text(
            "change {\n$VAR#v = $CALL#c{name=delete_*}(...)\n} "
            "into {\n$VAR#v = None\n}",
            name="nuller",
        )

    @pytest.mark.parametrize("trigger", [False, True])
    def test_outside_window_is_byte_identical(self, trigger):
        mutator = Mutator(trigger=trigger, verify_patches=True)
        mutation = mutator.mutate_source(self.SOURCE, self.model(), 0)
        assert mutator.patch_stats["patched"] == 1
        lines = mutation.source.splitlines(keepends=True)
        original = self.SOURCE.splitlines(keepends=True)
        # Everything before the import splice is untouched bytes.
        assert lines[:2] == original[:2]
        if trigger:
            # The runtime import lands as its own whole line right after
            # the docstring + __future__ block.
            assert lines[2] == "import profipy_runtime as __pfp_rt__\n"
            offset = 1
        else:
            # Permanent mode with no runtime directive: no import splice.
            assert "profipy_runtime" not in mutation.source
            offset = 0
        # Everything between the splices keeps comments, quoting,
        # alignment, and blank lines byte-for-byte.
        assert lines[2 + offset:9 + offset] == original[2:9]
        assert "# keep me" in mutation.source
        assert "# alignment preserved" in mutation.source
        assert "'quotes \"stay\" as-is'" in mutation.source
        # The tail after the window is untouched bytes too.
        assert lines[-3:] == original[-3:]

    def test_patched_source_parses_and_is_equivalent(self):
        a, b, stats = mutate_both(self.SOURCE, self.model(), 0, trigger=True)
        assert stats["patched"] == 1
        assert ast_equivalent(a.source, b.source)


class TestFallbackCases:
    """Layouts the patcher must decline — and still mutate correctly."""

    CASES = {
        "same_line_compound": (
            "def f(ctx):\n"
            "    if ctx: delete_port(1)\n"
        ),
        "semicolon_joined": (
            "def f(ctx):\n"
            "    a = 1; delete_port(ctx)\n"
        ),
        "elif_window": (
            "def f(ctx):\n"
            "    if ctx == 1:\n"
            "        return 1\n"
            "    elif ctx == 2:\n"
            "        delete_port(ctx)\n"
            "        return 2\n"
            "    return 0\n"
        ),
    }

    def model(self):
        return compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\npass\n}",
            name="deleter",
        )

    @pytest.mark.parametrize("trigger", [False, True])
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_declined_layouts_fall_back_equivalently(self, case, trigger):
        source = self.CASES[case]
        model = self.model()
        from repro.scanner.scan import match_source

        matches = match_source(source, model)
        assert matches, case
        for ordinal in range(len(matches)):
            a, b, _stats = mutate_both(source, model, ordinal,
                                       trigger=trigger)
            assert ast_equivalent(a.source, b.source), (case, ordinal)

    def test_same_line_compound_is_declined(self):
        source = self.CASES["same_line_compound"]
        mutator = Mutator(trigger=True)
        mutator.mutate_source(source, self.model(), 0)
        assert mutator.patch_stats == {"patched": 0, "fallback": 1,
                                       "verify_mismatch": 0}

    def test_elif_window_is_declined(self):
        # The elif branch's own body can be patched; a window that *is*
        # the inner ast.If (matched via its parent chain) cannot.  Either
        # way the mutants must stay equivalent — asserted above — and
        # splicing must never silently detach an elif chain.
        source = self.CASES["elif_window"]
        model = compile_text(
            "change {\nif $EXPR#e:\n    ...\n} into {\npass\n}",
            name="if_killer",
        )
        from repro.scanner.scan import match_source

        matches = match_source(source, model)
        for ordinal in range(len(matches)):
            a, b, _stats = mutate_both(source, model, ordinal, trigger=False)
            assert ast_equivalent(a.source, b.source), ordinal

    def test_decorated_def_window_is_declined(self):
        source = (
            "import functools\n"
            "\n"
            "@functools.cache\n"
            "def compute(x):\n"
            "    return x + 1\n"
        )
        model = compile_text(
            "change {\ndef compute($VAR#a):\n    ...\n} into {\npass\n}",
            name="def_killer",
        )
        from repro.scanner.scan import match_source

        if not match_source(source, model):
            pytest.skip("pattern does not window the decorated def")
        a, b, stats = mutate_both(source, model, 0, trigger=False)
        assert stats["fallback"] >= 1  # decorators force the legacy path
        assert ast_equivalent(a.source, b.source)


class TestImportPlacement:
    @pytest.mark.parametrize("header", [
        "",
        '"""Doc."""\n',
        '"""Doc."""\nfrom __future__ import annotations\n',
    ])
    def test_runtime_import_lands_after_docstring_and_future(self, header):
        source = header + "def f(ctx):\n    delete_port(ctx)\n"
        model = compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\npass\n}",
            name="deleter",
        )
        mutator = Mutator(trigger=True, verify_patches=True)
        mutation = mutator.mutate_source(source, model, 0)
        assert mutator.patch_stats["patched"] == 1
        tree = ast.parse(mutation.source)
        kinds = [type(stmt).__name__ for stmt in tree.body]
        expected = []
        if '"""Doc."""' in header:
            expected.append("Expr")
        if "__future__" in header:
            expected.append("ImportFrom")
        expected.append("Import")
        assert kinds[:len(expected)] == expected
        imported = tree.body[len(expected) - 1]
        assert imported.names[0].name == "profipy_runtime"

    def test_existing_runtime_import_is_not_duplicated(self):
        source = (
            "import profipy_runtime as __pfp_rt__\n"
            "def f(ctx):\n"
            "    delete_port(ctx)\n"
        )
        model = compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\npass\n}",
            name="deleter",
        )
        mutation = Mutator(trigger=True,
                           verify_patches=True).mutate_source(source, model, 0)
        assert mutation.source.count("import profipy_runtime") == 1


class TestPureDeletion:
    def test_permanent_deletion_drops_window_lines(self):
        source = (
            "def f(ctx):\n"
            "    keep = 1\n"
            "    delete_port(ctx)\n"
            "    return keep\n"
        )
        model = compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\n}",
            name="pure_delete",
        )
        a, b, stats = mutate_both(source, model, 0, trigger=False)
        assert ast_equivalent(a.source, b.source)
        assert "delete_port" not in a.source

    def test_emptied_suite_gets_pass(self):
        source = "def f(ctx):\n    delete_port(ctx)\n"
        model = compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\n}",
            name="pure_delete",
        )
        a, b, _stats = mutate_both(source, model, 0, trigger=False)
        assert ast_equivalent(a.source, b.source)
        body = ast.parse(a.source).body[-1].body
        assert len(body) == 1 and isinstance(body[0], ast.Pass)


class TestPatchMutantContract:
    def test_returns_none_on_shared_line_layouts(self):
        # Direct contract check: windows sharing their line with other
        # code answer None (never raise).
        model = compile_text(
            "change {\n$CALL#c{name=delete_*}(...)\n} into {\npass\n}",
            name="deleter",
        )
        from repro.scanner.matcher import Matcher, pick_match

        for case in ("same_line_compound", "semicolon_joined"):
            source = TestFallbackCases.CASES[case]
            tree = ast.parse(source)
            match = pick_match(Matcher(model).find_matches(tree),
                               model.name, 0)
            assert patch_mutant(
                source, tree, match, [ast.Pass()],
                trigger=False, fault_id="x", needs_runtime=False,
            ) is None, case

    def test_returns_none_when_window_is_an_elif(self):
        # A window that *is* the elif clause (the nested ast.If in the
        # outer If's orelse) must be declined: unparsing it as `if ...`
        # would detach the chain.  A window *inside* the elif body is
        # patchable and is covered by the corpus sweep.
        from repro.scanner.bindings import Bindings
        from repro.scanner.matcher import Match

        source = TestFallbackCases.CASES["elif_window"]
        tree = ast.parse(source)
        outer_if = tree.body[0].body[0]
        assert outer_if.orelse and isinstance(outer_if.orelse[0], ast.If)
        match = Match(owner=outer_if, field="orelse", start=0, end=1,
                      bindings=Bindings(), spec_name="elif_case")
        assert patch_mutant(
            source, tree, match, [ast.Pass()],
            trigger=False, fault_id="x", needs_runtime=False,
        ) is None

    def test_mutation_is_deterministic_across_paths(self):
        # The RNG stream is drawn before the path choice, so a $PICK
        # fault produces the same value span-patched or fallen back.
        source = "def f(ctx):\n    timeout = 30\n"
        model = compile_text(
            "change {\n$VAR#v = $NUM#n\n} into {\n"
            "$VAR#v = $PICK{choices=1|2|3|4|5|6|7|8|9}\n}",
            name="picker",
        )
        span = Mutator(trigger=False, rng=SeededRandom(11),
                       verify_patches=True)
        legacy = Mutator(trigger=False, rng=SeededRandom(11),
                         span_patching=False)
        a = span.mutate_source(source, model, 0, fault_id="fixed")
        b = legacy.mutate_source(source, model, 0, fault_id="fixed")
        assert a.mutated_snippet == b.mutated_snippet
        assert ast_equivalent(a.source, b.source)
