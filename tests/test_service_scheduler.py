"""Scheduler tests: bounded workers, FIFO queue, cancellation, crash
safety of persisted job metadata."""

import json
import threading
import time

import pytest

from repro.common.fsutil import read_json
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    JobCancelled,
    JobRunner,
)


class TestBoundedScheduler:
    def test_parallel_submits_get_unique_ids(self, tmp_path):
        runner = JobRunner(tmp_path, max_workers=4)
        jobs, errors = [], []
        lock = threading.Lock()

        def submit(index):
            try:
                job = runner.submit(f"job-{index}", lambda d: None)
                with lock:
                    jobs.append(job)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        ids = [job.job_id for job in jobs]
        assert len(set(ids)) == 12
        for job in jobs:
            assert runner.wait(job.job_id, timeout=30).status == COMPLETED

    def test_queue_drains_with_two_workers(self, tmp_path):
        runner = JobRunner(tmp_path, max_workers=2)
        lock = threading.Lock()
        running = 0
        peak = 0

        def body(_directory):
            nonlocal running, peak
            with lock:
                running += 1
                peak = max(peak, running)
            time.sleep(0.15)
            with lock:
                running -= 1

        jobs = [runner.submit(f"n{i}", body) for i in range(6)]
        for job in jobs:
            assert runner.wait(job.job_id, timeout=30).status == COMPLETED
        assert peak <= 2, f"{peak} bodies ran concurrently (max_workers=2)"

    def test_blocking_submit_bypasses_queue(self, tmp_path):
        runner = JobRunner(tmp_path, max_workers=1)
        release = threading.Event()
        blocker = runner.submit("blocker", lambda d: release.wait(10))
        # The single worker is busy, yet block=True still runs inline.
        inline = runner.submit("inline", lambda d: None, block=True)
        assert inline.status == COMPLETED
        release.set()
        assert runner.wait(blocker.job_id, timeout=30).status == COMPLETED

    def test_invalid_max_workers(self, tmp_path):
        with pytest.raises(ValueError, match="max_workers"):
            JobRunner(tmp_path, max_workers=0)

    def test_closed_scheduler_rejects_submit(self, tmp_path):
        runner = JobRunner(tmp_path)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.submit("late", lambda d: None)


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, tmp_path):
        runner = JobRunner(tmp_path, max_workers=1)
        release = threading.Event()
        ran = []
        blocker = runner.submit("blocker", lambda d: release.wait(10))
        queued = runner.submit("queued", lambda d: ran.append(d))
        assert queued.status == QUEUED
        cancelled = runner.cancel(queued.job_id)
        assert cancelled.status == CANCELLED
        release.set()
        assert runner.wait(blocker.job_id, timeout=30).status == COMPLETED
        assert runner.wait(queued.job_id, timeout=30).status == CANCELLED
        assert not ran
        # The terminal state is persisted for the next service process.
        assert read_json(tmp_path / queued.job_id /
                         "job.json")["status"] == CANCELLED

    def test_cancel_running_job_cooperatively(self, tmp_path):
        runner = JobRunner(tmp_path, max_workers=1)
        started = threading.Event()

        def body(directory):
            started.set()
            for _ in range(200):
                if runner.cancel_requested(directory.name):
                    raise JobCancelled("observed between work units")
                time.sleep(0.05)
            raise AssertionError("cancellation never observed")

        job = runner.submit("loop", body)
        assert started.wait(10)
        runner.cancel(job.job_id)
        finished = runner.wait(job.job_id, timeout=30)
        assert finished.status == CANCELLED
        assert finished.finished_at is not None

    def test_cancel_is_idempotent_and_terminal_safe(self, tmp_path):
        runner = JobRunner(tmp_path)
        done = runner.submit("done", lambda d: None, block=True)
        assert runner.cancel(done.job_id).status == COMPLETED
        assert runner.cancel(done.job_id).status == COMPLETED

    def test_cancel_unknown_job(self, tmp_path):
        with pytest.raises(KeyError):
            JobRunner(tmp_path).cancel("job-9999")


class TestCrashSafety:
    def test_interrupted_queued_job_fails_on_reload(self, tmp_path):
        # A queued job whose process died: its body (a closure) is gone.
        directory = tmp_path / "job-0001"
        directory.mkdir()
        (directory / "job.json").write_text(json.dumps({
            "job_id": "job-0001", "name": "ghost", "status": QUEUED,
            "submitted_at": 1.0,
        }), encoding="utf-8")
        runner = JobRunner(tmp_path)
        job = runner.get("job-0001")
        assert job.status == FAILED
        assert "interrupted" in job.error

    def test_concurrent_persists_never_corrupt_metadata(self, tmp_path):
        # The old fixed-name temp file raced: two threads persisting the
        # same job could os.replace a path the other just unlinked.
        runner = JobRunner(tmp_path)
        job = runner.submit("hammer", lambda d: None, block=True)
        errors = []

        def persist():
            try:
                for _ in range(50):
                    runner._persist(job)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=persist) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Whatever interleaving happened, the file is complete JSON.
        assert read_json(job.directory / "job.json")["job_id"] == job.job_id

    def test_persisted_metadata_honors_umask(self, tmp_path):
        # mkstemp-based atomic writes must not flip shared-workspace
        # files to owner-only 0600.
        import os

        runner = JobRunner(tmp_path)
        job = runner.submit("perms", lambda d: None, block=True)
        umask = os.umask(0)
        os.umask(umask)
        mode = (job.directory / "job.json").stat().st_mode & 0o777
        assert mode == 0o666 & ~umask

    def test_leftover_temp_file_does_not_hide_job(self, tmp_path):
        runner = JobRunner(tmp_path)
        job = runner.submit("real", lambda d: None, block=True)
        # Simulate a kill mid-write: a stale temp sibling next to a good
        # job.json must not confuse the registry on reload.
        (job.directory / "job.json.abc123.tmp").write_text(
            '{"job_id": "job-', encoding="utf-8"
        )
        reloaded = JobRunner(tmp_path)
        assert reloaded.get(job.job_id).status == COMPLETED
