"""Unit tests for per-kind directive validation."""

import pytest

from repro.dsl.directives import (
    ACTION_KINDS,
    ALLOWED_PARAMS,
    Directive,
    DirectiveKind,
    make_directive,
)
from repro.dsl.errors import DslDirectiveError, DslParameterError
from repro.dsl.params import DirectiveParams


def build(name, params="", tag=None):
    return make_directive(name, tag, params, placeholder="_PFP_PH_0_",
                          line=1)


class TestKindValidation:
    def test_unknown_directive(self):
        with pytest.raises(DslDirectiveError, match="unknown directive"):
            build("NOPE")

    def test_call_ctx_values(self):
        assert build("CALL", "ctx=any").call_context == "any"
        assert build("CALL").call_context == "stmt"
        with pytest.raises(DslParameterError, match="ctx"):
            build("CALL", "ctx=sometimes")

    def test_call_unknown_param(self):
        with pytest.raises(DslParameterError, match="unknown parameter"):
            build("CALL", "nmae=foo")

    def test_block_range_validated_eagerly(self):
        with pytest.raises(DslParameterError):
            build("BLOCK", "stmts=4,1")

    def test_corrupt_modes(self):
        assert build("CORRUPT", "mode=int").params.get("mode") == "int"
        with pytest.raises(DslParameterError, match="mode"):
            build("CORRUPT", "mode=weird")

    def test_hog_resources(self):
        assert build("HOG", "resource=memory").params.get("resource") == \
            "memory"
        with pytest.raises(DslParameterError, match="resource"):
            build("HOG", "resource=gpu")

    def test_hog_numeric_params_validated(self):
        with pytest.raises(DslParameterError, match="number"):
            build("HOG", "seconds=never")
        with pytest.raises(DslParameterError, match="integer"):
            build("HOG", "threads=many")

    def test_timeout_seconds_validated(self):
        with pytest.raises(DslParameterError, match="number"):
            build("TIMEOUT", "seconds=soon")

    def test_pick_requires_choices(self):
        with pytest.raises(DslParameterError, match="choices"):
            build("PICK")

    def test_num_bounds_validated(self):
        with pytest.raises(DslParameterError, match="number"):
            build("NUM", "min=low")


class TestTags:
    def test_tag_suffix(self):
        assert build("CALL", tag="c").tag == "c"

    def test_tag_param(self):
        assert build("BLOCK", "tag=b1").tag == "b1"

    def test_matching_tag_and_param_ok(self):
        assert build("BLOCK", "tag=b1", tag="b1").tag == "b1"

    def test_conflicting_tags_rejected(self):
        with pytest.raises(DslParameterError, match="conflicting tags"):
            build("BLOCK", "tag=b1", tag="b2")


class TestSides:
    def test_action_kinds_are_replacement_only(self):
        for kind in ACTION_KINDS:
            directive = Directive(
                kind=kind, tag=None,
                params=DirectiveParams.parse(
                    "choices=A()" if kind is DirectiveKind.PICK else ""
                ),
                placeholder="_PFP_PH_0_",
            )
            with pytest.raises(DslDirectiveError, match="replacement-side"):
                directive.require_pattern_side()

    def test_matcher_kinds_allowed_in_pattern(self):
        for kind in set(DirectiveKind) - ACTION_KINDS:
            directive = Directive(kind=kind, tag=None,
                                  params=DirectiveParams.parse(""),
                                  placeholder="_PFP_PH_0_")
            directive.require_pattern_side()  # must not raise


class TestDescribe:
    def test_describe_round_trip_shape(self):
        directive = build("CALL", "name=delete_*", tag="c")
        text = directive.describe()
        assert text.startswith("$CALL#c")
        assert "name=delete_*" in text

    def test_allowed_params_cover_all_kinds(self):
        assert set(ALLOWED_PARAMS) == set(DirectiveKind)
