"""Worker role of the service layer: /v1/shards endpoints + ShardHost.

Covers the remote backend's worker side in isolation — payload
validation, the shard lifecycle (running → completed/failed/cancelled),
the newline-aligned NDJSON tail the dispatcher mirrors locally, the
client SDK mirror of the endpoints — plus the regression tests for job
views tolerating a corrupt/partially-written ``progress.json``.
"""

import json
import textwrap
import time

import pytest

from repro.common.fsutil import write_json
from repro.orchestrator.backends import build_shard_payload
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService
from repro.service.shards import REQUIRED_PAYLOAD_KEYS, ShardHost
from repro.workload.spec import WorkloadSpec


def _shard_payload(toy_project, toy_model, tmp_path, workload=None,
                   parallelism=1):
    """A real, runnable shard payload over the toy project."""
    models = {model.name: model for model in toy_model.compile()}
    scan = scan_file(toy_project / "app.py", toy_model.compile(),
                     root=toy_project)
    plan = Plan.from_points(scan.points)
    image = SandboxImage.build(toy_project, tmp_path / "image")
    executor = ExperimentExecutor(
        image=image, workload=workload, models=models,
        base_dir=tmp_path / "boxes", campaign_seed=0,
    )
    return build_shard_payload(executor, toy_model, 0, list(plan),
                               parallelism)


def _wait_state(read_status, states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = read_status()
        if status["state"] in states:
            return status
        time.sleep(0.05)
    raise AssertionError(f"shard never reached {states}: {read_status()}")


# -- ShardHost unit tests ----------------------------------------------------------


class TestShardHost:
    def test_rejects_malformed_payloads(self, tmp_path):
        host = ShardHost(tmp_path / "shards")
        with pytest.raises(ValueError, match="JSON object"):
            host.submit(["not", "a", "dict"])
        with pytest.raises(ValueError, match="missing keys"):
            host.submit({"shard": 0})
        payload = {key: None for key in REQUIRED_PAYLOAD_KEYS}
        payload["planned"] = "nope"
        with pytest.raises(ValueError, match="'planned' must be a list"):
            host.submit(payload)

    def test_unknown_shard_raises_keyerror(self, tmp_path):
        host = ShardHost(tmp_path / "shards")
        with pytest.raises(KeyError, match="unknown shard"):
            host.status("shard-0042")
        with pytest.raises(KeyError, match="unknown shard"):
            host.cancel("shard-0042")
        with pytest.raises(KeyError, match="unknown shard"):
            host.stream_path("shard-0042")

    def test_ids_never_reuse_existing_directories(self, tmp_path):
        shards_dir = tmp_path / "shards"
        (shards_dir / "shard-0007").mkdir(parents=True)
        host = ShardHost(shards_dir)
        assert host._next_shard_id() == "shard-0008"

    def test_structurally_valid_but_broken_payload_fails(self, tmp_path):
        # Passes submit-time validation, then the engine raises (the
        # fault model does not deserialize): the shard lands in
        # ``failed`` with the error on its status view.
        host = ShardHost(tmp_path / "shards")
        view = host.submit({
            "shard": 3,
            "planned": [{"experiment_id": "exp-0001",
                         "point": {"spec_name": "WRR", "file": "app.py",
                                   "ordinal": 0, "lineno": 1,
                                   "end_lineno": 1, "snippet": "",
                                   "component": "app"}}],
            "fault_model": {"name": "broken", "description": "",
                            "faults": [{"not": "a fault spec"}]},
            "workload": None,
            "image": {"source_dir": str(tmp_path), "staging_dir":
                      str(tmp_path / "missing"), "env": {}},
            "trigger": True,
            "rounds": 2,
            "campaign_seed": 0,
            "parallelism": 1,
        })
        host.join(timeout=30)
        status = host.status(view["shard_id"])
        assert status["state"] == "failed"
        assert status["error"]
        assert status["recorded"] == 0

    def test_concurrency_bound_queues_excess_shards(self, tmp_path,
                                                    monkeypatch):
        # With one execution slot, a second submission is admitted as
        # ``queued`` and starts only when the first shard's slot frees.
        import threading

        import repro.orchestrator.backends as backends_module

        release = threading.Event()
        started = threading.Event()

        def slow_worker(_body):
            started.set()
            assert release.wait(timeout=30)
            return {"shard": 0, "recorded": 0, "cancelled": False}

        monkeypatch.setattr(backends_module, "_run_shard_worker",
                            slow_worker)
        host = ShardHost(tmp_path / "shards", max_concurrent=1)
        payload = {key: None for key in REQUIRED_PAYLOAD_KEYS}
        payload.update(shard=0, planned=[], image=None)
        first = host.submit(dict(payload))
        assert started.wait(timeout=30)
        second = host.submit(dict(payload))
        assert host.status(second["shard_id"])["state"] == "queued"
        release.set()
        host.join(timeout=30)
        assert host.status(first["shard_id"])["state"] == "completed"
        assert host.status(second["shard_id"])["state"] == "completed"

    def test_rejects_invalid_concurrency_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_concurrent"):
            ShardHost(tmp_path / "shards", max_concurrent=0)

    def test_runs_a_real_shard_to_completion(self, toy_project, toy_model,
                                             toy_workload, tmp_path):
        host = ShardHost(tmp_path / "shards")
        payload = _shard_payload(toy_project, toy_model, tmp_path,
                                 workload=toy_workload)
        view = host.submit(payload)
        assert view["state"] in ("queued", "running")
        assert view["total"] == 2
        shard_id = view["shard_id"]
        status = _wait_state(lambda: host.status(shard_id),
                             ("completed", "failed"))
        assert status["state"] == "completed"
        assert status["recorded"] == 2
        assert not status["cancelled"]
        lines = host.stream_path(shard_id).read_text().splitlines()
        ids = sorted(json.loads(line)["experiment_id"] for line in lines)
        assert ids == ["exp-0001", "exp-0002"]


# -- HTTP + client mirror ----------------------------------------------------------


@pytest.fixture
def live_worker(tmp_path):
    service = ProFIPyService(tmp_path / "worker-ws")
    server, _thread = start_server(service)
    client = ProFIPyClient(server.url)
    yield service, client
    server.shutdown()
    service.close()


class TestWorkerEndpoints:
    def test_submit_poll_and_stream(self, toy_project, toy_model,
                                    toy_workload, tmp_path, live_worker):
        service, client = live_worker
        payload = _shard_payload(toy_project, toy_model, tmp_path,
                                 workload=toy_workload)
        view = client.submit_shard(payload)
        assert view["state"] in ("queued", "running")
        assert view["api_version"] == "v1"
        shard_id = view["shard_id"]
        status = _wait_state(lambda: client.shard_status(shard_id),
                             ("completed", "failed"))
        assert status["state"] == "completed"
        assert status["recorded"] == status["total"] == 2

        views = client.list_shards()
        assert [view["shard_id"] for view in views] == [shard_id]
        assert views[0]["state"] == "completed"

        raw = client.shard_stream(shard_id)
        assert raw == service.shard_stream_path(shard_id).read_bytes()
        # Incremental polling: the next offset is offset + len(fetched).
        assert client.shard_stream(shard_id, offset=len(raw)) == b""
        assert client.shard_stream(shard_id, offset=len(raw) + 999) == b""
        head = client.shard_stream(shard_id, offset=0)
        entries = [json.loads(line) for line in
                   head.decode("utf-8").splitlines()]
        assert {entry["experiment_id"] for entry in entries} == \
            {"exp-0001", "exp-0002"}

    def test_stream_tail_is_newline_aligned(self, toy_project, toy_model,
                                            toy_workload, tmp_path,
                                            live_worker):
        service, client = live_worker
        payload = _shard_payload(toy_project, toy_model, tmp_path,
                                 workload=toy_workload)
        shard_id = client.submit_shard(payload)["shard_id"]
        _wait_state(lambda: client.shard_status(shard_id),
                    ("completed", "failed"))
        path = service.shard_stream_path(shard_id)
        complete = path.read_bytes()
        # A racing half-written record must never ship to a dispatcher.
        with open(path, "ab") as handle:
            handle.write(b'{"experiment_id": "exp-9999", "sta')
        raw = client.shard_stream(shard_id)
        assert raw == complete
        tail = client.shard_stream(shard_id, offset=len(complete))
        assert tail == b""  # nothing complete past the old end yet

    def test_cancel_stops_between_experiments(self, toy_project,
                                              toy_model, tmp_path,
                                              live_worker):
        _service, client = live_worker
        # A slow workload so the cancel lands inside the first
        # experiment; parallelism 1 means the second is never started.
        (toy_project / "run.py").write_text(textwrap.dedent(
            """
            import time

            import app

            time.sleep(1.5)
            app.compute(3)
            print("WORKLOAD SUCCESS")
            """
        ).strip() + "\n")
        workload = WorkloadSpec(commands=["{python} run.py"],
                                command_timeout=30.0)
        payload = _shard_payload(toy_project, toy_model, tmp_path,
                                 workload=workload, parallelism=1)
        shard_id = client.submit_shard(payload)["shard_id"]
        view = client.cancel_shard(shard_id)
        assert view["shard_id"] == shard_id
        status = _wait_state(lambda: client.shard_status(shard_id),
                             ("completed", "cancelled", "failed"),
                             timeout=90.0)
        assert status["state"] == "cancelled"
        assert status["cancelled"] is True
        assert status["recorded"] < status["total"]

    def test_error_mapping_matches_in_process(self, live_worker):
        _service, client = live_worker
        with pytest.raises(KeyError, match="unknown shard"):
            client.shard_status("shard-9999")
        with pytest.raises(KeyError, match="unknown shard"):
            client.cancel_shard("shard-9999")
        with pytest.raises(ValueError, match="missing keys"):
            client.submit_shard({"shard": 0})


# -- corrupt progress.json regression ----------------------------------------------


class TestCorruptProgressTolerated:
    """A corrupt/partially-written ``progress.json`` must degrade to
    "no progress" on every job view — never crash it (the file is
    written while the campaign runs and can be damaged by a crash)."""

    def _service_with_job(self, workspace):
        job_dir = workspace / "jobs" / "job-0001"
        job_dir.mkdir(parents=True)
        write_json(job_dir / "job.json", {
            "job_id": "job-0001", "name": "damaged",
            "status": "completed", "submitted_at": 1.0,
            "started_at": 2.0, "finished_at": 3.0, "error": "",
        })
        return ProFIPyService(workspace), job_dir

    @pytest.mark.parametrize("damage", [
        b'{"experiments_done": 3, "experi',   # truncated mid-write
        b"",                                   # zero-byte crash artifact
        b"\x80\x81\xff",                       # not UTF-8 at all
        b"[1, 2, 3]\n",                        # valid JSON, wrong shape
    ])
    def test_damaged_progress_returns_none(self, tmp_path, damage):
        service, job_dir = self._service_with_job(tmp_path / "ws")
        (job_dir / "progress.json").write_bytes(damage)
        assert service.job("job-0001").progress is None
        assert service.job_progress("job-0001") is None
        (job,) = service.list_jobs()
        assert job.progress is None

    def test_progress_path_being_a_directory(self, tmp_path):
        service, job_dir = self._service_with_job(tmp_path / "ws")
        (job_dir / "progress.json").mkdir()
        assert service.job("job-0001").progress is None

    def test_damaged_progress_over_http(self, tmp_path):
        service, job_dir = self._service_with_job(tmp_path / "ws")
        (job_dir / "progress.json").write_bytes(b'{"half": ')
        server, _thread = start_server(service)
        try:
            client = ProFIPyClient(server.url)
            assert client.job("job-0001").progress is None
            (job,) = client.list_jobs()
            assert job.progress is None
        finally:
            server.shutdown()
            service.close()

    def test_intact_progress_still_served(self, tmp_path):
        service, job_dir = self._service_with_job(tmp_path / "ws")
        snapshot = {"backend": "thread", "experiments_done": 2,
                    "experiments_total": 5, "shards": []}
        write_json(job_dir / "progress.json", snapshot)
        assert service.job("job-0001").progress == snapshot
