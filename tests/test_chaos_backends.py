"""Chaos matrix over the execution stack: {thread, process, remote} ×
{kill, truncate, cancel}.

Every cell hurts a running (or finished) campaign — SIGKILL of the whole
process group (workers included), a stream truncated mid-record, a
cooperative cancel mid-run — and then asserts the canonical-stream
byte-equality oracle: a follow-up resume records byte-identical
experiments (modulo volatile timing/log fields) to one uninterrupted
reference run, whatever backend or shard count either side used.

Remote-specific chaos rides along: a worker killed mid-pool fails its
shards over to a survivor, and a worker-*reported* shard failure
degrades to retried ``harness_error`` records exactly like a dead local
process worker.
"""

import threading
import time

import pytest

from chaos import (
    WorkerProcess,
    assert_streams_equivalent,
    build_chaos_project,
    kill_group,
    launch_campaign,
    make_chaos_config,
    recorded_total,
    stream_projection,
    truncate_mid_record,
    wait_until,
)
from conftest import TOY_SPEC
from repro.orchestrator.backends import leftover_shard_streams
from repro.orchestrator.campaign import Campaign, CampaignCancelled
from repro.service.http import start_server
from repro.service.service import ProFIPyService

pytestmark = pytest.mark.integration

EXPERIMENTS = 6


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    """The shared chaos target plus one uninterrupted reference run."""
    base = tmp_path_factory.mktemp("chaos")
    project = build_chaos_project(base / "target", functions=EXPERIMENTS)
    reference_ws = base / "reference"
    result = Campaign(make_chaos_config(
        project, TOY_SPEC, reference_ws, "thread", 1
    )).run()
    assert result.executed == EXPERIMENTS

    class Env:
        pass

    env = Env()
    env.project = project
    env.reference_stream = reference_ws / "experiments.jsonl"
    return env


@pytest.fixture
def worker_urls(tmp_path):
    """Two in-process worker servers (real HTTP, cheap startup)."""
    servers = []
    for index in range(2):
        service = ProFIPyService(tmp_path / f"inworker-{index}")
        server, _thread = start_server(service)
        servers.append((server, service))
    yield [server.url for server, _service in servers]
    for server, service in servers:
        server.shutdown()
        service.close()


def _workers_for(backend, request, tmp_path):
    return (request.getfixturevalue("worker_urls")
            if backend == "remote" else None)


# -- kill --------------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 1), ("process", 4), ("remote", 2),
])
def test_killed_campaign_resumes_byte_identically(chaos_env, tmp_path,
                                                  backend, shards):
    """SIGKILL the campaign's whole session mid-run (remote workers die
    too), then resume on the *thread* backend with a different shard
    count: the canonical stream must match the uninterrupted reference.
    """
    workspace = tmp_path / "ws"
    worker_procs = []
    workers = None
    if backend == "remote":
        worker_procs = [WorkerProcess(tmp_path / f"worker-{index}")
                        for index in range(2)]
        workers = [proc.url for proc in worker_procs]
    child = launch_campaign(chaos_env.project, TOY_SPEC, workspace,
                            backend, shards, workers=workers)
    try:
        recorded = wait_until(
            lambda: recorded_total(workspace) >= 1
            or child.poll() is not None
        )
        assert recorded, "nothing recorded before the deadline"
    finally:
        kill_group(child)
        for proc in worker_procs:
            proc.stop()  # the worker dies with the campaign

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "thread", 3
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)
    assert leftover_shard_streams(workspace / "experiments.jsonl") == []


# -- truncate ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 2), ("process", 2), ("remote", 2),
])
def test_truncated_stream_resumes_byte_identically(chaos_env, tmp_path,
                                                   request, backend,
                                                   shards):
    """Truncate the canonical stream *inside* its last record (a crash
    mid-write): the damaged record is re-run, everything else resumes,
    and the result is byte-identical to the reference."""
    workers = _workers_for(backend, request, tmp_path)
    workspace = tmp_path / "ws"
    first = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert first.executed == EXPERIMENTS
    canonical = workspace / "experiments.jsonl"
    truncate_mid_record(canonical)

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert resumed.resumed < EXPERIMENTS  # the damaged record re-ran
    assert_streams_equivalent(canonical, chaos_env.reference_stream)


# -- cancel ------------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 2), ("process", 2), ("remote", 2),
])
def test_cancelled_campaign_resumes_byte_identically(chaos_env, tmp_path,
                                                     request, backend,
                                                     shards):
    """Cancel cooperatively once the first experiment lands; the partial
    stream is a valid resume point and the follow-up run completes it
    byte-identically (remote relays the cancel to its workers)."""
    workers = _workers_for(backend, request, tmp_path)
    workspace = tmp_path / "ws"
    progressed = threading.Event()

    def on_progress(snapshot):
        if snapshot.get("experiments_done", 0) >= 1:
            progressed.set()

    with pytest.raises(CampaignCancelled) as stopped:
        Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, backend, shards,
            workers=workers,
        )).run(cancel=progressed.is_set, on_progress=on_progress)
    assert stopped.value.result.executed <= EXPERIMENTS

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


# -- remote-specific chaos ---------------------------------------------------------


def test_remote_fails_over_a_dead_worker(chaos_env, tmp_path,
                                         worker_urls):
    """A worker that is already gone when shards are dispatched: every
    shard fails over to the survivor and the campaign completes without
    needing a resume."""
    victim = WorkerProcess(tmp_path / "victim")
    victim.kill()  # connection refused from the first request on
    workspace = tmp_path / "ws"
    result = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "remote", 2,
        workers=[victim.url, worker_urls[0]],
    )).run()
    assert result.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


def test_remote_worker_killed_mid_shard_fails_over(chaos_env, tmp_path,
                                                   worker_urls):
    """Kill a worker once results start flowing: its unfinished shard
    fails over to the survivor (resubmitting only what was never
    mirrored) and the campaign still completes byte-identically."""
    victim = WorkerProcess(tmp_path / "victim")
    workspace = tmp_path / "ws"
    config = make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "remote", 2,
        workers=[victim.url, worker_urls[0]],
    )
    outcome = {}

    def run():
        try:
            outcome["result"] = Campaign(config).run()
        except BaseException as error:  # noqa: BLE001 - reraised below
            outcome["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    try:
        assert wait_until(lambda: recorded_total(workspace) >= 1
                          or not thread.is_alive())
    finally:
        victim.kill()
    thread.join(timeout=180)
    assert not thread.is_alive(), "campaign hung after the worker died"
    if "error" in outcome:
        raise outcome["error"]
    result = outcome["result"]
    assert result.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


def test_remote_worker_internal_errors_fail_over(chaos_env, tmp_path,
                                                 worker_urls):
    """A worker answering 500 on every submit (server-side fault, not a
    connection loss) is excluded like a dead one: shards fail over to
    the healthy worker and the campaign completes cleanly."""
    service = ProFIPyService(tmp_path / "bad-worker")

    def explode(_payload):
        raise RuntimeError("disk full")

    service.shards.submit = explode
    server, _thread = start_server(service)
    try:
        workspace = tmp_path / "ws"
        result = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            workers=[server.url, worker_urls[0]],
        )).run()
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error"
                   for e in result.experiments)
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
    finally:
        server.shutdown()
        service.close()


def test_remote_worker_failure_degrades_to_harness_errors(
        chaos_env, tmp_path):
    """A worker-*reported* shard failure (the shard engine raised) is
    not failed over: the shard's experiments become ``harness_error``
    records — retried on resume, exactly like a dead process worker."""
    service = ProFIPyService(tmp_path / "worker")
    sabotaged = []
    original_submit = service.shards.submit

    def sabotage(payload):
        payload = dict(payload)
        if not sabotaged:
            sabotaged.append(payload["shard"])
            # An unknown spec name: the shard engine raises while
            # generating mutants, after the submit was accepted.
            payload["fault_model"] = {"name": "toy", "description": "",
                                      "faults": []}
        return original_submit(payload)

    service.shards.submit = sabotage
    server, _thread = start_server(service)
    try:
        workspace = tmp_path / "ws"
        result = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            workers=[server.url],
        )).run()
        assert sabotaged, "no shard was sabotaged"
        errored = [e for e in result.experiments
                   if e.status == "harness_error"]
        assert errored, "sabotaged shard produced no harness errors"
        assert all("remote worker failed" in e.error for e in errored)

        resumed = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "thread", 1
        )).run()
        assert resumed.executed == EXPERIMENTS
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
    finally:
        server.shutdown()
        service.close()


# -- registry fleet chaos (leases, stalls, work stealing) --------------------------


def _await_fleet(client, count, timeout=30.0):
    assert wait_until(
        lambda: len([w for w in client.list_workers()
                     if w["state"] == "alive"]) >= count,
        timeout=timeout,
    ), f"fleet never reached {count} alive workers"


def _campaign_thread(config):
    """Run a campaign on a thread, returning (thread, outcome dict)."""
    outcome = {}

    def run():
        try:
            outcome["result"] = Campaign(config).run()
        except BaseException as error:  # noqa: BLE001 - reraised by caller
            outcome["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    return thread, outcome


def _finish(thread, outcome, timeout=240.0):
    thread.join(timeout=timeout)
    assert not thread.is_alive(), "campaign hung"
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def test_stalled_shard_is_stolen_to_an_idle_worker(chaos_env, tmp_path,
                                                   monkeypatch):
    """Deterministic stall-steal, no signals involved: the only worker
    in the fleet *parks* every submitted shard (accepted, never
    executed).  Once an idle worker joins, the straggler detector must
    steal the parked shards onto it — there is no other way for this
    campaign to finish."""
    from repro.orchestrator.backends import RemoteBackend
    from repro.service.registry import WorkerAgent
    from repro.service.shards import ShardRun

    monkeypatch.setattr(RemoteBackend, "stall_seconds", 1.0)
    monkeypatch.setattr(RemoteBackend, "poll_max_seconds", 0.5)

    coordinator = ProFIPyService(tmp_path / "coordinator",
                                 lease_seconds=5.0)
    coordinator_server, _t = start_server(coordinator)
    parker = ProFIPyService(tmp_path / "parker")
    parker_server, _t = start_server(parker)
    healthy = ProFIPyService(tmp_path / "healthy")
    healthy_server, _t = start_server(healthy)
    agents = []

    parked = []

    def park(payload):
        # Accept the shard but never start its thread: it sits queued
        # forever — the silent-straggler failure mode.
        host = parker.shards
        with host._lock:
            shard_id = host._next_shard_id()
            directory = host.shards_dir / shard_id
            directory.mkdir(parents=True, exist_ok=True)
            run = ShardRun(shard_id=shard_id,
                           shard=int(payload["shard"]),
                           total=len(payload["planned"]),
                           directory=directory)
            host._runs[shard_id] = run
        parked.append(shard_id)
        return host.status(shard_id)

    parker.shards.submit = park
    try:
        agent = WorkerAgent("local", parker_server.url, parker.shards,
                            client=coordinator, interval=0.2)
        agent.start()
        agents.append(agent)

        workspace = tmp_path / "ws"
        config = make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            registry_url=coordinator_server.url,
        )
        thread, outcome = _campaign_thread(config)
        try:
            # Every shard must be parked on the only fleet member
            # before the rescuer appears.
            assert wait_until(lambda: len(parked) >= 1, timeout=30.0)
            time.sleep(0.5)
            rescuer = WorkerAgent("local", healthy_server.url,
                                  healthy.shards, client=coordinator,
                                  interval=0.2)
            rescuer.start()
            agents.append(rescuer)
        except BaseException:
            _finish(thread, outcome)
            raise
        result = _finish(thread, outcome)
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error" for e in result.experiments)
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
        # The parked shards never ran where they were first placed.
        assert parked
        assert all(parker.shards.status(sid)["recorded"] == 0
                   for sid in parked)
    finally:
        for agent in agents:
            agent.stop()
        for server in (coordinator_server, parker_server, healthy_server):
            server.shutdown()
        for service in (coordinator, parker, healthy):
            service.close()


def test_cold_cache_joiner_fetches_blobs_before_running_stolen_tail(
        chaos_env, tmp_path, monkeypatch):
    """The blob-shipping steal cell: the only fleet member parks every
    shard, and the rescuer that joins mid-campaign is *cold* — an empty
    blob store, no shared filesystem, nothing but its registration.
    The steal path must ship it the image blobs before the stolen tail
    runs, and the results must still be byte-identical to the
    uninterrupted reference."""
    from repro.orchestrator.backends import RemoteBackend
    from repro.service.registry import WorkerAgent
    from repro.service.shards import ShardRun

    monkeypatch.setattr(RemoteBackend, "stall_seconds", 1.0)
    monkeypatch.setattr(RemoteBackend, "poll_max_seconds", 0.5)

    coordinator = ProFIPyService(tmp_path / "coordinator",
                                 lease_seconds=5.0)
    coordinator_server, _t = start_server(coordinator)
    parker = ProFIPyService(tmp_path / "parker")
    parker_server, _t = start_server(parker)
    rescuer_service = ProFIPyService(tmp_path / "rescuer")
    rescuer_server, _t = start_server(rescuer_service)
    agents = []

    parked = []

    def park(payload):
        # Accept but never execute (see the stall-steal cell above).
        host = parker.shards
        with host._lock:
            shard_id = host._next_shard_id()
            directory = host.shards_dir / shard_id
            directory.mkdir(parents=True, exist_ok=True)
            run = ShardRun(shard_id=shard_id,
                           shard=int(payload["shard"]),
                           total=len(payload["planned"]),
                           directory=directory)
            host._runs[shard_id] = run
        parked.append(shard_id)
        return host.status(shard_id)

    parker.shards.submit = park
    try:
        agent = WorkerAgent("local", parker_server.url, parker.shards,
                            client=coordinator, interval=0.2)
        agent.start()
        agents.append(agent)

        workspace = tmp_path / "ws"
        config = make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            registry_url=coordinator_server.url,
        )
        thread, outcome = _campaign_thread(config)
        try:
            assert wait_until(lambda: len(parked) >= 1, timeout=30.0)
            # The rescuer joins only now, with nothing in its store.
            assert rescuer_service.blobs.total_bytes() == 0
            rescuer = WorkerAgent("local", rescuer_server.url,
                                  rescuer_service.shards,
                                  client=coordinator, interval=0.2)
            rescuer.start()
            agents.append(rescuer)
        except BaseException:
            _finish(thread, outcome)
            raise
        result = _finish(thread, outcome)
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error" for e in result.experiments)
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
        # The stolen tail really ran on the joiner, from blobs it was
        # shipped after joining — not on the parker, not from our disk.
        assert parked
        assert all(parker.shards.status(sid)["recorded"] == 0
                   for sid in parked)
        assert rescuer_service.blobs.total_bytes() > 0
        assert any(view["state"] == "completed"
                   for view in rescuer_service.shards.list())
    finally:
        for agent in agents:
            agent.stop()
        for server in (coordinator_server, parker_server, rescuer_server):
            server.shutdown()
        for service in (coordinator, parker, rescuer_service):
            service.close()


def test_sigstopped_worker_loses_its_lease_and_its_tail_is_stolen(
        chaos_env, tmp_path, monkeypatch):
    """The ``stall`` chaos cell: SIGSTOP a registered worker mid-shard.
    The frozen process holds its sockets open (requests hang, they are
    not refused), so only the missed heartbeats can expose it.  The
    dispatcher must steal the unmirrored tail without operator help and
    finish byte-identically — and the frozen worker's on-disk shard
    stream must be missing the stolen experiments."""
    from repro.orchestrator.backends import RemoteBackend
    from repro.orchestrator.plan import shard_index
    from repro.orchestrator.stream import ExperimentStream
    from repro.service.client import ProFIPyClient

    monkeypatch.setattr(RemoteBackend, "request_timeout", 3.0)
    monkeypatch.setattr(RemoteBackend, "stall_seconds", 60.0)

    coordinator = ProFIPyService(tmp_path / "coordinator",
                                 lease_seconds=1.0)
    coordinator_server, _t = start_server(coordinator)
    workers = []
    try:
        workers = [
            WorkerProcess(tmp_path / f"worker-{index}",
                          join=coordinator_server.url)
            for index in range(2)
        ]
        _await_fleet(ProFIPyClient(coordinator_server.url), 2)

        shards = 2
        workspace = tmp_path / "ws"
        config = make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", shards,
            registry_url=coordinator_server.url,
        )
        thread, outcome = _campaign_thread(config)

        frozen = {}

        def freeze_a_busy_worker():
            for worker in workers:
                try:
                    views = ProFIPyClient(
                        worker.url, timeout=2.0
                    ).list_shards()
                except Exception:  # noqa: BLE001 - not up yet
                    continue
                for view in views:
                    if (view["state"] in ("queued", "running")
                            and view["recorded"] < view["total"]):
                        worker.sigstop()
                        frozen["worker"] = worker
                        frozen["view"] = view
                        return True
            return not thread.is_alive()

        try:
            assert wait_until(freeze_a_busy_worker, timeout=60.0)
            assert "worker" in frozen, "campaign finished before a " \
                                       "worker could be frozen mid-shard"
        except BaseException:
            _finish(thread, outcome)
            raise
        result = _finish(thread, outcome)
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error" for e in result.experiments)
        canonical = workspace / "experiments.jsonl"
        assert_streams_equivalent(canonical, chaos_env.reference_stream)

        # The frozen worker could not have written a byte since the
        # freeze: its on-disk stream for the frozen shard must be
        # missing experiments the canonical stream has — the stolen
        # tail ran elsewhere.
        view = frozen["view"]
        frozen_ws = tmp_path / f"worker-{workers.index(frozen['worker'])}"
        frozen_stream = (frozen_ws / "shards" / view["shard_id"]
                         / "experiments.jsonl")
        frozen_ids = set(
            ExperimentStream(frozen_stream)._latest_entries()
        )
        shard_ids = {
            experiment_id
            for experiment_id in ExperimentStream(
                canonical)._latest_entries()
            if shard_index(experiment_id, shards) == view["shard"]
        }
        assert frozen_ids < shard_ids, (
            "no experiments were stolen from the frozen worker "
            f"(frozen={sorted(frozen_ids)} shard={sorted(shard_ids)})"
        )
    finally:
        for worker in workers:
            worker.stop()
        coordinator_server.shutdown()
        coordinator.close()


def test_registered_fleet_survives_sigstop_and_sigkill(chaos_env,
                                                       tmp_path,
                                                       monkeypatch):
    """The full ISSUE oracle: a three-worker registered fleet (no
    static ``--worker`` fallback) with one worker SIGSTOPped and
    another SIGKILLed mid-run still completes every experiment on the
    survivor, byte-identical to the uninterrupted reference, with no
    operator intervention."""
    from repro.orchestrator.backends import RemoteBackend
    from repro.service.client import ProFIPyClient

    monkeypatch.setattr(RemoteBackend, "request_timeout", 3.0)
    monkeypatch.setattr(RemoteBackend, "stall_seconds", 30.0)

    coordinator = ProFIPyService(tmp_path / "coordinator",
                                 lease_seconds=1.0)
    coordinator_server, _t = start_server(coordinator)
    workers = []
    try:
        workers = [
            WorkerProcess(tmp_path / f"worker-{index}",
                          join=coordinator_server.url)
            for index in range(3)
        ]
        _await_fleet(ProFIPyClient(coordinator_server.url), 3)

        workspace = tmp_path / "ws"
        config = make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 3,
            registry_url=coordinator_server.url,
        )
        thread, outcome = _campaign_thread(config)
        try:
            assert wait_until(lambda: recorded_total(workspace) >= 1
                              or not thread.is_alive(), timeout=60.0)
            workers[0].sigstop()
            workers[1].kill()
        except BaseException:
            _finish(thread, outcome)
            raise
        result = _finish(thread, outcome)
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error" for e in result.experiments)
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
    finally:
        for worker in workers:
            worker.stop()
        coordinator_server.shutdown()
        coordinator.close()


def test_stream_projection_oracle_detects_divergence(chaos_env,
                                                     tmp_path):
    """The oracle itself: projections ignore volatile fields but flag a
    real divergence (sanity check that the matrix can actually fail)."""
    reference = stream_projection(chaos_env.reference_stream)
    copy = tmp_path / "copy.jsonl"
    copy.write_bytes(chaos_env.reference_stream.read_bytes())
    assert stream_projection(copy) == reference
    with open(copy, "a", encoding="utf-8") as handle:
        handle.write('{"experiment_id": "chaos-9999", "status": "x"}\n')
    assert stream_projection(copy) != reference
