"""Chaos matrix over the execution stack: {thread, process, remote} ×
{kill, truncate, cancel}.

Every cell hurts a running (or finished) campaign — SIGKILL of the whole
process group (workers included), a stream truncated mid-record, a
cooperative cancel mid-run — and then asserts the canonical-stream
byte-equality oracle: a follow-up resume records byte-identical
experiments (modulo volatile timing/log fields) to one uninterrupted
reference run, whatever backend or shard count either side used.

Remote-specific chaos rides along: a worker killed mid-pool fails its
shards over to a survivor, and a worker-*reported* shard failure
degrades to retried ``harness_error`` records exactly like a dead local
process worker.
"""

import threading

import pytest

from chaos import (
    WorkerProcess,
    assert_streams_equivalent,
    build_chaos_project,
    kill_group,
    launch_campaign,
    make_chaos_config,
    recorded_total,
    stream_projection,
    truncate_mid_record,
    wait_until,
)
from conftest import TOY_SPEC
from repro.orchestrator.backends import leftover_shard_streams
from repro.orchestrator.campaign import Campaign, CampaignCancelled
from repro.service.http import start_server
from repro.service.service import ProFIPyService

pytestmark = pytest.mark.integration

EXPERIMENTS = 6


@pytest.fixture(scope="module")
def chaos_env(tmp_path_factory):
    """The shared chaos target plus one uninterrupted reference run."""
    base = tmp_path_factory.mktemp("chaos")
    project = build_chaos_project(base / "target", functions=EXPERIMENTS)
    reference_ws = base / "reference"
    result = Campaign(make_chaos_config(
        project, TOY_SPEC, reference_ws, "thread", 1
    )).run()
    assert result.executed == EXPERIMENTS

    class Env:
        pass

    env = Env()
    env.project = project
    env.reference_stream = reference_ws / "experiments.jsonl"
    return env


@pytest.fixture
def worker_urls(tmp_path):
    """Two in-process worker servers (real HTTP, cheap startup)."""
    servers = []
    for index in range(2):
        service = ProFIPyService(tmp_path / f"inworker-{index}")
        server, _thread = start_server(service)
        servers.append((server, service))
    yield [server.url for server, _service in servers]
    for server, service in servers:
        server.shutdown()
        service.close()


def _workers_for(backend, request, tmp_path):
    return (request.getfixturevalue("worker_urls")
            if backend == "remote" else None)


# -- kill --------------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 1), ("process", 4), ("remote", 2),
])
def test_killed_campaign_resumes_byte_identically(chaos_env, tmp_path,
                                                  backend, shards):
    """SIGKILL the campaign's whole session mid-run (remote workers die
    too), then resume on the *thread* backend with a different shard
    count: the canonical stream must match the uninterrupted reference.
    """
    workspace = tmp_path / "ws"
    worker_procs = []
    workers = None
    if backend == "remote":
        worker_procs = [WorkerProcess(tmp_path / f"worker-{index}")
                        for index in range(2)]
        workers = [proc.url for proc in worker_procs]
    child = launch_campaign(chaos_env.project, TOY_SPEC, workspace,
                            backend, shards, workers=workers)
    try:
        recorded = wait_until(
            lambda: recorded_total(workspace) >= 1
            or child.poll() is not None
        )
        assert recorded, "nothing recorded before the deadline"
    finally:
        kill_group(child)
        for proc in worker_procs:
            proc.stop()  # the worker dies with the campaign

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "thread", 3
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)
    assert leftover_shard_streams(workspace / "experiments.jsonl") == []


# -- truncate ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 2), ("process", 2), ("remote", 2),
])
def test_truncated_stream_resumes_byte_identically(chaos_env, tmp_path,
                                                   request, backend,
                                                   shards):
    """Truncate the canonical stream *inside* its last record (a crash
    mid-write): the damaged record is re-run, everything else resumes,
    and the result is byte-identical to the reference."""
    workers = _workers_for(backend, request, tmp_path)
    workspace = tmp_path / "ws"
    first = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert first.executed == EXPERIMENTS
    canonical = workspace / "experiments.jsonl"
    truncate_mid_record(canonical)

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert resumed.resumed < EXPERIMENTS  # the damaged record re-ran
    assert_streams_equivalent(canonical, chaos_env.reference_stream)


# -- cancel ------------------------------------------------------------------------


@pytest.mark.parametrize("backend,shards", [
    ("thread", 2), ("process", 2), ("remote", 2),
])
def test_cancelled_campaign_resumes_byte_identically(chaos_env, tmp_path,
                                                     request, backend,
                                                     shards):
    """Cancel cooperatively once the first experiment lands; the partial
    stream is a valid resume point and the follow-up run completes it
    byte-identically (remote relays the cancel to its workers)."""
    workers = _workers_for(backend, request, tmp_path)
    workspace = tmp_path / "ws"
    progressed = threading.Event()

    def on_progress(snapshot):
        if snapshot.get("experiments_done", 0) >= 1:
            progressed.set()

    with pytest.raises(CampaignCancelled) as stopped:
        Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, backend, shards,
            workers=workers,
        )).run(cancel=progressed.is_set, on_progress=on_progress)
    assert stopped.value.result.executed <= EXPERIMENTS

    resumed = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, backend, shards,
        workers=workers,
    )).run()
    assert resumed.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


# -- remote-specific chaos ---------------------------------------------------------


def test_remote_fails_over_a_dead_worker(chaos_env, tmp_path,
                                         worker_urls):
    """A worker that is already gone when shards are dispatched: every
    shard fails over to the survivor and the campaign completes without
    needing a resume."""
    victim = WorkerProcess(tmp_path / "victim")
    victim.kill()  # connection refused from the first request on
    workspace = tmp_path / "ws"
    result = Campaign(make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "remote", 2,
        workers=[victim.url, worker_urls[0]],
    )).run()
    assert result.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


def test_remote_worker_killed_mid_shard_fails_over(chaos_env, tmp_path,
                                                   worker_urls):
    """Kill a worker once results start flowing: its unfinished shard
    fails over to the survivor (resubmitting only what was never
    mirrored) and the campaign still completes byte-identically."""
    victim = WorkerProcess(tmp_path / "victim")
    workspace = tmp_path / "ws"
    config = make_chaos_config(
        chaos_env.project, TOY_SPEC, workspace, "remote", 2,
        workers=[victim.url, worker_urls[0]],
    )
    outcome = {}

    def run():
        try:
            outcome["result"] = Campaign(config).run()
        except BaseException as error:  # noqa: BLE001 - reraised below
            outcome["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    try:
        assert wait_until(lambda: recorded_total(workspace) >= 1
                          or not thread.is_alive())
    finally:
        victim.kill()
    thread.join(timeout=180)
    assert not thread.is_alive(), "campaign hung after the worker died"
    if "error" in outcome:
        raise outcome["error"]
    result = outcome["result"]
    assert result.executed == EXPERIMENTS
    assert_streams_equivalent(workspace / "experiments.jsonl",
                              chaos_env.reference_stream)


def test_remote_worker_internal_errors_fail_over(chaos_env, tmp_path,
                                                 worker_urls):
    """A worker answering 500 on every submit (server-side fault, not a
    connection loss) is excluded like a dead one: shards fail over to
    the healthy worker and the campaign completes cleanly."""
    service = ProFIPyService(tmp_path / "bad-worker")

    def explode(_payload):
        raise RuntimeError("disk full")

    service.shards.submit = explode
    server, _thread = start_server(service)
    try:
        workspace = tmp_path / "ws"
        result = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            workers=[server.url, worker_urls[0]],
        )).run()
        assert result.executed == EXPERIMENTS
        assert all(e.status != "harness_error"
                   for e in result.experiments)
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
    finally:
        server.shutdown()
        service.close()


def test_remote_worker_failure_degrades_to_harness_errors(
        chaos_env, tmp_path):
    """A worker-*reported* shard failure (the shard engine raised) is
    not failed over: the shard's experiments become ``harness_error``
    records — retried on resume, exactly like a dead process worker."""
    service = ProFIPyService(tmp_path / "worker")
    sabotaged = []
    original_submit = service.shards.submit

    def sabotage(payload):
        payload = dict(payload)
        if not sabotaged:
            sabotaged.append(payload["shard"])
            # An unknown spec name: the shard engine raises while
            # generating mutants, after the submit was accepted.
            payload["fault_model"] = {"name": "toy", "description": "",
                                      "faults": []}
        return original_submit(payload)

    service.shards.submit = sabotage
    server, _thread = start_server(service)
    try:
        workspace = tmp_path / "ws"
        result = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "remote", 2,
            workers=[server.url],
        )).run()
        assert sabotaged, "no shard was sabotaged"
        errored = [e for e in result.experiments
                   if e.status == "harness_error"]
        assert errored, "sabotaged shard produced no harness errors"
        assert all("remote worker failed" in e.error for e in errored)

        resumed = Campaign(make_chaos_config(
            chaos_env.project, TOY_SPEC, workspace, "thread", 1
        )).run()
        assert resumed.executed == EXPERIMENTS
        assert_streams_equivalent(workspace / "experiments.jsonl",
                                  chaos_env.reference_stream)
    finally:
        server.shutdown()
        service.close()


def test_stream_projection_oracle_detects_divergence(chaos_env,
                                                     tmp_path):
    """The oracle itself: projections ignore volatile fields but flag a
    real divergence (sanity check that the matrix can actually fail)."""
    reference = stream_projection(chaos_env.reference_stream)
    copy = tmp_path / "copy.jsonl"
    copy.write_bytes(chaos_env.reference_stream.read_bytes())
    assert stream_projection(copy) == reference
    with open(copy, "a", encoding="utf-8") as handle:
        handle.write('{"experiment_id": "chaos-9999", "status": "x"}\n')
    assert stream_projection(copy) != reference
