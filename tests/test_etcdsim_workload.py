"""Tests for the case-study workload and target materialization."""

import subprocess
import sys

import pytest

from repro.etcdsim import (
    Client,
    EtcdServer,
    WorkloadError,
    materialize_target,
    run_workload,
)


class TestRunWorkload:
    def test_workload_passes_on_healthy_server(self):
        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            steps = run_workload(client)
            assert steps >= 10

    def test_workload_is_repeatable(self):
        # Two consecutive rounds against the same server must both pass
        # (the paper's two-round execution relies on this).
        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            assert run_workload(client) == run_workload(client)

    def test_workload_detects_stray_state(self):
        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            client.set("/stray/key", "junk")  # corrupted leftover state
            with pytest.raises(WorkloadError, match="stray"):
                run_workload(client)

    def test_workload_recovers_leftover_app_tree(self):
        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            client.set("/app/leftover", "junk")
            assert run_workload(client) >= 10

    def test_log_callback_invoked(self):
        lines = []
        with EtcdServer() as server:
            client = Client(host=server.host, port=server.port)
            run_workload(client, log=lines.append)
        assert any("TTL" in line for line in lines)


class TestMaterializedTarget:
    def test_tree_layout(self, tmp_path):
        project = materialize_target(tmp_path)
        assert project.client_file.exists()
        assert project.server_launcher.exists()
        assert project.workload_launcher.exists()
        assert (project.package_dir / "__init__.py").exists()
        assert project.injectable_files == [project.client_file]

    def test_standalone_end_to_end(self, tmp_path):
        import os

        materialize_target(tmp_path)
        env = {"PATH": os.environ.get("PATH", "/usr/bin:/bin")}
        server = subprocess.Popen(
            [sys.executable, "run_server.py", "--port", "0",
             "--port-file", "port.txt"],
            cwd=tmp_path, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            result = subprocess.run(
                [sys.executable, "run_workload.py",
                 "--port-file", "port.txt", "--quiet"],
                cwd=tmp_path, env=env, capture_output=True, text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert "WORKLOAD SUCCESS" in result.stdout
        finally:
            server.terminate()
            server.wait(timeout=10)

    def test_materialized_package_is_importable_in_isolation(self, tmp_path):
        import os

        materialize_target(tmp_path)
        env = {"PATH": os.environ.get("PATH", "/usr/bin:/bin")}
        result = subprocess.run(
            [sys.executable, "-c",
             "import pyetcd; print(pyetcd.Client.__name__)"],
            cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=30,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "Client"
