"""Reusable chaos-test helpers for the execution stack.

Tooling for tests that deliberately hurt a running campaign and then
assert the determinism/resume oracle:

* launch a campaign (or a ``profipy worker``) in a killable subprocess
  and SIGKILL its whole process group mid-shard;
* truncate result streams at arbitrary byte offsets (simulating a crash
  mid-write);
* the canonical-stream byte-equality oracle: two runs of the same
  campaign agree on :func:`stream_projection` (canonical bytes minus the
  volatile timing/log fields) no matter which backend/shard count ran
  them or what was done to them in between.

Kept import-safe for pytest (no ``test_`` prefix): the chaos *matrix*
lives in ``test_chaos_backends.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import repro
from repro.orchestrator.backends import leftover_shard_streams
from repro.orchestrator.campaign import CampaignConfig
from repro.orchestrator.stream import ExperimentStream

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

#: Fields that legitimately differ between two runs of the same
#: experiment (wall-clock, captured output ordering inside logs).
VOLATILE_FIELDS = ("duration", "logs", "rounds")


def child_env() -> dict:
    """Subprocess environment with the repro package importable."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


# -- chaos target project ----------------------------------------------------------


def build_chaos_project(project: Path, functions: int = 6,
                        startup_sleep: float = 0.25) -> Path:
    """A toy target with ``functions`` injection points and a workload
    slow enough (``startup_sleep``) that a kill lands mid-campaign."""
    project.mkdir(parents=True, exist_ok=True)
    chunks = []
    for index in range(functions):
        chunks.append(textwrap.dedent(
            f"""
            def compute_{index}(x):
                steps = []
                steps.append('start')
                result = x * 2 + {index}
                steps.append('done')
                return result
            """
        ).strip())
    (project / "app.py").write_text("\n\n\n".join(chunks) + "\n")
    (project / "run.py").write_text(textwrap.dedent(
        f"""
        import sys
        import time

        import app

        time.sleep({startup_sleep})
        for index in range({functions}):
            value = getattr(app, "compute_" + str(index))(3)
            if value != 6 + index:
                print("WORKLOAD FAILURE:", index, value, file=sys.stderr)
                sys.exit(1)
        print("WORKLOAD SUCCESS")
        """
    ).strip() + "\n")
    return project


def make_chaos_config(project: Path, spec_text: str, workspace: Path,
                      backend: str, shards: int,
                      workers: list[str] | None = None,
                      parallelism: int = 2,
                      registry_url: str | None = None) -> CampaignConfig:
    """The chaos campaign config — identical (name/seed/target/spec)
    across backends and resumes, so stream metas always match."""
    from repro.dsl.parser import parse_spec
    from repro.faultmodel.model import FaultModel
    from repro.workload.spec import WorkloadSpec

    model = FaultModel(name="toy")
    model.add(parse_spec(spec_text, name="WRR"),
              description="wrong return value")
    return CampaignConfig(
        name="chaos",
        target_dir=project,
        fault_model=model,
        workload=WorkloadSpec(commands=["{python} run.py"],
                              command_timeout=30.0),
        injectable_files=["app.py"],
        coverage=False,
        parallelism=parallelism,
        backend=backend,
        shards=shards,
        workers=workers,
        registry_url=registry_url,
        seed=7,
        workspace=workspace,
    )


# -- killable subprocesses ---------------------------------------------------------

_CAMPAIGN_SCRIPT = """
import json
import sys
from pathlib import Path

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.workload.spec import WorkloadSpec

params = json.loads(sys.argv[1])
model = FaultModel(name="toy")
model.add(parse_spec(params["spec_text"], name="WRR"),
          description="wrong return value")
config = CampaignConfig(
    name="chaos",
    target_dir=Path(params["target"]),
    fault_model=model,
    workload=WorkloadSpec(commands=["{python} run.py"],
                          command_timeout=30.0),
    injectable_files=["app.py"],
    coverage=False,
    parallelism=params["parallelism"],
    backend=params["backend"],
    shards=params["shards"],
    workers=params.get("workers"),
    registry_url=params.get("registry_url"),
    seed=7,
    workspace=Path(params["workspace"]),
)
Campaign(config).run()
"""


def launch_campaign(project: Path, spec_text: str, workspace: Path,
                    backend: str, shards: int,
                    workers: list[str] | None = None,
                    parallelism: int = 4,
                    registry_url: str | None = None) -> subprocess.Popen:
    """Run the chaos campaign in its own session (killable as a group)."""
    params = {
        "target": str(project),
        "spec_text": spec_text,
        "workspace": str(workspace),
        "backend": backend,
        "shards": shards,
        "workers": workers,
        "registry_url": registry_url,
        "parallelism": parallelism,
    }
    return subprocess.Popen(
        [sys.executable, "-c", _CAMPAIGN_SCRIPT, json.dumps(params)],
        env=child_env(), start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def kill_group(proc: subprocess.Popen, timeout: float = 30.0) -> None:
    """SIGKILL the subprocess and everything in its session (shard
    workers, sandboxes) — the no-cleanup crash the resume path owes a
    byte-identical recovery for."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait(timeout=timeout)


_URL_RE = re.compile(r"on (http://[\w.:\[\]-]+)")


class WorkerProcess:
    """A live ``profipy worker`` subprocess on an ephemeral port.

    ``join`` makes it register with a coordinator's worker registry and
    heartbeat its lease (``profipy worker --join URL``).
    """

    def __init__(self, workspace: Path, timeout: float = 30.0,
                 join: str | None = None) -> None:
        argv = [sys.executable, "-u", "-m", "repro.cli",
                "--workspace", str(workspace),
                "worker", "--host", "127.0.0.1", "--port", "0"]
        if join:
            argv += ["--join", join]
        self.proc = subprocess.Popen(
            argv,
            env=child_env(), start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        self.url = self._await_url(timeout)

    def _await_url(self, timeout: float) -> str:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"worker exited during startup "
                    f"(rc={self.proc.poll()})"
                )
            match = _URL_RE.search(line)
            if match:
                return match.group(1)
        raise RuntimeError("worker did not announce its URL in time")

    def kill(self) -> None:
        """SIGKILL the worker and its whole session (mid-shard death)."""
        kill_group(self.proc)

    def sigstop(self) -> None:
        """Freeze the worker's whole session (SIGSTOP): the process
        stays alive but stops heartbeating and answering requests — the
        hung-host failure mode only lease expiry can detect."""
        os.killpg(self.proc.pid, signal.SIGSTOP)

    def sigcont(self) -> None:
        """Thaw a frozen worker (SIGCONT)."""
        try:
            os.killpg(self.proc.pid, signal.SIGCONT)
        except ProcessLookupError:
            pass

    def stop(self) -> None:
        if self.proc.poll() is None:
            # SIGKILL lands on stopped processes too, so a frozen
            # worker still dies; SIGCONT first keeps the wait prompt.
            self.sigcont()
            self.kill()


# -- stream damage -----------------------------------------------------------------


def truncate_file(path: Path, size: int) -> None:
    """Cut ``path`` to ``size`` bytes (a crash mid-write, byte-exact)."""
    with open(path, "rb+") as handle:
        handle.truncate(size)


def truncate_mid_record(path: Path) -> int:
    """Truncate the stream inside its last record (not on a line
    boundary) and return the new size — the worst-case partial write a
    reader must tolerate."""
    data = path.read_bytes()
    body = data[:-1] if data.endswith(b"\n") else data
    cut_from = body.rfind(b"\n") + 1  # start of the last record
    size = cut_from + max(1, (len(body) - cut_from) // 2)
    truncate_file(path, size)
    return size


# -- observation + the byte-equality oracle ----------------------------------------


def recorded_total(workspace: Path) -> int:
    """Results recorded anywhere in the workspace: the canonical stream
    plus any shard streams (local mirrors included)."""
    canonical = workspace / "experiments.jsonl"
    total = len(ExperimentStream(canonical)._latest_entries())
    for path in leftover_shard_streams(canonical):
        total += len(ExperimentStream(path)._latest_entries())
    return total


def wait_until(predicate, timeout: float = 120.0,
               interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def stream_projection(path: Path) -> bytes:
    """Canonical stream bytes minus the volatile timing/log fields —
    two *different runs* of the same campaign agree on exactly this,
    whatever backend/shard count ran them and whatever chaos happened
    in between (the crash-recovery byte-equality oracle)."""
    entries = []
    for _id, entry in sorted(ExperimentStream(path)._latest_entries().items()):
        entries.append({key: value for key, value in entry.items()
                       if key not in VOLATILE_FIELDS})
    return ("\n".join(json.dumps(entry, sort_keys=True)
                      for entry in entries) + "\n").encode("utf-8")


def assert_streams_equivalent(actual: Path, reference: Path) -> None:
    """The oracle assertion, with a readable diff on failure."""
    actual_bytes = stream_projection(actual)
    reference_bytes = stream_projection(reference)
    assert actual_bytes == reference_bytes, (
        "canonical streams diverged:\n"
        f"--- {actual}\n{actual_bytes.decode('utf-8')}\n"
        f"--- {reference}\n{reference_bytes.decode('utf-8')}"
    )
