"""Content-addressed target shipping over the /v1 API.

The tentpole invariants under test:

* the blob endpoints round-trip bytes by digest and answer batched
  missing-probes, with ``unknown_blob`` mapping back to ``KeyError``;
* a remote campaign's shard payloads carry the image *manifest* and not
  one coordinator filesystem path, yet the results are byte-identical
  to the thread backend — the worker rebuilt the image from blobs;
* blob uploads deduplicate: a second campaign over the unchanged target
  re-ships zero blobs.
"""

import json
import shutil
import tempfile

import pytest

from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.service.blobs import BlobStore, ImageManifest, blob_digest
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService
from repro.service.shards import REQUIRED_PAYLOAD_KEYS, ShardHost

pytestmark = pytest.mark.integration


@pytest.fixture
def remote_worker():
    """One live worker server whose workspace shares no directory with
    the campaign's tmp_path (the no-shared-filesystem premise)."""
    home = tempfile.mkdtemp(prefix="profipy-blob-worker-")
    service = ProFIPyService(home)
    server, _thread = start_server(service)
    yield server.url
    server.shutdown()
    service.close()
    shutil.rmtree(home, ignore_errors=True)


def _campaign_projection(result):
    """The determinism-relevant projection of a campaign's stream."""
    rows = [
        {"id": e.experiment_id, "seed": e.seed, "point": e.point,
         "status": e.status, "mutated": e.mutated_snippet,
         "original": e.original_snippet}
        for e in result.experiments
    ]
    return json.dumps(rows, sort_keys=True).encode("utf-8")


def _run_remote(toy_project, toy_model, toy_workload, workspace, worker):
    config = CampaignConfig(
        name="shipping",
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=False,
        parallelism=2,
        backend="remote",
        shards=1,
        workers=[worker],
        seed=7,
        workspace=workspace,
    )
    return Campaign(config).run()


class TestBlobEndpoints:
    def test_put_get_missing_roundtrip(self, remote_worker):
        client = ProFIPyClient(remote_worker)
        payload = b"shipped across the wire"
        digest = blob_digest(payload)
        absent = blob_digest(b"never uploaded")
        assert client.missing_blobs([digest, absent]) == sorted(
            {digest, absent}
        )
        view = client.put_blob(digest, payload)
        assert view["digest"] == digest
        assert view["size"] == len(payload)
        assert client.get_blob(digest) == payload
        assert client.missing_blobs([digest, absent]) == [absent]

    def test_unknown_blob_maps_to_keyerror(self, remote_worker):
        client = ProFIPyClient(remote_worker)
        with pytest.raises(KeyError, match="unknown blob"):
            client.get_blob(blob_digest(b"nowhere"))

    def test_corrupt_upload_rejected(self, remote_worker):
        client = ProFIPyClient(remote_worker)
        with pytest.raises(ValueError, match="hashes to"):
            client.put_blob(blob_digest(b"declared"), b"actual")
        with pytest.raises(ValueError, match="64 hex chars"):
            client.put_blob("not-a-digest", b"bytes")


class TestShardHostManifests:
    def _payload(self, **extra):
        payload = {key: None for key in REQUIRED_PAYLOAD_KEYS}
        payload.update(shard=0, planned=[], **extra)
        return payload

    def test_payload_needs_image_or_manifest(self, tmp_path):
        host = ShardHost(tmp_path / "shards",
                         blob_store=BlobStore(tmp_path / "blobs"))
        with pytest.raises(ValueError, match="'image_manifest'"):
            host.submit(self._payload())

    def test_manifest_payload_needs_a_blob_store(self, tmp_path):
        host = ShardHost(tmp_path / "shards")  # no store
        (tmp_path / "tree").mkdir()
        (tmp_path / "tree" / "a.py").write_text("pass\n")
        manifest = ImageManifest.from_tree(tmp_path / "tree")
        with pytest.raises(ValueError, match="no blob store"):
            host.submit(self._payload(image_manifest=manifest.to_dict()))

    def test_malformed_manifest_is_invalid_request(self, tmp_path):
        host = ShardHost(tmp_path / "shards",
                         blob_store=BlobStore(tmp_path / "blobs"))
        with pytest.raises(ValueError, match="entries"):
            host.submit(self._payload(image_manifest={"nope": 1}))

    def test_missing_blobs_fail_the_shard_not_the_submit(self, tmp_path):
        """A dispatcher that skipped its uploads gets a failed shard
        naming the blob, not a hung worker."""
        host = ShardHost(tmp_path / "shards",
                         blob_store=BlobStore(tmp_path / "blobs"))
        (tmp_path / "tree").mkdir()
        (tmp_path / "tree" / "a.py").write_text("pass\n")
        manifest = ImageManifest.from_tree(tmp_path / "tree")  # no store
        view = host.submit(self._payload(image_manifest=manifest.to_dict()))
        host.join(timeout=30)
        status = host.status(view["shard_id"])
        assert status["state"] == "failed"
        assert "unknown blob" in status["error"]


class TestRemoteShipping:
    def test_manifest_payloads_carry_no_coordinator_paths(
            self, toy_project, toy_model, toy_workload, tmp_path,
            remote_worker, monkeypatch):
        shipped = []
        original_submit = ProFIPyClient.submit_shard

        def capture(self, payload):
            shipped.append(json.loads(json.dumps(payload)))
            return original_submit(self, payload)

        monkeypatch.setattr(ProFIPyClient, "submit_shard", capture)
        thread_config = CampaignConfig(
            name="shipping", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            injectable_files=["app.py"], coverage=False, parallelism=2,
            seed=7, workspace=tmp_path / "ws-thread",
        )
        reference = _campaign_projection(Campaign(thread_config).run())
        workspace = tmp_path / "ws-remote"
        result = _run_remote(toy_project, toy_model, toy_workload,
                             workspace, remote_worker)
        assert result.executed == 2
        # Byte-identical to the thread backend: the worker rebuilt the
        # image from blobs, not from our disk.
        assert _campaign_projection(result) == reference
        assert shipped, "remote backend dispatched no shard payloads"
        for payload in shipped:
            assert "image_manifest" in payload
            # Not one coordinator filesystem path rides along — neither
            # the legacy keys nor any string mentioning our workspace.
            for key in ("image", "base_dir", "artifacts_dir"):
                assert key not in payload
            assert str(workspace) not in json.dumps(payload)

    def test_recampaign_reuploads_zero_blobs(
            self, toy_project, toy_model, toy_workload, tmp_path,
            remote_worker, monkeypatch):
        uploads = []
        original_put = ProFIPyClient.put_blob

        def counting_put(self, digest, data):
            uploads.append((digest, len(data)))
            return original_put(self, digest, data)

        monkeypatch.setattr(ProFIPyClient, "put_blob", counting_put)
        first = _run_remote(toy_project, toy_model, toy_workload,
                            tmp_path / "ws-1", remote_worker)
        assert first.executed == 2
        cold_uploads = list(uploads)
        assert cold_uploads, "cold worker should have fetched blobs"
        uploads.clear()
        # Same target, fresh workspace/stream: every blob digest is
        # already in the worker's store, so nothing re-ships.
        second = _run_remote(toy_project, toy_model, toy_workload,
                             tmp_path / "ws-2", remote_worker)
        assert second.executed == 2
        assert uploads == []
