"""Unit tests for the AST pattern-matching engine."""

import ast
import textwrap

from repro.dsl import compile_text
from repro.scanner.bindings import CallCapture
from repro.scanner.matcher import Matcher, call_name, name_matches


def matches_of(spec_text, target, name="spec"):
    model = compile_text(spec_text, name=name)
    tree = ast.parse(textwrap.dedent(target))
    return Matcher(model).find_matches(tree), model


class TestCallName:
    def test_simple_name(self):
        node = ast.parse("foo()").body[0].value
        assert call_name(node.func) == "foo"

    def test_dotted_name(self):
        node = ast.parse("utils.execute()").body[0].value
        assert call_name(node.func) == "utils.execute"

    def test_deep_attribute(self):
        node = ast.parse("self.client.delete_port()").body[0].value
        assert call_name(node.func) == "self.client.delete_port"

    def test_computed_base(self):
        node = ast.parse("get_client().delete_port()").body[0].value
        assert call_name(node.func) == "*.delete_port"

    def test_non_name_callable(self):
        node = ast.parse("(lambda: 1)()").body[0].value
        assert call_name(node.func) is None


class TestNameMatches:
    def test_exact(self):
        assert name_matches("foo", "foo")

    def test_glob_prefix(self):
        assert name_matches("delete_*", "delete_port")

    def test_last_segment_for_undotted_glob(self):
        assert name_matches("delete_*", "self.client.delete_port")

    def test_dotted_glob_requires_dotted_match(self):
        assert name_matches("utils.execute", "utils.execute")
        assert not name_matches("utils.execute", "other.execute")
        assert not name_matches("utils.execute", "execute")

    def test_star_matches_unnamed(self):
        assert name_matches("*", None)
        assert not name_matches("foo", None)

    def test_regex_pattern(self):
        assert name_matches("/^(get|set)_/", "set_key")
        assert not name_matches("/^(get|set)_/", "reset_key")


class TestStatementWindows:
    def test_single_call_statement(self):
        found, _ = matches_of(
            "change { $CALL{name=foo}(...) } into { pass }",
            "foo()\nbar()\nfoo(1)\n",
        )
        assert len(found) == 2
        assert [m.lineno for m in found] == [1, 3]

    def test_call_must_be_outermost(self):
        found, _ = matches_of(
            "change { $CALL{name=foo}(...) } into { pass }",
            "x = foo()\n",
        )
        assert found == []

    def test_ctx_any_matches_nested_calls(self):
        found, _ = matches_of(
            "change { $CALL#c{name=foo; ctx=any} } into { pass }",
            "x = foo()\nreturn_value = [foo(i) for i in y]\n",
        )
        assert len(found) == 2
        capture = found[0].bindings.get("c")
        assert isinstance(capture, CallCapture)
        assert capture.containing_stmt is found[0].stmts[0]

    def test_block_context_requirements(self):
        spec = """
        change {
            $BLOCK{tag=b1; stmts=1,*}
            $CALL{name=delete_*}(...)
            $BLOCK{tag=b2; stmts=1,*}
        } into { pass }
        """
        # delete at the start of the body: no preceding statement -> no match.
        found, _ = matches_of(spec, "def f():\n    delete_x()\n    after()\n")
        assert found == []
        found, _ = matches_of(
            spec, "def f():\n    before()\n    delete_x()\n    after()\n"
        )
        assert len(found) == 1
        assert [len(found[0].bindings.get(t)) for t in ("b1", "b2")] == [1, 1]

    def test_one_match_per_deletable_call(self):
        spec = """
        change {
            $BLOCK{tag=b1; stmts=1,*}
            $CALL{name=delete_*}(...)
            $BLOCK{tag=b2; stmts=1,*}
        } into { pass }
        """
        target = """
        def f():
            a()
            delete_one()
            b()
            delete_two()
            c()
        """
        found, _ = matches_of(spec, target)
        assert len(found) == 2

    def test_block_bounds_respected(self):
        spec = """
        change {
            if $EXPR{var=node} :
                $BLOCK{stmts=1,2}
                continue
        } into { }
        """
        ok, _ = matches_of(
            spec,
            "for node in it:\n    if node:\n        a()\n        b()\n"
            "        continue\n",
        )
        assert len(ok) == 1
        too_big, _ = matches_of(
            spec,
            "for node in it:\n    if node:\n        a()\n        b()\n"
            "        c()\n        continue\n",
        )
        assert too_big == []

    def test_nested_body_anchored_fully(self):
        # The pattern if-body must match the whole target if-body.
        spec = """
        change {
            if $EXPR :
                foo()
        } into { }
        """
        found, _ = matches_of(spec, "if x:\n    foo()\n    bar()\n")
        assert found == []
        found, _ = matches_of(spec, "if x:\n    foo()\n")
        assert len(found) == 1

    def test_if_with_else_not_matched_by_plain_if(self):
        spec = """
        change {
            if $EXPR :
                foo()
        } into { }
        """
        found, _ = matches_of(spec, "if x:\n    foo()\nelse:\n    bar()\n")
        assert found == []

    def test_else_matched_via_block(self):
        spec = """
        change {
            if $EXPR :
                foo()
            else :
                $BLOCK{stmts=0,*}
        } into { }
        """
        found, _ = matches_of(spec, "if x:\n    foo()\nelse:\n    bar()\n")
        assert len(found) == 1

    def test_ellipsis_statement_wildcard(self):
        spec = """
        change {
            try :
                ...
            except :
                $BLOCK{tag=h; stmts=1,*}
        } into { pass }
        """
        found, _ = matches_of(
            spec,
            "try:\n    a()\n    b()\nexcept:\n    handle()\n",
        )
        assert len(found) == 1
        assert len(found[0].bindings.get("h")) == 1

    def test_matches_inside_class_methods(self):
        found, _ = matches_of(
            "change { $CALL{name=close}(...) } into { pass }",
            """
            class C:
                def f(self):
                    close()
            """,
        )
        assert len(found) == 1


class TestExpressionMatching:
    def test_expr_var_constraint(self):
        found, _ = matches_of(
            "change { if $EXPR{var=node} :\n    continue } into { }",
            "while True:\n    if node:\n        continue\n",
        )
        assert len(found) == 1
        found, _ = matches_of(
            "change { if $EXPR{var=node} :\n    continue } into { }",
            "while True:\n    if other:\n        continue\n",
        )
        assert found == []

    def test_expr_matches_any_expression(self):
        found, _ = matches_of(
            "change { return $EXPR } into { return None }",
            "def f():\n    return a + b\n",
        )
        assert len(found) == 1

    def test_string_glob(self):
        found, _ = matches_of(
            "change { f($STRING{val=*-*}) } into { pass }",
            "f('-x')\nf('plain')\n",
        )
        assert len(found) == 1
        assert found[0].lineno == 1

    def test_num_bounds(self):
        found, _ = matches_of(
            "change { g($NUM{min=0; max=10}) } into { pass }",
            "g(5)\ng(50)\ng(-1)\ng(True)\n",
        )
        assert len(found) == 1

    def test_var_name_glob(self):
        found, _ = matches_of(
            "change { x = $VAR{name=cfg_*} } into { x = None }",
            "x = cfg_timeout\nx = other\n",
        )
        assert len(found) == 1

    def test_assignment_with_call_value(self):
        found, _ = matches_of(
            "change { $VAR#v = $CALL#c{name=urlopen}(...) } into { $VAR#v = None }",
            "resp = urlopen(url)\n",
        )
        assert len(found) == 1

    def test_boolop_clause_pattern(self):
        # MLOC-style: if with an 'or' clause.
        found, _ = matches_of(
            "change { if $EXPR#a or $EXPR#b :\n    $BLOCK{tag=body; stmts=1,*} }"
            " into { }",
            "if x or y:\n    go()\n",
        )
        assert len(found) == 1

    def test_structural_mismatch_rejected(self):
        found, _ = matches_of(
            "change { if $EXPR :\n    $BLOCK{stmts=1,*} } into { }",
            "while x:\n    go()\n",
        )
        assert found == []


class TestCallArguments:
    def test_wildcard_absorbs_positional(self):
        found, _ = matches_of(
            "change { $CALL#c{name=f}(..., $STRING#s{val=-*}, ...) } into { pass }",
            "f(1, 2, '-v', 3)\n",
        )
        capture = found[0].bindings.get("c")
        assert [len(w) for w in capture.wildcards] == [2, 1]

    def test_no_wildcard_requires_exact_args(self):
        found, _ = matches_of(
            "change { $CALL{name=f}($EXPR) } into { pass }",
            "f(1)\nf(1, 2)\nf()\n",
        )
        assert len(found) == 1
        assert found[0].lineno == 1

    def test_keywords_absorbed_with_wildcard(self):
        found, _ = matches_of(
            "change { $CALL#c{name=f}(...) } into { pass }",
            "f(1, timeout=3)\n",
        )
        capture = found[0].bindings.get("c")
        assert [k.arg for k in capture.absorbed_keywords] == ["timeout"]

    def test_keywords_rejected_without_wildcard(self):
        found, _ = matches_of(
            "change { $CALL{name=f}($EXPR) } into { pass }",
            "f(1, timeout=3)\n",
        )
        assert found == []

    def test_explicit_keyword_pattern(self):
        found, _ = matches_of(
            "change { $CALL{name=f}(..., timeout=$NUM) } into { pass }",
            "f(1, timeout=3)\nf(1)\n",
        )
        assert len(found) == 1
        assert found[0].lineno == 1

    def test_empty_call_pattern(self):
        found, _ = matches_of(
            "change { $CALL{name=f}() } into { pass }",
            "f()\nf(1)\n",
        )
        assert len(found) == 1

    def test_zero_args_matches_bare_wildcard(self):
        found, _ = matches_of(
            "change { $CALL{name=f}(...) } into { pass }",
            "f()\n",
        )
        assert len(found) == 1


class TestMatchOrdering:
    def test_matches_sorted_by_position(self):
        found, _ = matches_of(
            "change { $CALL{name=t*}(...) } into { pass }",
            "t1()\n\ndef f():\n    t2()\n\nt3()\n",
        )
        assert [m.lineno for m in found] == [1, 4, 6]
