"""Matcher tests across statement contexts and uncommon shapes."""

import ast
import textwrap

from repro.dsl import compile_text
from repro.mutator.mutate import Mutator
from repro.scanner.matcher import Matcher
from repro.scanner.scan import nth_match, scan_source


def matches_of(spec_text, target, name="spec"):
    model = compile_text(spec_text, name=name)
    tree = ast.parse(textwrap.dedent(target))
    return Matcher(model).find_matches(tree), model


class TestStatementContexts:
    SPEC = "change { target() } into { pass }"

    def test_match_in_while_body(self):
        found, _ = matches_of(self.SPEC, "while x:\n    target()\n")
        assert len(found) == 1

    def test_match_in_with_body(self):
        found, _ = matches_of(self.SPEC, "with open(p) as f:\n    target()\n")
        assert len(found) == 1

    def test_match_in_try_finally(self):
        found, _ = matches_of(
            self.SPEC,
            "try:\n    a()\nfinally:\n    target()\n",
        )
        assert len(found) == 1
        assert found[0].field == "finalbody"

    def test_match_in_except_handler(self):
        found, _ = matches_of(
            self.SPEC,
            "try:\n    a()\nexcept ValueError:\n    target()\n",
        )
        assert len(found) == 1

    def test_match_in_else_of_loop(self):
        found, _ = matches_of(
            self.SPEC,
            "for i in x:\n    a()\nelse:\n    target()\n",
        )
        assert len(found) == 1
        assert found[0].field == "orelse"

    def test_match_in_decorated_function(self):
        found, _ = matches_of(
            self.SPEC,
            "@decorator\ndef f():\n    target()\n",
        )
        assert len(found) == 1

    def test_match_in_async_function(self):
        found, _ = matches_of(
            self.SPEC,
            "async def f():\n    target()\n",
        )
        assert len(found) == 1

    def test_match_in_nested_function(self):
        found, _ = matches_of(
            self.SPEC,
            "def outer():\n    def inner():\n        target()\n",
        )
        assert len(found) == 1


class TestUncommonShapes:
    def test_call_on_subscripted_object(self):
        found, _ = matches_of(
            "change { $CALL{name=delete_*}(...) } into { pass }",
            "handlers[0].delete_item(x)\n",
        )
        # Subscript base becomes a '*' segment: '*.delete_item'.
        assert len(found) == 1

    def test_chained_attribute_depth(self):
        found, _ = matches_of(
            "change { $CALL{name=a.b.c.d}(...) } into { pass }",
            "a.b.c.d()\na.b.c.e()\n",
        )
        assert len(found) == 1

    def test_starred_args_absorbed_by_wildcard(self):
        found, _ = matches_of(
            "change { $CALL#c{name=f}(...) } into { pass }",
            "f(*args, **kwargs)\n",
        )
        assert len(found) == 1

    def test_augmented_assignment_structural(self):
        found, _ = matches_of(
            "change { $VAR#v += $NUM#n } into { $VAR#v -= $NUM#n }",
            "counter += 1\n",
        )
        assert len(found) == 1

    def test_tuple_assignment(self):
        found, _ = matches_of(
            "change { $VAR#a, $VAR#b = $EXPR#val } into { pass }",
            "x, y = pair\n",
        )
        assert len(found) == 1

    def test_fstring_not_confused_with_directive(self):
        found, _ = matches_of(
            "change { log($STRING#s) } into { pass }",
            'log(f"value={x}")\nlog("plain")\n',
        )
        # f-strings are JoinedStr, not Constant: only the plain one matches.
        assert len(found) == 1

    def test_lambda_body_not_a_statement_window(self):
        found, _ = matches_of(
            "change { target() } into { pass }",
            "callback = lambda: target()\n",
        )
        assert found == []

    def test_comprehension_calls_not_stmt_matches(self):
        found, _ = matches_of(
            "change { $CALL{name=f}(...) } into { pass }",
            "values = [f(i) for i in x]\n",
        )
        assert found == []


class TestScanHelpers:
    def test_nth_match_round_trips(self):
        model = compile_text("change { f($NUM#n) } into { pass }")
        source = "f(1)\nf(2)\nf(3)\n"
        for ordinal in range(3):
            match = nth_match(source, model, ordinal)
            assert match.lineno == ordinal + 1

    def test_by_spec_groups_points(self):
        from repro.scanner.scan import ScanResult

        model_a = compile_text("change { f() } into { pass }", name="A")
        model_b = compile_text("change { g() } into { pass }", name="B")
        points = scan_source("f()\ng()\nf()\n", [model_a, model_b])
        result = ScanResult(points=points, files_scanned=1)
        grouped = result.by_spec()
        assert len(grouped["A"]) == 2
        assert len(grouped["B"]) == 1

    def test_mutation_of_decorated_context(self):
        model = compile_text(
            "change { target() } into { $TIMEOUT{seconds=1}\n    target() }"
        )
        source = "@deco\ndef f():\n    target()\n"
        mutation = Mutator(trigger=True).mutate_source(source, model, 0)
        tree = ast.parse(mutation.source)
        func = next(n for n in ast.walk(tree)
                    if isinstance(n, ast.FunctionDef))
        assert func.decorator_list  # decorator preserved
