"""Property-based tests for the deterministic shard partitioner and the
prefix-stable seeded sampler.

The remote/process backends lean entirely on ``shard_index`` /
``Plan.shards``: a resumed campaign may change the shard count *and* the
backend, so the partition must be a pure function of ``(experiment_id,
shard_count)`` — independent of plan order, of the other experiments,
and of the process (``PYTHONHASHSEED``).  Hypothesis drives arbitrary id
sets through the partitioner; a seeded-random corpus checks the balance
bound sha256 uniformity promises.

The sampler carries the same burden plus monotonicity: growing a
sampled campaign toward exhaustive rides resume, which only re-executes
nothing if ``sample_n(k)`` is always a subset of ``sample_n(k + m)``.
"""

import hashlib
import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.common.rng import SeededRandom
from repro.orchestrator.plan import Plan, PlannedExperiment, shard_index
from repro.scanner.points import InjectionPoint
from repro.stats.sampler import (
    monotone_sample,
    sample_priority,
    stratum_key,
)

SETTINGS = settings(max_examples=100, deadline=None)

#: Arbitrary experiment ids, unicode included (ids are hashed utf-8).
experiment_ids = st.text(min_size=1, max_size=40)


def _plan(ids) -> Plan:
    point = InjectionPoint(spec_name="WRR", file="app.py", ordinal=0,
                           lineno=1, end_lineno=1, snippet="",
                           component="app")
    return Plan(experiments=[
        PlannedExperiment(experiment_id=experiment_id, point=point)
        for experiment_id in ids
    ])


def _stratified_plan(ids, strata=3) -> Plan:
    """A plan whose points spread over ``strata`` files/components."""
    experiments = []
    for index, experiment_id in enumerate(ids):
        bucket = index % strata
        point = InjectionPoint(spec_name=f"S{bucket}",
                               file=f"mod{bucket}.py", ordinal=index,
                               lineno=1, end_lineno=1, snippet="",
                               component=f"comp{bucket}")
        experiments.append(PlannedExperiment(
            experiment_id=experiment_id, point=point))
    return Plan(experiments=experiments)


def _ids(plan: Plan) -> set:
    return {experiment.experiment_id for experiment in plan.experiments}


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=150),
       st.integers(1, 16))
def test_every_experiment_assigned_exactly_once(ids, shard_count):
    shards = _plan(ids).shards(shard_count)
    assert len(shards) == shard_count
    assigned = [experiment.experiment_id
                for shard in shards for experiment in shard]
    assert sorted(assigned) == sorted(ids)  # disjoint and complete
    for shard in shards:
        # Plan order is preserved within each shard.
        positions = [ids.index(experiment.experiment_id)
                     for experiment in shard]
        assert positions == sorted(positions)


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=150),
       st.integers(1, 16))
def test_partition_matches_shard_index_pointwise(ids, shard_count):
    # Plan.shards is exactly the pointwise partitioner — no hidden
    # dependence on plan contents or ordering.
    shards = _plan(ids).shards(shard_count)
    for index, shard in enumerate(shards):
        for experiment in shard:
            assert shard_index(experiment.experiment_id,
                               shard_count) == index


@SETTINGS
@given(experiment_ids, st.integers(1, 64))
def test_assignment_is_a_pure_function(experiment_id, shard_count):
    first = shard_index(experiment_id, shard_count)
    assert 0 <= first < shard_count
    assert shard_index(experiment_id, shard_count) == first


@SETTINGS
@given(st.lists(experiment_ids, unique=True, min_size=1, max_size=60),
       st.integers(1, 8), st.integers(1, 8))
def test_stable_under_shard_count_changes(ids, count_a, count_b):
    # Changing the shard count re-partitions, but each id's assignment
    # under a given count never depends on which other ids exist — the
    # invariant that lets a resumed campaign change its shard count
    # freely (the id's records remain valid wherever they were made).
    plan_all = _plan(ids)
    for count in (count_a, count_b):
        full = {
            experiment.experiment_id: index
            for index, shard in enumerate(plan_all.shards(count))
            for experiment in shard
        }
        for experiment_id in ids:
            solo = _plan([experiment_id]).shards(count)
            solo_index = next(index for index, shard in enumerate(solo)
                              if shard.experiments)
            assert solo_index == full[experiment_id]


def test_single_shard_is_identity():
    ids = [f"exp-{index:04d}" for index in range(50)]
    (only,) = _plan(ids).shards(1)
    assert [e.experiment_id for e in only] == ids
    assert all(shard_index(experiment_id, 1) == 0
               for experiment_id in ids)


def test_invalid_shard_count_rejected():
    with pytest.raises(ValueError, match="shard_count"):
        shard_index("exp-0001", 0)
    with pytest.raises(ValueError, match="shard_count"):
        shard_index("exp-0001", -3)


# -- prefix-stable seeded sampler ------------------------------------------------


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=80),
       st.integers(0, 80), st.integers(0, 2**31), st.booleans())
def test_sampler_prefix_monotone(ids, count, seed, stratified):
    # sample_n(k) ⊆ sample_n(k+1): the property that makes a sampled
    # campaign extendable toward exhaustive purely via resume.
    plan = _stratified_plan(ids) if stratified else _plan(ids)
    stratify_by = "file" if stratified else None
    smaller = _ids(monotone_sample(plan, count, seed,
                                   stratify_by=stratify_by))
    larger = _ids(monotone_sample(plan, count + 1, seed,
                                  stratify_by=stratify_by))
    assert smaller <= larger
    assert len(smaller) == min(count, len(ids))


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=80),
       st.integers(0, 80), st.integers(0, 2**31))
def test_sampler_is_pure_and_order_independent(ids, count, seed):
    plan = _plan(ids)
    reversed_plan = Plan(experiments=list(reversed(plan.experiments)))
    first = _ids(monotone_sample(plan, count, seed))
    again = _ids(monotone_sample(plan, count, seed))
    permuted = _ids(monotone_sample(reversed_plan, count, seed))
    assert first == again == permuted
    # Membership decided, execution order preserved: the sampled plan
    # keeps its experiments in original plan order.
    sampled = monotone_sample(plan, count, seed)
    positions = [ids.index(e.experiment_id) for e in sampled.experiments]
    assert positions == sorted(positions)


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=60),
       st.integers(0, 60), st.integers(0, 2**31))
def test_sampler_matches_explicit_sha256(ids, count, seed):
    # The draw is exactly "k smallest by (sha256(seed::id), id)" — a
    # pure hash computation, so PYTHONHASHSEED can play no part.
    plan = _plan(ids)

    def priority(experiment_id):
        material = f"{seed}::{experiment_id}".encode("utf-8")
        return int.from_bytes(
            hashlib.sha256(material).digest()[:8], "big")

    expected = set(sorted(ids, key=lambda i: (priority(i), i))[:count])
    assert _ids(monotone_sample(plan, count, seed)) == expected
    for experiment_id in ids:
        assert sample_priority(seed, experiment_id) == \
            priority(experiment_id)


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=60),
       st.integers(0, 60), st.integers(0, 2**31), st.integers(1, 8))
def test_sampler_independent_of_shard_count(ids, count, seed, shard_count):
    # Sampling is plan-level: re-assembling the plan from any sharding
    # of itself draws the same membership (shard count never affects
    # which experiments a sampled campaign runs).
    plan = _plan(ids)
    reassembled = Plan(experiments=[
        experiment
        for shard in plan.shards(shard_count)
        for experiment in shard
    ])
    assert _ids(monotone_sample(reassembled, count, seed)) == \
        _ids(monotone_sample(plan, count, seed))


@SETTINGS
@given(st.lists(experiment_ids, unique=True, min_size=1, max_size=60),
       st.integers(0, 2**31), st.integers(1, 5),
       st.sampled_from(["file", "component", "spec"]))
def test_stratified_sample_never_starves_a_populated_stratum(
        ids, seed, strata, key):
    plan = _stratified_plan(ids, strata=strata)
    populated = {stratum_key(e, key) for e in plan.experiments}
    # Once the sample can afford one pick per stratum, every stratum
    # with population is represented.
    sampled = monotone_sample(plan, len(populated), seed, stratify_by=key)
    assert {stratum_key(e, key) for e in sampled.experiments} == populated


# -- Plan.sample (legacy RNG draw) regression ------------------------------------


class TestLegacyPlanSample:
    IDS = [f"exp-{index:04d}" for index in range(10)]

    def test_count_equal_to_population_returns_all(self):
        plan = _plan(self.IDS)
        assert _ids(plan.sample(len(self.IDS))) == set(self.IDS)

    def test_count_above_population_clamps(self):
        plan = _plan(self.IDS)
        sampled = plan.sample(len(self.IDS) + 25)
        assert [e.experiment_id for e in sampled.experiments] == self.IDS

    def test_deterministic_under_fixed_seeded_random(self):
        plan = _plan(self.IDS)
        first = plan.sample(4, SeededRandom(42))
        second = plan.sample(4, SeededRandom(42))
        assert [e.experiment_id for e in first.experiments] == \
            [e.experiment_id for e in second.experiments]
        assert len(first.experiments) == 4


def test_balance_within_statistical_bounds():
    # sha256 spreads realistic campaign ids uniformly: for n ids over k
    # shards each shard's size is within 5 standard deviations of n/k
    # (a deterministic corpus, so this never flakes — it fails only if
    # the partitioner's distribution genuinely degrades).
    ids = [f"campaign-{index:06d}" for index in range(4000)]
    plan = _plan(ids)
    for shard_count in (2, 4, 8, 16):
        sizes = [len(shard) for shard in plan.shards(shard_count)]
        assert sum(sizes) == len(ids)
        mean = len(ids) / shard_count
        deviation = 5 * math.sqrt(mean * (1 - 1 / shard_count))
        for size in sizes:
            assert abs(size - mean) <= deviation, (
                f"shard sizes {sizes} out of bounds for "
                f"{shard_count} shards"
            )
