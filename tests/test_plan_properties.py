"""Property-based tests for the deterministic shard partitioner.

The remote/process backends lean entirely on ``shard_index`` /
``Plan.shards``: a resumed campaign may change the shard count *and* the
backend, so the partition must be a pure function of ``(experiment_id,
shard_count)`` — independent of plan order, of the other experiments,
and of the process (``PYTHONHASHSEED``).  Hypothesis drives arbitrary id
sets through the partitioner; a seeded-random corpus checks the balance
bound sha256 uniformity promises.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.orchestrator.plan import Plan, PlannedExperiment, shard_index
from repro.scanner.points import InjectionPoint

SETTINGS = settings(max_examples=100, deadline=None)

#: Arbitrary experiment ids, unicode included (ids are hashed utf-8).
experiment_ids = st.text(min_size=1, max_size=40)


def _plan(ids) -> Plan:
    point = InjectionPoint(spec_name="WRR", file="app.py", ordinal=0,
                           lineno=1, end_lineno=1, snippet="",
                           component="app")
    return Plan(experiments=[
        PlannedExperiment(experiment_id=experiment_id, point=point)
        for experiment_id in ids
    ])


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=150),
       st.integers(1, 16))
def test_every_experiment_assigned_exactly_once(ids, shard_count):
    shards = _plan(ids).shards(shard_count)
    assert len(shards) == shard_count
    assigned = [experiment.experiment_id
                for shard in shards for experiment in shard]
    assert sorted(assigned) == sorted(ids)  # disjoint and complete
    for shard in shards:
        # Plan order is preserved within each shard.
        positions = [ids.index(experiment.experiment_id)
                     for experiment in shard]
        assert positions == sorted(positions)


@SETTINGS
@given(st.lists(experiment_ids, unique=True, max_size=150),
       st.integers(1, 16))
def test_partition_matches_shard_index_pointwise(ids, shard_count):
    # Plan.shards is exactly the pointwise partitioner — no hidden
    # dependence on plan contents or ordering.
    shards = _plan(ids).shards(shard_count)
    for index, shard in enumerate(shards):
        for experiment in shard:
            assert shard_index(experiment.experiment_id,
                               shard_count) == index


@SETTINGS
@given(experiment_ids, st.integers(1, 64))
def test_assignment_is_a_pure_function(experiment_id, shard_count):
    first = shard_index(experiment_id, shard_count)
    assert 0 <= first < shard_count
    assert shard_index(experiment_id, shard_count) == first


@SETTINGS
@given(st.lists(experiment_ids, unique=True, min_size=1, max_size=60),
       st.integers(1, 8), st.integers(1, 8))
def test_stable_under_shard_count_changes(ids, count_a, count_b):
    # Changing the shard count re-partitions, but each id's assignment
    # under a given count never depends on which other ids exist — the
    # invariant that lets a resumed campaign change its shard count
    # freely (the id's records remain valid wherever they were made).
    plan_all = _plan(ids)
    for count in (count_a, count_b):
        full = {
            experiment.experiment_id: index
            for index, shard in enumerate(plan_all.shards(count))
            for experiment in shard
        }
        for experiment_id in ids:
            solo = _plan([experiment_id]).shards(count)
            solo_index = next(index for index, shard in enumerate(solo)
                              if shard.experiments)
            assert solo_index == full[experiment_id]


def test_single_shard_is_identity():
    ids = [f"exp-{index:04d}" for index in range(50)]
    (only,) = _plan(ids).shards(1)
    assert [e.experiment_id for e in only] == ids
    assert all(shard_index(experiment_id, 1) == 0
               for experiment_id in ids)


def test_invalid_shard_count_rejected():
    with pytest.raises(ValueError, match="shard_count"):
        shard_index("exp-0001", 0)
    with pytest.raises(ValueError, match="shard_count"):
        shard_index("exp-0001", -3)


def test_balance_within_statistical_bounds():
    # sha256 spreads realistic campaign ids uniformly: for n ids over k
    # shards each shard's size is within 5 standard deviations of n/k
    # (a deterministic corpus, so this never flakes — it fails only if
    # the partitioner's distribution genuinely degrades).
    ids = [f"campaign-{index:06d}" for index in range(4000)]
    plan = _plan(ids)
    for shard_count in (2, 4, 8, 16):
        sizes = [len(shard) for shard in plan.shards(shard_count)]
        assert sum(sizes) == len(ids)
        mean = len(ids) / shard_count
        deviation = 5 * math.sqrt(mean * (1 - 1 / shard_count))
        for size in sizes:
            assert abs(size - mean) <= deviation, (
                f"shard sizes {sizes} out of bounds for "
                f"{shard_count} shards"
            )
