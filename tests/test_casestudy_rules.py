"""Tests for the case-study wiring: rules, components, config building."""

import pytest

from repro.analysis.classify import classify_experiment
from repro.casestudy import (
    CASE_STUDY_COMPONENTS,
    CASE_STUDY_RULES,
    case_study_config,
)
from repro.common.procutil import CommandResult
from repro.orchestrator.experiment import ExperimentResult
from repro.workload.runner import RoundResult


def failing_experiment(stderr, logs=None):
    result = ExperimentResult(experiment_id="e", point={"component": "pyetcd"},
                              spec_name="B_NONE_KEY", logs=logs or {})
    result.rounds.append(RoundResult(
        round_no=1, fault_enabled=True,
        commands=[CommandResult(command="w", returncode=1, stdout="",
                                stderr=stderr, duration=1.0)],
    ))
    return result


class TestCaseStudyRules:
    @pytest.mark.parametrize("stderr,expected", [
        ("AttributeError: 'NoneType' object has no attribute 'startswith'",
         "none_input_crash"),
        ("WORKLOAD FAILURE: EtcdKeyNotFound: 'Key not found : /app'",
         "key_not_found"),
        ("EtcdException: Bad response: 400 Bad Request", "bad_request"),
        ("EtcdException: Bad response: 501 Unsupported method",
         "bad_request"),
        ("EtcdValueError: Invalid field : ttl=-5", "bad_request"),
        ("EtcdCompareFailed: Compare failed : [1 != x]", "compare_failed"),
        ("EtcdConnectionFailed: Connection to etcd failed",
         "reconnection_failure"),
        ("WORKLOAD FAILURE: assertion: unexpected root entries ['/aqz'] "
         "(stray state)", "stray_state"),
        ("WORKLOAD FAILURE: assertion: queue out of order",
         "assertion_failure"),
        ("WORKLOAD FAILURE: unhandled TypeError: cannot unpack",
         "client_crash"),
    ])
    def test_paper_failure_modes_classified(self, stderr, expected):
        classification = classify_experiment(failing_experiment(stderr),
                                             CASE_STUDY_RULES)
        assert classification.mode == expected

    def test_rules_have_unique_modes(self):
        modes = [rule.mode for rule in CASE_STUDY_RULES]
        assert len(modes) == len(set(modes))

    def test_rules_have_descriptions(self):
        assert all(rule.description for rule in CASE_STUDY_RULES)

    def test_specific_mode_wins_over_crash(self):
        # A NoneType traceback must classify as none_input_crash, not the
        # generic client_crash, because rule order encodes specificity.
        stderr = ("Traceback (most recent call last):\n  ...\n"
                  "AttributeError: 'NoneType' object has no attribute "
                  "'startswith'")
        classification = classify_experiment(failing_experiment(stderr),
                                             CASE_STUDY_RULES)
        assert classification.mode == "none_input_crash"


class TestComponents:
    def test_two_components(self):
        assert len(CASE_STUDY_COMPONENTS) == 2
        names = {component.name for component in CASE_STUDY_COMPONENTS}
        assert names == {"pyetcd-client", "etcd-server"}

    def test_propagation_uses_output_and_logs(self):
        from repro.analysis.metrics import failure_propagation

        result = failing_experiment(
            "WORKLOAD FAILURE: x",
            logs={".service-0.err": "Traceback: server side boom"},
        )
        report = failure_propagation([result], CASE_STUDY_COMPONENTS)
        assert report.propagated == 1


class TestConfigBuilding:
    def test_config_shape(self, tmp_path):
        config = case_study_config("external_api", tmp_path,
                                   command_timeout=12.0, sample=5)
        assert config.name == "external_api"
        assert config.rounds == 2
        assert config.trigger is True
        assert config.sample == 5
        assert config.workload.command_timeout == 12.0
        assert config.injectable_files == ["pyetcd/client.py"]

    def test_target_reused_across_campaigns(self, tmp_path):
        case_study_config("external_api", tmp_path)
        marker = tmp_path / "target" / "pyetcd" / "client.py"
        before = marker.stat().st_mtime_ns
        case_study_config("wrong_inputs", tmp_path)
        assert marker.stat().st_mtime_ns == before

    def test_unknown_campaign_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown campaign"):
            case_study_config("bogus", tmp_path)
