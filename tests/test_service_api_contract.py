"""Contract tests: ProFIPyService (in-process) and ProFIPyClient (HTTP)
must be interchangeable.

Every test here runs against *both* facades through one parametrized
fixture — same calls, same return types, same exception types — and the
equivalence tests run the same campaign through both transports and
require identical job lifecycles, summaries, and experiment lists (the
PR acceptance criterion).  Cancellation over either transport leaves a
partial result stream that a follow-up ``resume_from`` completes
byte-identically to an uninterrupted run (the PR 2 determinism
invariant).

The ``*-auth`` fixture params rerun the whole contract with tenancy
enabled: the in-process facade becomes ``service.for_tenant(...)`` and
the HTTP client authenticates with a bearer token — the lifecycle,
summaries, experiment lists, and the cancel+resume determinism
invariant must all survive authentication unchanged.
"""

import re
import textwrap
import time

import pytest

from repro.common.fsutil import read_json
from repro.faultmodel.library import gswfit_model
from repro.orchestrator.campaign import CampaignConfig
from repro.service.api import (
    campaign_config_from_dict,
    campaign_config_to_dict,
)
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.service import ProFIPyService
from repro.service.tenants import TenantDirectory

#: The tenant the ``*-auth`` fixture params run the contract as.
CONTRACT_TENANT = "contract"
CONTRACT_TOKEN = "contract-secret-token"

#: Experiment fields that must be byte-identical across transports and
#: across cancel+resume (timing fields like duration legitimately vary).
DETERMINISTIC_FIELDS = ("experiment_id", "point", "fault_id", "spec_name",
                        "seed", "status", "original_snippet",
                        "mutated_snippet")


def deterministic_view(experiments):
    return [
        {field: experiment.to_dict()[field]
         for field in DETERMINISTIC_FIELDS}
        for experiment in experiments
    ]


@pytest.fixture(params=["inprocess", "http", "inprocess-auth", "http-auth"])
def facade_factory(request):
    """Builds a service facade over a workspace: the in-process core or
    an HTTP client talking to a server running that same core.  The
    ``-auth`` variants run the identical contract as a configured
    tenant (scoped in-process view / bearer-token client)."""
    servers = []
    auth = request.param.endswith("-auth")

    def factory(workspace, max_workers=2):
        tenants = None
        if auth:
            tenants = TenantDirectory.from_dict({"tenants": {
                CONTRACT_TENANT: {"token": CONTRACT_TOKEN,
                                  "max_running": max_workers},
            }})
        service = ProFIPyService(workspace, max_workers=max_workers,
                                 tenants=tenants)
        if request.param.startswith("inprocess"):
            return service.for_tenant(CONTRACT_TENANT) if auth else service
        server, _thread = start_server(service)
        servers.append((server, service))
        return ProFIPyClient(server.url,
                             token=CONTRACT_TOKEN if auth else None)

    yield factory
    for server, service in servers:
        server.shutdown()
        service.close()


class TestModelRegistryContract:
    def test_save_load_list(self, tmp_path, facade_factory):
        facade = facade_factory(tmp_path / "ws")
        model = gswfit_model()
        model.name = "custom"
        facade.save_model(model)
        assert "custom" in facade.list_models()
        assert len(facade.load_model("custom").faults) == len(model.faults)

    def test_predefined_fallback(self, tmp_path, facade_factory):
        facade = facade_factory(tmp_path / "ws")
        assert facade.load_model("extended").name == "extended"

    def test_list_models_includes_predefined(self, tmp_path,
                                             facade_factory):
        # Regression: list_models used to hide the pre-defined models,
        # so GET /v1/models omitted names load_model happily resolved.
        facade = facade_factory(tmp_path / "ws")
        names = facade.list_models()
        assert "gswfit" in names and "extended" in names
        for name in names:
            assert facade.load_model(name).name == name

    def test_stored_model_shadows_predefined_in_listing(
            self, tmp_path, facade_factory):
        # One name, one listing entry: a stored model of the same name
        # shadows the pre-defined one instead of duplicating it.
        facade = facade_factory(tmp_path / "ws")
        shadow = gswfit_model()
        shadow.name = "extended"
        shadow.description = "stored shadow"
        facade.save_model(shadow)
        names = facade.list_models()
        assert names.count("extended") == 1
        assert facade.load_model("extended").description == "stored shadow"

    def test_unknown_model_raises_keyerror(self, tmp_path, facade_factory):
        facade = facade_factory(tmp_path / "ws")
        with pytest.raises(KeyError, match="unknown fault model"):
            facade.load_model("nope")

    def test_import_model(self, tmp_path, facade_factory):
        path = tmp_path / "custom.json"
        model = gswfit_model()
        model.name = "custom"
        model.save(path)
        facade = facade_factory(tmp_path / "ws")
        imported = facade.import_model(path)
        assert imported.name == "custom"
        assert "custom" in facade.list_models()


class TestJobSurfaceContract:
    def test_unknown_job_raises_keyerror(self, tmp_path, facade_factory):
        facade = facade_factory(tmp_path / "ws")
        for call in (facade.job, facade.report_text, facade.result_summary,
                     facade.experiments, facade.cancel):
            with pytest.raises(KeyError):
                call("job-9999")

    def test_list_jobs_empty(self, tmp_path, facade_factory):
        facade = facade_factory(tmp_path / "ws")
        assert facade.list_jobs() == []


@pytest.mark.integration
class TestCampaignContract:
    def campaign_config(self, toy_project, toy_model, toy_workload,
                        name="toy"):
        return CampaignConfig(
            name=name,
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            seed=7,
        )

    def test_campaign_lifecycle(self, tmp_path, facade_factory,
                                toy_project, toy_model, toy_workload):
        facade = facade_factory(tmp_path / "ws")
        config = self.campaign_config(toy_project, toy_model, toy_workload)
        job = facade.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        assert job.started_at is not None and job.finished_at is not None
        summary = facade.result_summary(job.job_id)
        assert summary["points_found"] == 2
        assert summary["experiments"] == 2
        assert "Campaign summary" in facade.report_text(job.job_id)
        experiments = facade.experiments(job.job_id)
        assert [e.experiment_id for e in experiments] == \
            sorted(e.experiment_id for e in experiments)
        assert len(experiments) == 2

    def test_job_progress_exposed(self, tmp_path, facade_factory,
                                  toy_project, toy_model, toy_workload):
        # Shard-aware progress rides the job view identically over both
        # transports: after a completed campaign the final snapshot shows
        # every experiment done and every shard completed.
        facade = facade_factory(tmp_path / "ws")
        config = self.campaign_config(toy_project, toy_model, toy_workload)
        job = facade.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        progress = facade.job(job.job_id).progress
        assert progress is not None
        assert progress["backend"] == "thread"
        assert progress["experiments_done"] == 2
        assert progress["experiments_total"] == 2
        assert {entry["state"] for entry in progress["shards"]} == \
            {"completed"}
        [listed] = [item for item in facade.list_jobs()
                    if item.job_id == job.job_id]
        assert listed.progress == progress
        # wait() on a finished job returns the same snapshot too (the
        # natural submit-then-wait flow must not lose progress).
        assert facade.wait(job.job_id, timeout=10).progress == progress

    def test_async_submit_then_wait(self, tmp_path, facade_factory,
                                    toy_project, toy_model, toy_workload):
        facade = facade_factory(tmp_path / "ws")
        config = self.campaign_config(toy_project, toy_model, toy_workload)
        job = facade.submit_campaign(config, block=False)
        assert job.status in ("queued", "running")
        finished = facade.wait(job.job_id, timeout=120)
        assert finished.status == "completed", finished.error
        assert facade.job(job.job_id).status == "completed"

    def test_regression_tests_materialize_locally(
            self, tmp_path, facade_factory, toy_project, toy_model,
            toy_workload):
        facade = facade_factory(tmp_path / "ws")
        config = self.campaign_config(toy_project, toy_model, toy_workload)
        job = facade.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        dest = tmp_path / "regressions"
        written = facade.generate_regression_tests(job.job_id, dest)
        assert written, "the toy fault always fails round 1"
        for path in written:
            assert path.parent == dest
            text = path.read_text(encoding="utf-8")
            assert "CAMPAIGN_SEED" in text and "EXPERIMENT_ID" in text


@pytest.mark.integration
class TestPersistedConfigContract:
    """Regression: ``<job_dir>/config.json`` used to be a hand-rolled
    subset that silently dropped ``sampling``, ``image_manifest``,
    ``scan_incremental``, ``registry_url``, and the scan-cache knobs —
    audits and ``generate_regression_tests`` saw a config that never
    existed.  The full wire form must persist, plus resume provenance.
    """

    def test_config_json_is_complete_wire_form(
            self, tmp_path, toy_project, toy_model, toy_workload):
        service = ProFIPyService(tmp_path / "ws", max_workers=1)
        config = CampaignConfig(
            name="audit",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            seed=7,
            scan_incremental=False,
            sampling={"max_experiments": 2, "min_experiments": 1},
        )
        job = service.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        persisted = read_json(job.directory / "config.json")
        # Every wire-form field is present — especially the ones the
        # old subset dropped.
        for key in campaign_config_to_dict(config):
            assert key in persisted, f"config.json dropped {key!r}"
        assert persisted["scan_incremental"] is False
        assert persisted["sampling"]["max_experiments"] == 2
        assert persisted["resumed_from"] is None
        # And it round-trips into a runnable config with the same
        # campaign-defining fields.
        rebuilt = campaign_config_from_dict(persisted)
        assert rebuilt.seed == config.seed
        assert rebuilt.scan_incremental is False
        assert rebuilt.sampling.max_experiments == 2
        assert rebuilt.fault_model.to_dict() == toy_model.to_dict()
        assert rebuilt.workload.to_dict() == toy_workload.to_dict()

    def test_config_json_records_resume_provenance(
            self, tmp_path, toy_project, toy_model, toy_workload):
        service = ProFIPyService(tmp_path / "ws", max_workers=1)
        config = CampaignConfig(
            name="prov",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            seed=7,
        )
        first = service.submit_campaign(config, block=True)
        assert first.status == "completed", first.error
        resumed = service.submit_campaign(config, block=True,
                                          resume_from=first.job_id)
        assert resumed.status == "completed", resumed.error
        persisted = read_json(resumed.directory / "config.json")
        assert persisted["resumed_from"] == first.job_id


@pytest.mark.integration
class TestTransportEquivalence:
    """The same campaign through both transports is byte-identical."""

    def run_campaign(self, facade, workspace_unused, toy_project, toy_model,
                     toy_workload):
        config = CampaignConfig(
            name="equiv",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            seed=7,
        )
        job = facade.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        return (facade.result_summary(job.job_id),
                facade.experiments(job.job_id),
                facade.report_text(job.job_id))

    def test_summaries_experiments_reports_identical(
            self, tmp_path, toy_project, toy_model, toy_workload):
        inprocess = ProFIPyService(tmp_path / "ws-local", max_workers=2)
        summary_local, experiments_local, report_local = self.run_campaign(
            inprocess, None, toy_project, toy_model, toy_workload
        )
        remote_core = ProFIPyService(tmp_path / "ws-remote", max_workers=2)
        server, _thread = start_server(remote_core)
        try:
            client = ProFIPyClient(server.url)
            summary_http, experiments_http, report_http = self.run_campaign(
                client, None, toy_project, toy_model, toy_workload
            )
        finally:
            server.shutdown()
            remote_core.close()
        def normalize(report):
            # Only wall-clock figures may differ between transports.
            return re.sub(r"\d+(\.\d+)?(?= (experiments/s|s\)))", "T",
                          report)

        assert summary_local == summary_http
        assert normalize(report_local) == normalize(report_http)
        assert deterministic_view(experiments_local) == \
            deterministic_view(experiments_http)


@pytest.mark.integration
class TestCancelAndResumeContract:
    """A cancelled campaign leaves a partial stream; resume_from
    completes it byte-identically (over either transport)."""

    POINTS = 6

    @pytest.fixture
    def slow_project(self, tmp_path):
        project = tmp_path / "slow-target"
        project.mkdir()
        functions = "\n\n".join(
            textwrap.dedent(
                f"""
                def compute_{index}(x):
                    steps = []
                    steps.append('start')
                    result = x * 2
                    steps.append('done')
                    return result
                """
            ).strip()
            for index in range(self.POINTS)
        )
        (project / "app.py").write_text(functions + "\n", encoding="utf-8")
        (project / "run.py").write_text(textwrap.dedent(
            """
            import sys
            import time

            import app

            time.sleep(0.3)
            failures = []
            for index in range(%d):
                value = getattr(app, f"compute_{index}")(3)
                if value != 6:
                    failures.append(index)
            if failures:
                print("WORKLOAD FAILURE:", failures, file=sys.stderr)
                sys.exit(1)
            print("WORKLOAD SUCCESS")
            """ % self.POINTS
        ).strip() + "\n", encoding="utf-8")
        return project

    def slow_config(self, project, toy_model):
        from repro.workload.spec import WorkloadSpec

        return CampaignConfig(
            name="cancellable",
            target_dir=project,
            fault_model=toy_model,
            workload=WorkloadSpec(commands=["{python} run.py"],
                                  command_timeout=30.0),
            injectable_files=["app.py"],
            coverage=False,
            parallelism=1,
            seed=11,
        )

    def wait_for_first_record(self, facade, job_id, deadline=90.0):
        started = time.monotonic()
        while time.monotonic() - started < deadline:
            # No stream yet is an empty list over both transports.
            if facade.experiments(job_id):
                return
            time.sleep(0.1)
        raise AssertionError("no experiment recorded before the deadline")

    def test_cancel_then_resume_completes_byte_identically(
            self, tmp_path, facade_factory, toy_model, slow_project):
        facade = facade_factory(tmp_path / "ws")
        config = self.slow_config(slow_project, toy_model)

        # Reference: the same campaign, uninterrupted.
        reference_job = facade.submit_campaign(config, block=True)
        assert reference_job.status == "completed", reference_job.error
        reference = facade.experiments(reference_job.job_id)
        assert len(reference) == self.POINTS

        # Cancel mid-campaign: at least one experiment recorded, then
        # the job lands in `cancelled` with a partial stream.
        victim = facade.submit_campaign(config, block=False)
        self.wait_for_first_record(facade, victim.job_id)
        facade.cancel(victim.job_id)
        cancelled = facade.wait(victim.job_id, timeout=120)
        assert cancelled.status == "cancelled"
        partial = facade.experiments(victim.job_id)
        assert 1 <= len(partial) <= self.POINTS
        # The partial results are already byte-identical to the
        # reference prefix (determinism is per-experiment).
        by_id = {e.experiment_id: e for e in reference}
        assert deterministic_view(partial) == deterministic_view(
            [by_id[e.experiment_id] for e in partial]
        )

        # Resume: only the remainder executes; the final stream matches
        # the uninterrupted run byte-for-byte on deterministic fields.
        resumed_job = facade.submit_campaign(config, block=True,
                                             resume_from=victim.job_id)
        assert resumed_job.status == "completed", resumed_job.error
        resumed = facade.experiments(resumed_job.job_id)
        assert len(resumed) == self.POINTS
        assert deterministic_view(resumed) == deterministic_view(reference)
        summary = facade.result_summary(resumed_job.job_id)
        assert summary["resumed"] == len(partial)

    def test_cancel_queued_campaign(self, tmp_path, facade_factory,
                                    toy_model, slow_project):
        facade = facade_factory(tmp_path / "ws", max_workers=1)
        config = self.slow_config(slow_project, toy_model)
        running = facade.submit_campaign(config, block=False)
        queued = facade.submit_campaign(config, block=False)
        assert facade.job(queued.job_id).status == "queued"
        cancelled = facade.cancel(queued.job_id)
        assert cancelled.status == "cancelled"
        # The running campaign is unaffected; cancel it too for a quick
        # teardown and check it persists a partial (possibly empty) job.
        facade.cancel(running.job_id)
        final = facade.wait(running.job_id, timeout=120)
        assert final.status in ("cancelled", "completed")
