"""Unit tests for directive parameter parsing and validation."""

import pytest

from repro.dsl.errors import DslParameterError
from repro.dsl.params import UNBOUNDED, DirectiveParams, split_top_level


class TestSplitTopLevel:
    def test_simple_split(self):
        assert split_top_level("a;b;c", ";") == ["a", "b", "c"]

    def test_braces_protect_separator(self):
        assert split_top_level("a{x;y};b", ";") == ["a{x;y}", "b"]

    def test_quotes_protect_separator(self):
        assert split_top_level("a='x;y';b=1", ";") == ["a='x;y'", "b=1"]

    def test_parens_protect_separator(self):
        assert split_top_level("f(a;b)|g()", "|") == ["f(a;b)", "g()"]

    def test_empty_text(self):
        assert split_top_level("", ";") == [""]


class TestDirectiveParams:
    def test_parse_empty(self):
        assert DirectiveParams.parse("").raw == {}

    def test_parse_pairs(self):
        params = DirectiveParams.parse("name=delete_*; tag=b1")
        assert params.get("name") == "delete_*"
        assert params.get("tag") == "b1"

    def test_missing_equals_rejected(self):
        with pytest.raises(DslParameterError, match="key=value"):
            DirectiveParams.parse("justaword")

    def test_duplicate_key_rejected(self):
        with pytest.raises(DslParameterError, match="duplicate"):
            DirectiveParams.parse("a=1; a=2")

    def test_get_range_bounded(self):
        params = DirectiveParams.parse("stmts=1,4")
        assert params.get_range("stmts", (1, UNBOUNDED)) == (1, 4)

    def test_get_range_unbounded(self):
        params = DirectiveParams.parse("stmts=2,*")
        assert params.get_range("stmts", (1, UNBOUNDED)) == (2, UNBOUNDED)

    def test_get_range_single_value(self):
        params = DirectiveParams.parse("stmts=3")
        assert params.get_range("stmts", (1, UNBOUNDED)) == (3, 3)

    def test_get_range_default(self):
        params = DirectiveParams.parse("")
        assert params.get_range("stmts", (1, UNBOUNDED)) == (1, UNBOUNDED)

    def test_get_range_invalid_order(self):
        params = DirectiveParams.parse("stmts=4,1")
        with pytest.raises(DslParameterError, match="invalid"):
            params.get_range("stmts", (1, UNBOUNDED))

    def test_get_range_negative(self):
        params = DirectiveParams.parse("stmts=-1,2")
        with pytest.raises(DslParameterError):
            params.get_range("stmts", (1, UNBOUNDED))

    def test_get_range_garbage(self):
        params = DirectiveParams.parse("stmts=a,b")
        with pytest.raises(DslParameterError, match="integers"):
            params.get_range("stmts", (1, UNBOUNDED))

    def test_get_float(self):
        params = DirectiveParams.parse("seconds=2.5")
        assert params.get_float("seconds", 1.0) == 2.5

    def test_get_float_bad(self):
        params = DirectiveParams.parse("seconds=soon")
        with pytest.raises(DslParameterError, match="number"):
            params.get_float("seconds", 1.0)

    def test_get_int(self):
        params = DirectiveParams.parse("threads=4")
        assert params.get_int("threads", 1) == 4

    def test_get_choices(self):
        params = DirectiveParams.parse("choices=A()|B(1, 2)|C")
        assert params.get_choices("choices") == ["A()", "B(1, 2)", "C"]

    def test_get_choices_missing(self):
        with pytest.raises(DslParameterError, match="missing required"):
            DirectiveParams.parse("").get_choices("choices")

    def test_require_known_rejects_unknown(self):
        params = DirectiveParams.parse("nam=x")
        with pytest.raises(DslParameterError, match="unknown parameter"):
            params.require_known({"name"}, "CALL")
