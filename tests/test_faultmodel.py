"""Unit tests for fault models: persistence, predefined library, expansion."""

import textwrap

import pytest

from repro.dsl.parser import parse_spec
from repro.faultmodel import (
    FaultModel,
    expand_api_faults,
    extended_model,
    get_model,
    gswfit_model,
    predefined_models,
)
from repro.faultmodel.odc import ALL_CLASSES, group_by_class, validate
from repro.scanner import scan_source


def simple_spec(name="NOP"):
    return parse_spec("change { foo() } into { pass }", name=name)


class TestFaultModel:
    def test_add_and_get(self):
        model = FaultModel(name="m")
        model.add(simple_spec(), description="d", odc_class="Function")
        assert model.get("NOP").description == "d"
        assert model.names() == ["NOP"]

    def test_duplicate_name_rejected(self):
        model = FaultModel(name="m")
        model.add(simple_spec())
        with pytest.raises(ValueError, match="already contains"):
            model.add(simple_spec())

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            FaultModel(name="m").get("nope")

    def test_enabled_filtering(self):
        model = FaultModel(name="m")
        model.add(simple_spec("A"))
        model.add(simple_spec("B"))
        model.get("A").enabled = False
        assert [s.name for s in model.enabled_specs()] == ["B"]

    def test_compile(self):
        model = FaultModel(name="m")
        model.add(simple_spec())
        compiled = model.compile()
        assert len(compiled) == 1
        assert compiled[0].name == "NOP"

    def test_json_round_trip(self, tmp_path):
        model = FaultModel(name="m", description="demo")
        model.add(simple_spec(), description="d", category="c",
                  odc_class="Function")
        path = tmp_path / "model.json"
        model.save(path)
        loaded = FaultModel.load(path)
        assert loaded.name == "m"
        assert loaded.get("NOP").odc_class == "Function"
        assert loaded.get("NOP").spec.pattern == model.get("NOP").spec.pattern

    def test_future_format_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            FaultModel.from_dict(
                {"format_version": 99, "name": "m", "faults": []}
            )


class TestPredefinedModels:
    def test_gswfit_has_13_operators(self):
        assert len(gswfit_model().faults) == 13

    def test_all_predefined_specs_compile(self):
        for model in predefined_models().values():
            compiled = model.compile()
            assert len(compiled) == len(model.faults)

    def test_get_model_unknown(self):
        with pytest.raises(KeyError, match="unknown fault model"):
            get_model("nope")

    def test_every_fault_has_description_and_odc(self):
        for model in predefined_models().values():
            for fault in model.faults:
                assert fault.description
                assert fault.odc_class in ALL_CLASSES

    def test_mfc_matches_classic_shape(self):
        model = gswfit_model()
        [mfc] = [m for m in model.compile() if m.name == "MFC"]
        source = textwrap.dedent(
            """
            def f():
                a()
                b()
                c()
            """
        )
        points = scan_source(source, [mfc])
        assert len(points) == 1  # only b() has statements on both sides

    def test_wlec_negates_condition(self):
        model = extended_model()
        [wlec] = [m for m in model.compile() if m.name == "WLEC"]
        from repro.mutator import Mutator

        mutation = Mutator(trigger=False).mutate_source(
            "if ready:\n    go()\n", wlec, 0
        )
        assert "if not ready:" in mutation.source

    def test_gswfit_round_trips_through_json(self, tmp_path):
        model = gswfit_model()
        path = tmp_path / "gswfit.json"
        model.save(path)
        loaded = FaultModel.load(path)
        assert loaded.names() == model.names()
        # Loaded specs still compile.
        assert len(loaded.compile()) == 13


class TestOdc:
    def test_validate_ok(self):
        assert validate("Checking") == "Checking"
        assert validate("") == ""

    def test_validate_bad(self):
        with pytest.raises(ValueError, match="unknown ODC"):
            validate("Bogus")

    def test_group_by_class(self):
        grouped = group_by_class(gswfit_model())
        assert "Assignment" in grouped
        assert sum(len(v) for v in grouped.values()) == 13


class TestExpandApiFaults:
    def test_cross_product(self):
        model = expand_api_faults(["os.*", "urllib.*"], kinds=["THROW", "MFC"])
        assert len(model.faults) == 4

    def test_names_are_unique_and_safe(self):
        model = expand_api_faults(["utils.execute", "delete_*"])
        names = model.names()
        assert len(set(names)) == len(names)
        assert all(" " not in n and "*" not in n for n in names)

    def test_generated_specs_compile(self):
        model = expand_api_faults(["os.*"], kinds=None)
        assert len(model.compile()) == len(model.faults)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown API fault template"):
            expand_api_faults(["os.*"], kinds=["BOGUS"])

    def test_throw_template_matches_nested_call(self):
        model = expand_api_faults(["urlopen"], kinds=["THROW"])
        [compiled] = model.compile()
        points = scan_source("resp = urllib.request.urlopen(url)\n", [compiled])
        assert len(points) == 1
