"""Tests for the regression-test generator (paper §I motivation)."""

import ast
import subprocess
import sys

import pytest

from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.regression import generate_regression_test, write_regression_test
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file


@pytest.fixture
def failed_experiment(toy_project, toy_model, toy_workload, tmp_path):
    image = SandboxImage.build(toy_project, tmp_path / "image")
    models = {model.name: model for model in toy_model.compile()}
    scan = scan_file(toy_project / "app.py", list(models.values()),
                     root=toy_project)
    plan = Plan.from_points(scan.points)
    executor = ExperimentExecutor(
        image=image, workload=toy_workload, models=models,
        base_dir=tmp_path / "boxes", trigger=True,
    )
    result = executor.run(plan.experiments[0])
    assert result.failed_round1
    return result


class TestGeneration:
    def test_generated_test_is_valid_python(self, failed_experiment,
                                            toy_model, toy_project,
                                            toy_workload):
        text = generate_regression_test(failed_experiment, toy_model,
                                        toy_project, toy_workload)
        ast.parse(text)
        assert "test_system_tolerates_wrr_app_0" in text
        assert "WRR" in text

    def test_embeds_fault_and_workload(self, failed_experiment, toy_model,
                                       toy_project, toy_workload):
        text = generate_regression_test(failed_experiment, toy_model,
                                        toy_project, toy_workload)
        assert "change {" in text        # the DSL spec rides along
        assert "run.py" in text          # the workload too

    def test_rejects_pointless_experiments(self, toy_model, toy_project,
                                           toy_workload):
        from repro.orchestrator.experiment import ExperimentResult

        empty = ExperimentResult(experiment_id="x", point={})
        with pytest.raises(ValueError, match="no injection point"):
            generate_regression_test(empty, toy_model, toy_project,
                                     toy_workload)

    def test_write_to_directory(self, failed_experiment, toy_model,
                                toy_project, toy_workload, tmp_path):
        path = write_regression_test(failed_experiment, toy_model,
                                     toy_project, toy_workload,
                                     tmp_path / "regression")
        assert path.exists()
        assert path.name.startswith("test_regression_")


@pytest.mark.integration
class TestGeneratedTestRuns:
    def test_generated_test_fails_until_fixed(self, failed_experiment,
                                              toy_model, toy_project,
                                              toy_workload, tmp_path):
        # The toy target is NOT hardened, so the regression test must fail
        # (that is its purpose), with the workload failure in the message.
        path = write_regression_test(failed_experiment, toy_model,
                                     toy_project, toy_workload,
                                     tmp_path / "regression")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(path), "-q",
             "-p", "no:cacheprovider"],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 1
        assert "still causes a service failure" in proc.stdout
