"""Tests for classification, metrics, and reports."""

import pytest

from repro.analysis import (
    ClassificationRule,
    ComponentSpec,
    Distribution,
    classify_experiment,
)
from repro.analysis.classify import (
    HARNESS_ERROR,
    NO_FAILURE,
    SERVICE_CRASH,
    TIMEOUT,
    WORKLOAD_CRASH,
    WORKLOAD_FAILURE,
)
from repro.analysis.metrics import (
    failure_logging,
    failure_propagation,
    service_availability,
)
from repro.analysis.report import format_table, percent
from repro.common.procutil import CommandResult
from repro.orchestrator.experiment import ExperimentResult
from repro.workload.runner import RoundResult


def command(rc=0, stdout="", stderr="", timed_out=False):
    return CommandResult(command="cmd", returncode=rc, stdout=stdout,
                         stderr=stderr, duration=0.1, timed_out=timed_out)


def experiment(
    experiment_id="exp-1",
    spec="MFC",
    component="pkg",
    round1=None,
    round2=None,
    status="completed",
    logs=None,
):
    result = ExperimentResult(
        experiment_id=experiment_id,
        point={"component": component},
        spec_name=spec,
        status=status,
        logs=logs or {},
    )
    if round1 is not None:
        result.rounds.append(round1)
    if round2 is not None:
        result.rounds.append(round2)
    return result


def ok_round(no=1):
    return RoundResult(round_no=no, fault_enabled=no == 1,
                       commands=[command(0, stdout="fine")])


def failed_round(no=1, rc=1, stderr="WORKLOAD FAILURE: x", timed_out=False,
                 services_alive=True):
    return RoundResult(
        round_no=no, fault_enabled=no == 1,
        commands=[command(rc, stderr=stderr, timed_out=timed_out)],
        services_alive=services_alive,
    )


class TestClassification:
    def test_no_failure(self):
        result = experiment(round1=ok_round(1), round2=ok_round(2))
        assert classify_experiment(result).mode == NO_FAILURE

    def test_workload_failure(self):
        result = experiment(round1=failed_round())
        assert classify_experiment(result).mode == WORKLOAD_FAILURE

    def test_workload_crash_on_rc2(self):
        result = experiment(round1=failed_round(rc=2))
        assert classify_experiment(result).mode == WORKLOAD_CRASH

    def test_timeout_beats_generic_failure(self):
        result = experiment(round1=failed_round(timed_out=True))
        assert classify_experiment(result).mode == TIMEOUT

    def test_service_crash(self):
        result = experiment(
            round1=failed_round(rc=0, stderr="", services_alive=False)
        )
        assert classify_experiment(result).mode == SERVICE_CRASH

    def test_harness_error(self):
        result = experiment(status="harness_error")
        assert classify_experiment(result).mode == HARNESS_ERROR

    def test_user_rules_take_precedence(self):
        rules = [ClassificationRule(mode="key_not_found",
                                    pattern=r"EtcdKeyNotFound")]
        result = experiment(
            round1=failed_round(stderr="EtcdKeyNotFound: /x missing")
        )
        assert classify_experiment(result, rules).mode == "key_not_found"

    def test_rule_order_matters(self):
        rules = [
            ClassificationRule(mode="first", pattern="boom"),
            ClassificationRule(mode="second", pattern="boom"),
        ]
        result = experiment(round1=failed_round(stderr="boom"))
        assert classify_experiment(result, rules).mode == "first"

    def test_rule_scope_logs(self):
        rules = [ClassificationRule(mode="server_error", pattern="panic",
                                    scope="logs")]
        result = experiment(round1=failed_round(stderr="nothing here"),
                            logs={"server.log": "panic: lost state"})
        assert classify_experiment(result, rules).mode == "server_error"

    def test_rule_scope_output_ignores_logs(self):
        rules = [ClassificationRule(mode="m", pattern="panic",
                                    scope="output")]
        result = experiment(round1=failed_round(stderr="ok-ish"),
                            logs={"server.log": "panic"})
        assert classify_experiment(result, rules).mode == WORKLOAD_FAILURE


class TestDistribution:
    def build(self):
        results = [
            experiment("e1", spec="MFC", round1=failed_round()),
            experiment("e2", spec="MFC", round1=ok_round()),
            experiment("e3", spec="WPF", component="other",
                       round1=failed_round(timed_out=True)),
        ]
        return Distribution.build(results)

    def test_counts(self):
        counts = self.build().counts()
        assert counts[WORKLOAD_FAILURE] == 1
        assert counts[TIMEOUT] == 1
        assert counts[NO_FAILURE] == 1

    def test_counts_failures_only(self):
        counts = self.build().counts(include_no_failure=False)
        assert NO_FAILURE not in counts

    def test_by_spec(self):
        table = self.build().by_spec()
        assert table["MFC"][WORKLOAD_FAILURE] == 1
        assert table["WPF"][TIMEOUT] == 1

    def test_by_component(self):
        table = self.build().by_component()
        assert table["other"][TIMEOUT] == 1

    def test_experiments_in_mode(self):
        assert self.build().experiments_in_mode(TIMEOUT) == ["e3"]

    def test_failure_count(self):
        assert self.build().failure_count() == 2


class TestAvailability:
    def test_all_available(self):
        results = [experiment(round1=failed_round(1), round2=ok_round(2))]
        report = service_availability(results)
        assert report.availability == 1.0

    def test_unavailable_round2(self):
        results = [
            experiment("bad", round1=failed_round(1), round2=failed_round(2)),
            experiment("good", round1=failed_round(1), round2=ok_round(2)),
        ]
        report = service_availability(results)
        assert report.total == 2
        assert report.available == 1
        assert report.unavailable_ids == ["bad"]
        assert report.unavailability == pytest.approx(0.5)

    def test_incomplete_experiments_skipped(self):
        results = [experiment(status="harness_error")]
        assert service_availability(results).total == 0

    def test_empty_campaign_reports_no_evidence_not_100_percent(self):
        # Regression: an empty denominator used to read as 1.0 (100%
        # availability with zero experiments).  No evidence is None.
        report = service_availability([])
        assert report.availability is None
        assert report.unavailability is None


class TestFailureLogging:
    def test_logged_failure(self):
        results = [experiment(round1=failed_round(stderr="ERROR: boom"))]
        report = failure_logging(results)
        assert report.failures == 1
        assert report.logged == 1

    def test_silent_failure(self):
        results = [experiment(round1=failed_round(rc=1, stderr="quiet"))]
        report = failure_logging(results)
        assert report.logged == 0
        assert report.silent_ids == ["exp-1"]

    def test_logs_count_toward_logging(self):
        results = [experiment(round1=failed_round(rc=1, stderr="quiet"),
                              logs={"svc.log": "ERROR state lost"})]
        assert failure_logging(results).logged == 1

    def test_non_failures_ignored(self):
        results = [experiment(round1=ok_round())]
        assert failure_logging(results).failures == 0

    def test_no_failures_means_no_ratio(self):
        assert failure_logging([]).logging_ratio is None


class TestPropagation:
    COMPONENTS = [
        ComponentSpec(name="client", log_globs=("<output>",),
                      error_pattern="WORKLOAD FAILURE"),
        ComponentSpec(name="server", log_globs=("server*.log",),
                      error_pattern="ERROR"),
    ]

    def test_propagated_failure(self):
        results = [experiment(
            round1=failed_round(stderr="WORKLOAD FAILURE: x"),
            logs={"server-1.log": "ERROR lost quorum"},
        )]
        report = failure_propagation(results, self.COMPONENTS)
        assert report.propagated == 1
        assert report.propagation_ratio == 1.0

    def test_single_component_failure(self):
        results = [experiment(
            round1=failed_round(stderr="WORKLOAD FAILURE: x"),
            logs={"server-1.log": "all good"},
        )]
        report = failure_propagation(results, self.COMPONENTS)
        assert report.propagated == 0
        assert report.analyzed == 1

    def test_only_failures_analyzed(self):
        results = [experiment(round1=ok_round())]
        assert failure_propagation(results, self.COMPONENTS).analyzed == 0

    def test_nothing_analyzed_means_no_ratio(self):
        assert failure_propagation([], self.COMPONENTS).propagation_ratio \
            is None


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert all(len(line) >= 7 for line in lines)

    def test_percent(self):
        assert percent(1, 2) == "50%"
        assert percent(0, 0) == "n/a"
