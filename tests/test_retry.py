"""Unit tests for the unified retry policy (``repro.common.retry``)
and its adoption in the service client (GET-only transport retries)."""

import pytest

from repro.common.retry import RetryPolicy, retry_call


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class FixedRng:
    """rng.random() pinned to 0.5 → jitter factor exactly 1.0."""

    def random(self):
        return 0.5


def call_counting(failures, exc=ConnectionError):
    """A call that raises ``exc`` for the first ``failures`` attempts."""
    calls = []

    def call(attempt_timeout):
        calls.append(attempt_timeout)
        if len(calls) <= failures:
            raise exc(f"boom {len(calls)}")
        return f"ok after {len(calls)}"

    return call, calls


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, multiplier=2.0,
                             max_delay=0.35, jitter=0.0)
        delays = [policy.backoff(attempt, FixedRng())
                  for attempt in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.35, 0.35]

    def test_jitter_stays_within_bounds(self):
        policy = RetryPolicy(attempts=3, base_delay=1.0, jitter=0.25)

        class Lo:
            def random(self):
                return 0.0

        class Hi:
            def random(self):
                return 1.0

        assert policy.backoff(1, Lo()) == pytest.approx(0.75)
        assert policy.backoff(1, Hi()) == pytest.approx(1.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestRetryCall:
    def test_retries_until_success(self):
        clock = FakeClock()
        call, calls = call_counting(failures=2)
        result = retry_call(call,
                            policy=RetryPolicy(attempts=3, base_delay=0.1,
                                               jitter=0.0),
                            clock=clock, sleep=clock.sleep, rng=FixedRng())
        assert result == "ok after 3"
        assert len(calls) == 3
        assert clock.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_exhausted_attempts_reraise_last_error(self):
        clock = FakeClock()
        call, calls = call_counting(failures=99)
        with pytest.raises(ConnectionError, match="boom 3"):
            retry_call(call,
                       policy=RetryPolicy(attempts=3, base_delay=0.0),
                       clock=clock, sleep=clock.sleep)
        assert len(calls) == 3

    def test_non_retryable_error_propagates_immediately(self):
        clock = FakeClock()
        call, calls = call_counting(failures=99, exc=ValueError)
        with pytest.raises(ValueError):
            retry_call(call,
                       policy=RetryPolicy(attempts=5, base_delay=0.0),
                       retry_on=(ConnectionError,),
                       clock=clock, sleep=clock.sleep)
        assert len(calls) == 1

    def test_deadline_stops_retries_early(self):
        clock = FakeClock()
        call, calls = call_counting(failures=99)
        with pytest.raises(ConnectionError):
            retry_call(call,
                       policy=RetryPolicy(attempts=10, base_delay=1.0,
                                          multiplier=1.0, jitter=0.0,
                                          deadline=2.5),
                       clock=clock, sleep=clock.sleep, rng=FixedRng())
        # t=0 try, sleep 1, t=1 try, sleep 1, t=2 try, remaining 0.5
        # cannot fit another full backoff tick → give up.
        assert len(calls) == 3

    def test_attempt_timeout_clipped_to_deadline(self):
        clock = FakeClock()
        seen = []

        def call(attempt_timeout):
            seen.append(attempt_timeout)
            clock.now += 4.0  # each attempt burns 4s of wall clock
            raise ConnectionError("slow")

        with pytest.raises(ConnectionError):
            retry_call(call,
                       policy=RetryPolicy(attempts=5, base_delay=0.0,
                                          deadline=6.0,
                                          attempt_timeout=5.0),
                       clock=clock, sleep=clock.sleep, rng=FixedRng())
        # First attempt gets the full 5s; the second only the 2s left.
        assert seen[0] == pytest.approx(5.0)
        assert seen[1] == pytest.approx(2.0)
        assert len(seen) == 2

    def test_no_deadline_no_attempt_timeout_passes_none(self):
        def call(attempt_timeout):
            assert attempt_timeout is None
            return "ok"

        assert retry_call(call, policy=RetryPolicy(attempts=1)) == "ok"


class TestClientTransportRetry:
    """The service client retries idempotent GETs only — a resubmitted
    POST /v1/shards could double-execute a shard on the worker."""

    def _client(self, fail_with):
        from repro.common.retry import RetryPolicy
        from repro.service.client import ProFIPyClient

        client = ProFIPyClient(
            "http://unreachable.invalid:1",
            retry_policy=RetryPolicy(attempts=3, base_delay=0.0),
        )
        calls = []

        def fake_send(method, path, body, headers, timeout):
            calls.append((method, path))
            raise fail_with

        client._send = fake_send
        return client, calls

    def test_get_retries_on_transport_error(self):
        from repro.service.client import TransportError

        client, calls = self._client(TransportError("refused"))
        with pytest.raises(TransportError):
            client.list_workers()
        assert len(calls) == 3
        assert all(method == "GET" for method, _path in calls)

    def test_post_never_retries(self):
        from repro.service.client import TransportError

        client, calls = self._client(TransportError("reset mid-write"))
        with pytest.raises(TransportError):
            client.submit_shard({"shard": 0})
        assert len(calls) == 1
        assert calls[0][0] == "POST"

    def test_http_level_errors_do_not_retry(self):
        client, calls = self._client(KeyError("unknown shard"))
        with pytest.raises(KeyError):
            client.shard_status("shard-0001")
        assert len(calls) == 1

    def test_transport_error_is_a_connection_error(self):
        from repro.service.client import TransportError

        # The remote backend's failover net catches OSError; transport
        # failures must fall inside it.
        assert issubclass(TransportError, ConnectionError)
        assert issubclass(TransportError, OSError)

    def test_retry_policy_none_disables_get_retries(self):
        from repro.service.client import ProFIPyClient, TransportError

        client = ProFIPyClient("http://unreachable.invalid:1",
                               retry_policy=None)
        calls = []

        def fake_send(method, path, body, headers, timeout):
            calls.append(method)
            raise TransportError("refused")

        client._send = fake_send
        with pytest.raises(TransportError):
            client.list_shards()
        assert calls == ["GET"]
