"""Pipelined sharded execution: backends, merging, recovery, progress.

The tentpole invariants under test:

* pipelined per-``(file, spec)`` mutant generation is byte-identical to
  the whole-plan batch (and therefore to inline generation) while
  reading each file once and holding one group at a time;
* the same campaign seed yields identical per-experiment ``point``,
  ``mutated_snippet``, and ``seed`` across ``ThreadBackend`` vs
  ``ProcessBackend`` and shard counts {1, 4};
* a campaign killed mid-run under one backend/shard count resumes under
  another, and the merged canonical stream records exactly the same
  experiments as an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.orchestrator.backends import (
    ShardProgress,
    create_backend,
    discard_shard_streams,
    leftover_shard_streams,
    recover_shard_streams,
    shard_stream_path,
)
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.orchestrator.stream import ExperimentStream
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


# -- pipelined generation ----------------------------------------------------------


class TestPipelinedGeneration:
    def build_executor(self, toy_project, toy_model, tmp_path):
        models = {m.name: m for m in toy_model.compile()}
        scan = scan_file(toy_project / "app.py", toy_model.compile(),
                         root=toy_project)
        plan = Plan.from_points(scan.points)
        image = SandboxImage.build(toy_project, tmp_path / "image")
        executor = ExperimentExecutor(
            image=image, workload=None, models=models,
            base_dir=tmp_path / "boxes", campaign_seed=0,
        )
        return executor, plan

    def test_pipelined_equals_batched(self, toy_project, toy_model,
                                      tmp_path):
        executor, plan = self.build_executor(toy_project, toy_model,
                                             tmp_path)
        batched = executor.prepare_mutations(plan)
        pipelined = {
            planned.experiment_id: mutation
            for planned, mutation in executor.iter_mutations(plan)
        }
        assert sorted(pipelined) == sorted(batched)
        for key, mutation in batched.items():
            assert pipelined[key].source == mutation.source
            assert pipelined[key].mutated_snippet == mutation.mutated_snippet
            assert pipelined[key].original_snippet == \
                mutation.original_snippet

    def test_generation_is_lazy_per_group(self, toy_project, toy_model,
                                          tmp_path):
        # Two injectable files -> two (file, spec) groups.  Consuming
        # only the first group's experiments must read only one file:
        # generation is pipelined, not batched up front.
        (toy_project / "extra.py").write_text(textwrap.dedent(
            """
            def helper(x):
                steps = []
                steps.append('go')
                return x + 41
            """
        ).strip() + "\n")
        executor, _plan = self.build_executor(toy_project, toy_model,
                                              tmp_path)
        points = []
        for name in ("app.py", "extra.py"):
            points.extend(scan_file(
                toy_project / name, toy_model.compile(), root=toy_project
            ).points)
        plan = Plan.from_points(points)
        assert len({p.file for p in plan.points}) == 2

        reads = []
        original_read = executor.image.read_file
        executor.image.read_file = lambda rel: (
            reads.append(rel) or original_read(rel)
        )
        iterator = executor.iter_mutations(plan)
        first_planned, first_mutation = next(iterator)
        assert first_mutation is not None
        assert reads == [first_planned.point.file]
        for _planned, _mutation in iterator:
            pass
        assert sorted(set(reads)) == ["app.py", "extra.py"]
        assert len(reads) == 2  # each file read exactly once

    def test_unreadable_file_yields_none(self, toy_project, toy_model,
                                         tmp_path):
        from repro.orchestrator.plan import PlannedExperiment
        from repro.scanner.points import InjectionPoint

        executor, plan = self.build_executor(toy_project, toy_model,
                                             tmp_path)
        bogus = PlannedExperiment(
            experiment_id="bad-file",
            point=InjectionPoint(spec_name="WRR", file="missing.py",
                                 ordinal=0, lineno=1, end_lineno=1,
                                 snippet="", component="missing"),
        )
        produced = dict(
            (planned.experiment_id, mutation)
            for planned, mutation in
            executor.iter_mutations(list(plan) + [bogus])
        )
        assert produced["bad-file"] is None
        assert all(produced[planned.experiment_id] is not None
                   for planned in plan)


# -- shard stream bookkeeping ------------------------------------------------------


def _result_entry(experiment_id, status="completed"):
    return {"experiment_id": experiment_id, "status": status,
            "point": {}, "spec_name": "WRR", "seed": 1}


class TestShardStreamRecovery:
    def test_recover_merges_and_deletes(self, tmp_path):
        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        canonical.write_meta({"campaign": "x"})
        canonical.append_entry(_result_entry("exp-0001"))
        for shard, ids in ((0, ["exp-0004", "exp-0002"]),
                           (3, ["exp-0003"])):
            shard_stream = ExperimentStream(
                shard_stream_path(canonical.path, shard)
            )
            for experiment_id in ids:
                shard_stream.append_entry(_result_entry(experiment_id))
        assert len(leftover_shard_streams(canonical.path)) == 2

        merged = recover_shard_streams(canonical)
        assert merged == 3
        assert leftover_shard_streams(canonical.path) == []
        assert canonical.recorded_ids() == {
            "exp-0001", "exp-0002", "exp-0003", "exp-0004"
        }

    def test_recover_ignores_unrelated_siblings(self, tmp_path):
        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        canonical.append_entry(_result_entry("exp-0001"))
        (tmp_path / "experiments-old.jsonl").write_text("{}\n")
        assert leftover_shard_streams(canonical.path) == []
        assert recover_shard_streams(canonical) == 0
        assert (tmp_path / "experiments-old.jsonl").exists()

    def test_merge_empty_shard_stream(self, tmp_path):
        # A shard that died before recording anything leaves a zero-byte
        # stream: merging records nothing and still cleans the file up.
        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        empty = shard_stream_path(canonical.path, 1)
        empty.write_bytes(b"")
        assert leftover_shard_streams(canonical.path) == [empty]
        from repro.orchestrator.backends import merge_shard_stream

        assert merge_shard_stream(canonical, empty) == []
        assert not empty.exists()
        assert not canonical.path.exists()  # nothing was appended

    def test_merge_missing_shard_stream(self, tmp_path):
        # Merging a path that never existed is a no-op, not an error
        # (the process backend merges every *payload* index, whether or
        # not its worker got far enough to create a stream).
        from repro.orchestrator.backends import merge_shard_stream

        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        missing = shard_stream_path(canonical.path, 5)
        assert merge_shard_stream(canonical, missing) == []

    def test_duplicate_ids_across_shards_last_record_wins(self, tmp_path):
        # The same experiment id recorded by two shards (a failover
        # re-ran it): the higher shard merges later, so its record wins
        # in the canonical read — same last-record-wins rule as resume
        # retries within one stream.
        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        for shard, status in ((0, "harness_error"), (2, "completed")):
            shard_stream = ExperimentStream(
                shard_stream_path(canonical.path, shard)
            )
            shard_stream.append_entry(_result_entry("exp-0001",
                                                    status=status))
        assert recover_shard_streams(canonical) == 2  # one id, twice
        entries = canonical._latest_entries()
        assert set(entries) == {"exp-0001"}
        assert entries["exp-0001"]["status"] == "completed"

    def test_meta_line_only_stream_merges_nothing(self, tmp_path):
        # A shard stream holding only a meta line (nothing recorded yet)
        # contributes no entries — and the meta line is *not* promoted
        # into the canonical stream.
        canonical = ExperimentStream(tmp_path / "experiments.jsonl")
        shard_stream = ExperimentStream(
            shard_stream_path(canonical.path, 3)
        )
        shard_stream.write_meta({"campaign": "x"})
        assert recover_shard_streams(canonical) == 0
        assert not shard_stream.path.exists()
        assert canonical.read_meta() is None

    def test_discard_removes_leftovers(self, tmp_path):
        canonical = tmp_path / "experiments.jsonl"
        shard = shard_stream_path(canonical, 2)
        shard.write_text("{}\n")
        discard_shard_streams(canonical)
        assert not shard.exists()

    def test_canonical_bytes_order_independent(self, tmp_path):
        one = ExperimentStream(tmp_path / "a.jsonl")
        two = ExperimentStream(tmp_path / "b.jsonl")
        one.write_meta({"campaign": "x"})
        one.append_entry(_result_entry("exp-0002"))
        one.append_entry(_result_entry("exp-0001"))
        two.append_entry(_result_entry("exp-0001"))
        two.append_entry(_result_entry("exp-0002"))
        assert one.canonical_bytes() == two.canonical_bytes()
        assert b"meta" not in one.canonical_bytes()


class TestShardProgress:
    def test_snapshot_shape_and_counts(self):
        snapshots = []
        progress = ShardProgress("thread", [2, 0, 1],
                                 sink=snapshots.append)
        progress.start(0)
        progress.record(0)
        progress.record(0)
        progress.start(2)
        progress.record(2)
        final = progress.snapshot()
        assert final["backend"] == "thread"
        assert final["experiments_done"] == 3
        assert final["experiments_total"] == 3
        states = {entry["shard"]: entry["state"]
                  for entry in final["shards"]}
        assert states == {0: "completed", 1: "completed", 2: "completed"}
        assert snapshots  # every transition emitted

    def test_incomplete_shard_not_marked_completed(self):
        progress = ShardProgress("process", [3])
        progress.start(0)
        progress.record(0)
        progress.finish(0)  # stopped early (cancel / dead worker)
        assert progress.snapshot()["shards"][0]["state"] == "stopped"
        progress = ShardProgress("process", [1])
        progress.record(0)
        progress.finish(0, state="failed")
        # failure wins even when counts look complete
        assert progress.snapshot()["shards"][0]["state"] == "failed"

    def test_set_done_defers_emit_to_tick(self):
        snapshots = []
        progress = ShardProgress("process", [4], sink=snapshots.append)
        progress.set_done(0, 2)  # poll-loop pinning: no emit
        assert snapshots == []
        progress.emit()
        assert snapshots[-1]["experiments_done"] == 2
        emitted = len(snapshots)
        progress.emit()  # unchanged snapshot: no duplicate write
        assert len(snapshots) == emitted

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("quantum")

    def test_remote_backend_registered(self):
        from repro.orchestrator.backends import RemoteBackend

        assert isinstance(create_backend("remote"), RemoteBackend)

    def test_remote_config_requires_workers(self, toy_project, toy_model,
                                            toy_workload):
        with pytest.raises(ValueError, match="worker URL"):
            CampaignConfig(
                name="x", target_dir=toy_project, fault_model=toy_model,
                workload=toy_workload, backend="remote",
            )

    def test_shard_parallelism_distributes_remainder(self):
        from repro.orchestrator.backends import _shard_parallelism

        # A pinned total is fully used (remainder spread), floored at
        # one per worker when shards outnumber the pin.
        assert _shard_parallelism(4, 3) == [2, 1, 1]
        assert _shard_parallelism(8, 3) == [3, 3, 2]
        assert _shard_parallelism(2, 4) == [1, 1, 1, 1]
        assert _shard_parallelism(None, 3) == [None, None, None]
        # A fully-resumed campaign has no active shards to pin
        # (regression: pinned parallelism divided by zero).
        assert _shard_parallelism(2, 0) == []
        assert _shard_parallelism(None, 0) == []


class TestSinkFailureSurfaced:
    def test_failed_appends_raise_after_drain(self, toy_project, toy_model,
                                              tmp_path):
        # A dead result sink must not be silent: the pool drains (no
        # mid-flight kill), but the backend raises afterwards because
        # those experiments were never recorded anywhere.
        from repro.orchestrator.backends import ExecutionContext

        executor, plan = TestPipelinedGeneration().build_executor(
            toy_project, toy_model, tmp_path
        )

        class BrokenStream(ExperimentStream):
            def append(self, result):
                raise OSError("disk full")

        stream = BrokenStream(tmp_path / "broken.jsonl")
        context = ExecutionContext(executor=executor,
                                   fault_model=toy_model,
                                   shards=1, parallelism=2)
        with pytest.raises(RuntimeError, match="could not be appended"):
            create_backend("thread").execute(context, list(plan), stream)


# -- cross-backend determinism -----------------------------------------------------


def _campaign_projection(result):
    """The determinism-relevant projection of a campaign's stream."""
    rows = [
        {"id": e.experiment_id, "seed": e.seed, "point": e.point,
         "status": e.status, "mutated": e.mutated_snippet,
         "original": e.original_snippet}
        for e in result.experiments
    ]
    return json.dumps(rows, sort_keys=True).encode("utf-8")


def _stream_projection(path):
    """Canonical stream bytes minus the volatile timing/log fields (two
    *different runs* of the same campaign agree on exactly this)."""
    entries = []
    for _id, entry in sorted(ExperimentStream(path)._latest_entries().items()):
        entry = {key: value for key, value in entry.items()
                 if key not in ("duration", "logs", "rounds")}
        entries.append(entry)
    return ("\n".join(json.dumps(entry, sort_keys=True)
                      for entry in entries) + "\n").encode("utf-8")


def _run_campaign(toy_project, toy_model, toy_workload, workspace,
                  backend, shards, parallelism=2, workers=None,
                  sampling=None):
    config = CampaignConfig(
        name="sharded",
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=False,
        parallelism=parallelism,
        backend=backend,
        shards=shards,
        workers=workers,
        seed=7,
        workspace=workspace,
        sampling=sampling,
    )
    return Campaign(config).run()


@pytest.fixture
def worker_urls(tmp_path):
    """Two live worker servers for the remote backend (real HTTP)."""
    from repro.service.http import start_server
    from repro.service.service import ProFIPyService

    servers = []
    for index in range(2):
        service = ProFIPyService(tmp_path / f"worker-{index}")
        server, _thread = start_server(service)
        servers.append((server, service))
    yield [server.url for server, _service in servers]
    for server, service in servers:
        server.shutdown()
        service.close()


@pytest.mark.integration
class TestBackendDeterminism:
    def test_backends_and_shard_counts_byte_identical(
            self, toy_project, toy_model, toy_workload, tmp_path,
            worker_urls):
        projections = {}
        for backend, shards in (("thread", 1), ("thread", 4),
                                ("process", 1), ("process", 4),
                                ("remote", 1), ("remote", 4)):
            result = _run_campaign(
                toy_project, toy_model, toy_workload,
                tmp_path / f"ws-{backend}-{shards}", backend, shards,
                workers=(worker_urls if backend == "remote" else None),
            )
            assert result.executed == 2
            projections[(backend, shards)] = _campaign_projection(result)
            # No shard stream droppings left behind.
            assert leftover_shard_streams(
                result.experiments_path) == []
        reference = projections[("thread", 1)]
        for key, projection in projections.items():
            assert projection == reference, f"{key} diverged"

    def test_thread_backend_progress_snapshots(self, toy_project,
                                               toy_model, toy_workload,
                                               tmp_path):
        snapshots = []
        config = CampaignConfig(
            name="progress",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=2,
            backend="thread",
            shards=2,
            seed=7,
            workspace=tmp_path / "ws",
        )
        result = Campaign(config).run(on_progress=snapshots.append)
        assert result.executed == 2
        final = snapshots[-1]
        assert final["backend"] == "thread"
        assert final["experiments_done"] == 2
        assert final["experiments_total"] == 2
        assert final["resumed"] == 0
        assert len(final["shards"]) == 2
        assert all(entry["state"] == "completed"
                   for entry in final["shards"])
        done_counts = [s["experiments_done"] for s in snapshots]
        assert done_counts == sorted(done_counts)  # monotone feed


# -- resume across shard boundaries ------------------------------------------------


class TestResumeAcrossShardBoundaries:
    def test_manufactured_partial_shards_resume_without_rerun(
            self, toy_project, toy_model, toy_workload, tmp_path):
        # Reference: one uninterrupted run.
        reference = _run_campaign(toy_project, toy_model, toy_workload,
                                  tmp_path / "ref", "thread", 1)
        assert reference.executed == 2
        ref_stream = ExperimentStream(reference.experiments_path)
        entries = sorted(ref_stream._latest_entries().items())
        meta = ref_stream.read_meta()
        assert meta is not None and len(entries) == 2

        # Crashed-run reconstruction: the canonical stream holds the
        # meta plus one result; the other result only ever landed in a
        # partial shard stream.
        workspace = tmp_path / "resumed"
        workspace.mkdir()
        canonical = ExperimentStream(workspace / "experiments.jsonl")
        canonical.write_meta(meta)
        canonical.append_entry(entries[0][1])
        shard = ExperimentStream(shard_stream_path(canonical.path, 2))
        shard.append_entry(entries[1][1])

        resumed = _run_campaign(toy_project, toy_model, toy_workload,
                                workspace, "thread", 3)
        # Everything was recovered or resumed; nothing re-ran.
        assert resumed.resumed == 2
        assert _campaign_projection(resumed) == \
            _campaign_projection(reference)
        assert ExperimentStream(resumed.experiments_path).canonical_bytes() \
            == ref_stream.canonical_bytes()

    @pytest.mark.integration
    def test_fully_resumed_campaign_reruns_nothing(
            self, toy_project, toy_model, toy_workload, tmp_path,
            worker_urls):
        # Regression: re-running a campaign whose stream already records
        # everything leaves zero pending experiments — the sharded
        # backends must handle an empty active set (pinned parallelism
        # used to divide by zero) and change nothing.
        workspace = tmp_path / "ws"
        first = _run_campaign(toy_project, toy_model, toy_workload,
                              workspace, "thread", 1)
        assert first.executed == 2
        for backend, workers in (("process", None),
                                 ("remote", worker_urls)):
            again = _run_campaign(toy_project, toy_model, toy_workload,
                                  workspace, backend, 2, workers=workers)
            assert again.resumed == 2
            assert again.executed == 2
            assert _campaign_projection(again) == \
                _campaign_projection(first)

    @pytest.mark.integration
    def test_killed_process_campaign_resumes_on_other_backend(
            self, tmp_path):
        """Kill a 4-shard process-backend campaign mid-run, resume with a
        different shard count and the thread backend: the merged stream
        records byte-identical experiments to an uninterrupted run."""
        project = tmp_path / "target"
        project.mkdir()
        chunks = []
        for index in range(6):
            chunks.append(textwrap.dedent(
                f"""
                def compute_{index}(x):
                    steps = []
                    steps.append('start')
                    result = x * 2 + {index}
                    steps.append('done')
                    return result
                """
            ).strip())
        (project / "app.py").write_text("\n\n\n".join(chunks) + "\n")
        (project / "run.py").write_text(textwrap.dedent(
            """
            import sys
            import time

            import app

            time.sleep(0.25)
            for index in range(6):
                value = getattr(app, "compute_" + str(index))(3)
                if value != 6 + index:
                    print("WORKLOAD FAILURE:", index, value,
                          file=sys.stderr)
                    sys.exit(1)
            print("WORKLOAD SUCCESS")
            """
        ).strip() + "\n")
        from conftest import TOY_SPEC

        spec_path = tmp_path / "spec.txt"
        spec_path.write_text(TOY_SPEC)

        def make_config(workspace, backend, shards):
            from repro.dsl.parser import parse_spec
            from repro.faultmodel.model import FaultModel
            from repro.workload.spec import WorkloadSpec

            model = FaultModel(name="toy")
            model.add(parse_spec(TOY_SPEC, name="WRR"),
                      description="wrong return value")
            return CampaignConfig(
                name="killed",
                target_dir=project,
                fault_model=model,
                workload=WorkloadSpec(commands=["{python} run.py"],
                                      command_timeout=30.0),
                injectable_files=["app.py"],
                coverage=False,
                parallelism=2,
                backend=backend,
                shards=shards,
                seed=7,
                workspace=workspace,
            )

        # Reference: uninterrupted run (thread backend, single shard).
        reference = Campaign(
            make_config(tmp_path / "ref", "thread", 1)
        ).run()
        assert reference.executed == 6
        ref_bytes = _stream_projection(reference.experiments_path)

        # Interrupted run: process backend, 4 shards, SIGKILLed (whole
        # process group, so shard workers die too) once results start
        # landing in the shard streams.
        workspace = tmp_path / "ws-killed"
        script = textwrap.dedent(
            """
            import sys
            from pathlib import Path

            from repro.dsl.parser import parse_spec
            from repro.faultmodel.model import FaultModel
            from repro.orchestrator.campaign import Campaign, CampaignConfig
            from repro.workload.spec import WorkloadSpec

            target, spec_path, workspace = sys.argv[1:4]
            model = FaultModel(name="toy")
            model.add(parse_spec(Path(spec_path).read_text(), name="WRR"),
                      description="wrong return value")
            config = CampaignConfig(
                name="killed",
                target_dir=Path(target),
                fault_model=model,
                workload=WorkloadSpec(commands=["{python} run.py"],
                                      command_timeout=30.0),
                injectable_files=["app.py"],
                coverage=False,
                parallelism=4,
                backend="process",
                shards=4,
                seed=7,
                workspace=Path(workspace),
            )
            Campaign(config).run()
            """
        )
        env = {**os.environ,
               "PYTHONPATH": SRC_DIR + os.pathsep +
               os.environ.get("PYTHONPATH", "")}
        child = subprocess.Popen(
            [sys.executable, "-c", script, str(project), str(spec_path),
             str(workspace)],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            recorded = 0
            while time.monotonic() < deadline:
                recorded = sum(
                    len(ExperimentStream(path)._latest_entries())
                    for path in workspace.glob("experiments-*.jsonl")
                )
                if recorded >= 1:
                    break
                if child.poll() is not None:
                    pytest.fail("campaign finished before it was killed")
                time.sleep(0.05)
            assert recorded >= 1, "no shard results before the deadline"
        finally:
            try:
                os.killpg(child.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)

        leftover = leftover_shard_streams(workspace / "experiments.jsonl")
        assert leftover, "the kill left no partial shard streams"

        # Resume with a different backend AND shard count.
        resumed = Campaign(
            make_config(workspace, "thread", 3)
        ).run()
        assert resumed.resumed >= 1  # the salvaged shard results count
        assert resumed.executed == 6
        assert _stream_projection(resumed.experiments_path) == ref_bytes
        assert leftover_shard_streams(workspace / "experiments.jsonl") == []


class TestSampledCampaigns:
    """Seeded sampling composes with every backend: the drawn membership
    is a pure function of (seed, experiment ids), and growing the sample
    toward exhaustive rides resume without re-executing anything."""

    def test_sampled_membership_identical_across_backends(
            self, toy_project, toy_model, toy_workload, tmp_path):
        from repro.stats.config import SamplingConfig

        projections = {}
        for backend, shards in (("thread", 1), ("thread", 4),
                                ("process", 2)):
            result = _run_campaign(
                toy_project, toy_model, toy_workload,
                tmp_path / f"ws-{backend}-{shards}", backend, shards,
                sampling=SamplingConfig(max_experiments=1),
            )
            assert result.executed == 1
            assert result.population == 2
            assert result.points_planned == 1
            projections[(backend, shards)] = _campaign_projection(result)
        reference = projections[("thread", 1)]
        for key, projection in projections.items():
            assert projection == reference, f"{key} diverged"

    def test_extend_sample_to_exhaustive_executes_only_the_delta(
            self, toy_project, toy_model, toy_workload, tmp_path):
        from repro.stats.config import SamplingConfig

        workspace = tmp_path / "grow"
        sampled = _run_campaign(
            toy_project, toy_model, toy_workload, workspace,
            "thread", 1, sampling=SamplingConfig(max_experiments=1),
        )
        assert sampled.executed == 1
        # Same workspace, no sampling: the run resumes over the sampled
        # record and executes exactly the remaining experiment.
        grown = _run_campaign(
            toy_project, toy_model, toy_workload, workspace,
            "process", 2,
        )
        assert grown.resumed == 1
        assert grown.executed == 2
        # Canonical-stream oracle: the grown stream is what an
        # uninterrupted exhaustive run would have produced.
        exhaustive = _run_campaign(
            toy_project, toy_model, toy_workload, tmp_path / "full",
            "thread", 1,
        )
        assert _stream_projection(grown.experiments_path) == \
            _stream_projection(exhaustive.experiments_path)
