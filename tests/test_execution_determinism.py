"""Replay determinism of the execution engine.

The as-a-service premise is that re-running a campaign with the same seed
reproduces the same experiments exactly.  These tests pin the sha256 seed
derivation, check that batched pre-generation equals inline mutation,
and assert byte-identical campaign output across parallelism levels and
across separate processes with different ``PYTHONHASHSEED`` values (the
salted-``hash()`` bug this engine replaced).
"""

import hashlib
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

import repro
from repro.common.rng import SeededRandom, experiment_seed
from repro.mutator.mutate import MutantRequest, Mutator, generate_mutants
from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)


class TestSeedDerivation:
    def test_known_value_pinned(self):
        # Regression for the abs(hash(experiment_id)) seed: the value for
        # (campaign_seed=0, "exp-0001") is a constant of the tool now.
        # Changing the derivation silently breaks replay of old campaigns.
        assert experiment_seed(0, "exp-0001") == 299446758

    def test_matches_sha256_definition(self):
        digest = hashlib.sha256(b"7::toy-0002").digest()
        expected = int.from_bytes(digest[:8], "big") % (2 ** 31)
        assert experiment_seed(7, "toy-0002") == expected

    def test_fits_runtime_seed_range(self):
        for experiment_id in ("a", "exp-9999", "x" * 200):
            seed = experiment_seed(3, experiment_id)
            assert 0 <= seed < 2 ** 31

    def test_distinct_per_experiment_and_campaign(self):
        assert experiment_seed(0, "exp-0001") != experiment_seed(0, "exp-0002")
        assert experiment_seed(0, "exp-0001") != experiment_seed(1, "exp-0001")

    def test_experiment_rng_is_stable_stream(self):
        first = SeededRandom(5).derive("exp-0001").random()
        second = SeededRandom(5).derive("exp-0001").random()
        assert first == second


class TestBatchedPreGeneration:
    def fixture_bits(self, toy_project, toy_model, tmp_path):
        models = {m.name: m for m in toy_model.compile()}
        scan = scan_file(toy_project / "app.py", toy_model.compile(),
                         root=toy_project)
        plan = Plan.from_points(scan.points)
        image = SandboxImage.build(toy_project, tmp_path / "image")
        executor = ExperimentExecutor(
            image=image, workload=None, models=models,
            base_dir=tmp_path / "boxes", campaign_seed=0,
        )
        return executor, plan

    def test_batch_equals_inline(self, toy_project, toy_model, tmp_path):
        executor, plan = self.fixture_bits(toy_project, toy_model, tmp_path)
        batched = executor.prepare_mutations(plan)
        assert sorted(batched) == [e.experiment_id for e in plan]
        source = (toy_project / "app.py").read_text()
        for planned in plan:
            inline = Mutator(
                trigger=True,
                rng=executor.experiment_rng(planned.experiment_id),
            ).mutate_source(
                source, executor.models[planned.point.spec_name],
                planned.point.ordinal, fault_id=planned.point.point_id,
                file=planned.point.file,
            )
            pre = batched[planned.experiment_id]
            assert pre.source == inline.source
            assert pre.mutated_snippet == inline.mutated_snippet
            assert pre.original_snippet == inline.original_snippet

    def test_request_order_does_not_matter(self, toy_project, toy_model,
                                           tmp_path):
        executor, plan = self.fixture_bits(toy_project, toy_model, tmp_path)
        forward = executor.prepare_mutations(list(plan))
        backward = executor.prepare_mutations(list(plan)[::-1])
        for key, mutation in forward.items():
            assert backward[key].source == mutation.source
            assert backward[key].mutated_snippet == mutation.mutated_snippet

    def test_bad_request_skipped_not_fatal(self, toy_project, toy_model,
                                           tmp_path):
        # One unmutatable point (stale ordinal / missing file) must not
        # sink the batch: the others still pre-generate, and the broken
        # one is left to the executor's per-experiment error capture.
        from repro.orchestrator.plan import PlannedExperiment
        from repro.scanner.points import InjectionPoint

        executor, plan = self.fixture_bits(toy_project, toy_model, tmp_path)
        bogus = [
            PlannedExperiment(
                experiment_id="bad-ordinal",
                point=InjectionPoint(spec_name="WRR", file="app.py",
                                     ordinal=99, lineno=1, end_lineno=1,
                                     snippet="", component="app"),
            ),
            PlannedExperiment(
                experiment_id="bad-file",
                point=InjectionPoint(spec_name="WRR", file="missing.py",
                                     ordinal=0, lineno=1, end_lineno=1,
                                     snippet="", component="missing"),
            ),
        ]
        mutations = executor.prepare_mutations(list(plan) + bogus)
        assert sorted(mutations) == [e.experiment_id for e in plan]

    def test_generate_mutants_uses_request_stream_only(self, toy_project,
                                                       toy_model):
        source = (toy_project / "app.py").read_text()
        [model] = toy_model.compile()
        request = MutantRequest(
            key="k", source=source, model=model, ordinal=0,
            fault_id="WRR:app.py:0", file="app.py",
            rng=SeededRandom(0).derive("k"),
        )
        alone = generate_mutants([request])["k"]
        other = MutantRequest(
            key="o", source=source, model=model, ordinal=1,
            fault_id="WRR:app.py:1", file="app.py",
            rng=SeededRandom(0).derive("o"),
        )
        paired = generate_mutants([other, request])["k"]
        assert paired.source == alone.source


def _campaign_rows(toy_project, toy_model, toy_workload, workspace,
                   parallelism):
    config = CampaignConfig(
        name="replay",
        target_dir=toy_project,
        fault_model=toy_model,
        workload=toy_workload,
        injectable_files=["app.py"],
        coverage=False,
        parallelism=parallelism,
        seed=7,
        workspace=workspace,
    )
    result = Campaign(config).run()
    return [
        {"id": e.experiment_id, "seed": e.seed, "point": e.point,
         "mutated": e.mutated_snippet, "original": e.original_snippet}
        for e in result.experiments
    ]


@pytest.mark.integration
class TestCampaignReplay:
    def test_parallelism_invariance(self, toy_project, toy_model,
                                    toy_workload, tmp_path):
        serial = _campaign_rows(toy_project, toy_model, toy_workload,
                                tmp_path / "ws1", parallelism=1)
        wide = _campaign_rows(toy_project, toy_model, toy_workload,
                              tmp_path / "ws4", parallelism=4)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(wide, sort_keys=True)
        assert len(serial) == 2
        assert all(row["seed"] is not None for row in serial)

    def test_cross_process_replay_with_varied_hashseed(self, toy_project,
                                                       tmp_path):
        """Two processes, different PYTHONHASHSEED and parallelism, same
        campaign seed: byte-identical per-experiment output."""
        script = textwrap.dedent(
            """
            import json, sys
            from pathlib import Path

            from repro.dsl.parser import parse_spec
            from repro.faultmodel.model import FaultModel
            from repro.orchestrator.campaign import Campaign, CampaignConfig
            from repro.workload.spec import WorkloadSpec

            target, spec_path, parallelism, workspace = sys.argv[1:5]
            model = FaultModel(name="toy")
            model.add(parse_spec(Path(spec_path).read_text(), name="WRR"),
                      description="wrong return value")
            config = CampaignConfig(
                name="replay",
                target_dir=Path(target),
                fault_model=model,
                workload=WorkloadSpec(commands=["{python} run.py"],
                                      command_timeout=30.0),
                injectable_files=["app.py"],
                coverage=False,
                parallelism=int(parallelism),
                seed=7,
                workspace=Path(workspace),
            )
            result = Campaign(config).run()
            rows = [
                {"id": e.experiment_id, "seed": e.seed, "point": e.point,
                 "mutated": e.mutated_snippet}
                for e in result.experiments
            ]
            print(json.dumps(rows, sort_keys=True))
            """
        )
        from conftest import TOY_SPEC

        spec_path = tmp_path / "spec.txt"
        spec_path.write_text(TOY_SPEC)

        def run(hashseed, parallelism, workspace):
            env = {**os.environ,
                   "PYTHONHASHSEED": hashseed,
                   "PYTHONPATH": SRC_DIR + os.pathsep +
                   os.environ.get("PYTHONPATH", "")}
            completed = subprocess.run(
                [sys.executable, "-c", script, str(toy_project),
                 str(spec_path), str(parallelism), str(tmp_path / workspace)],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert completed.returncode == 0, completed.stderr
            return completed.stdout

        first = run("101", 1, "ws-a")
        second = run("424242", 4, "ws-b")
        assert first == second
        assert json.loads(first)  # non-empty, well-formed
