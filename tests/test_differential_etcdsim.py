"""Differential testing: the client+HTTP+server stack must agree with the
bare store on random operation sequences.

This pins down the wire layer: any drift between
:class:`~repro.etcdsim.store.EtcdStore` semantics and what a client
observes through HTTP (quoting, form encoding, error mapping) breaks the
case study silently.  Hypothesis drives both sides with the same ops and
compares outcomes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.etcdsim import Client, EtcdException, EtcdServer
from repro.etcdsim.errors import (
    ERROR_CODE_EXCEPTIONS,
    EtcdError,
    EtcdKeyNotFound,
)
from repro.etcdsim.store import EtcdStore

KEYS = ("/d/a", "/d/b", "/top", "/deep/x/y")
VALUES = ("v1", "value-2", "x" * 30, "")

ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "delete", "cas", "mkdir"]),
        st.sampled_from(KEYS),
        st.sampled_from(VALUES),
    ),
    max_size=12,
)


@pytest.fixture(scope="module")
def server():
    with EtcdServer() as instance:
        yield instance


def apply_store(store, op, key, value):
    """Run one op on the bare store; returns ('ok', value) or ('err', type)."""
    try:
        if op == "set":
            store.set(key, value)
            return ("ok", value)
        if op == "get":
            event = store.get(key)
            return ("ok", event.node.get("value"))
        if op == "delete":
            store.delete(key, recursive=True)
            return ("ok", None)
        if op == "cas":
            store.compare_and_swap(key, value, prev_value="base")
            return ("ok", value)
        store.set(key, dir=True)
        return ("ok", "<dir>")
    except EtcdError as error:
        exc_class = ERROR_CODE_EXCEPTIONS.get(error.code, EtcdException)
        return ("err", exc_class.__name__)


def apply_client(client, op, key, value):
    """Run the same op through the full client/HTTP/server stack."""
    try:
        if op == "set":
            client.set(key, value)
            return ("ok", value)
        if op == "get":
            return ("ok", client.get(key).value)
        if op == "delete":
            client.delete(key, recursive=True)
            return ("ok", None)
        if op == "cas":
            client.test_and_set(key, value, prev_value="base")
            return ("ok", value)
        client.mkdir(key)
        return ("ok", "<dir>")
    except EtcdException as error:
        return ("err", type(error).__name__)


class TestDifferential:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(sequence=ops)
    def test_client_agrees_with_store(self, server, sequence):
        store = EtcdStore()
        client = Client(host=server.host, port=server.port)
        # Isolate this example: wipe the shared server's root.
        for child in client.ls("/"):
            client.delete(child, recursive=True)

        for op, key, value in sequence:
            expected = apply_store(store, op, key, value)
            actual = apply_client(client, op, key, value)
            assert actual == expected, (
                f"divergence on {op} {key} {value!r}: "
                f"store={expected} client={actual}"
            )

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(sequence=ops)
    def test_final_tree_matches(self, server, sequence):
        store = EtcdStore()
        client = Client(host=server.host, port=server.port)
        for child in client.ls("/"):
            client.delete(child, recursive=True)

        for op, key, value in sequence:
            apply_store(store, op, key, value)
            apply_client(client, op, key, value)

        def store_leaves():
            try:
                event = store.get("/", recursive=True)
            except EtcdError:
                return {}
            leaves = {}

            def walk(node):
                for child in node.get("nodes", []):
                    if child.get("dir"):
                        walk(child)
                    else:
                        leaves[child["key"]] = child.get("value")

            walk(event.node)
            return leaves

        def client_leaves():
            try:
                result = client.get("/", recursive=True)
            except EtcdKeyNotFound:
                return {}
            return {leaf.key: leaf.value for leaf in result.leaves
                    if leaf.key is not None}

        assert client_leaves() == store_leaves()
