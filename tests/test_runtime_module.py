"""Direct tests of the generated ``profipy_runtime`` module.

The runtime ships *as source text* into every sandbox; these tests load it
the way mutated programs do and exercise the trigger, coverage probes, and
run-time fault actions.
"""

import importlib.util
import sys
import threading
import time

import pytest

from repro.mutator.runtime import (
    COVERAGE_ENV,
    RUNTIME_MODULE_NAME,
    SEED_ENV,
    TRIGGER_ENV,
    write_runtime,
)


@pytest.fixture
def runtime(tmp_path, monkeypatch):
    """A freshly imported runtime module instance."""
    path = write_runtime(tmp_path)
    name = f"{RUNTIME_MODULE_NAME}_test_{tmp_path.name}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.delenv(TRIGGER_ENV, raising=False)
    monkeypatch.delenv(COVERAGE_ENV, raising=False)
    monkeypatch.delenv(SEED_ENV, raising=False)
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(name, None)


class TestTrigger:
    def test_enabled_without_trigger_file(self, runtime):
        assert runtime.enabled("any-fault")

    def test_global_on_off(self, runtime, tmp_path, monkeypatch):
        trigger = tmp_path / "trigger"
        monkeypatch.setenv(TRIGGER_ENV, str(trigger))
        trigger.write_text("1")
        assert runtime.enabled("f1")
        time.sleep(0.01)  # distinct mtime
        trigger.write_text("0")
        assert not runtime.enabled("f1")

    def test_selective_fault_ids(self, runtime, tmp_path, monkeypatch):
        trigger = tmp_path / "trigger"
        monkeypatch.setenv(TRIGGER_ENV, str(trigger))
        trigger.write_text("f1, f3")
        assert runtime.enabled("f1")
        assert not runtime.enabled("f2")
        assert runtime.enabled("f3")

    def test_missing_file_means_enabled(self, runtime, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv(TRIGGER_ENV, str(tmp_path / "nope"))
        assert runtime.enabled("f1")

    def test_empty_file_means_enabled(self, runtime, tmp_path, monkeypatch):
        trigger = tmp_path / "trigger"
        trigger.write_text("")
        monkeypatch.setenv(TRIGGER_ENV, str(trigger))
        assert runtime.enabled("f1")


class TestCoverage:
    def test_probe_appends_once(self, runtime, tmp_path, monkeypatch):
        coverage = tmp_path / "cov"
        monkeypatch.setenv(COVERAGE_ENV, str(coverage))
        runtime.cover("p1")
        runtime.cover("p1")
        runtime.cover("p2")
        lines = coverage.read_text().splitlines()
        assert lines == ["p1", "p2"]

    def test_probe_noop_without_env(self, runtime):
        runtime.cover("p1")  # must not raise

    def test_probe_thread_safe(self, runtime, tmp_path, monkeypatch):
        coverage = tmp_path / "cov"
        monkeypatch.setenv(COVERAGE_ENV, str(coverage))

        def hammer(tag):
            for _ in range(50):
                runtime.cover(tag)

        threads = [threading.Thread(target=hammer, args=(f"p{i % 3}",))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = coverage.read_text().splitlines()
        assert sorted(lines) == ["p0", "p1", "p2"]


class TestCorrupt:
    def test_string_corruption_differs(self, runtime):
        assert runtime.corrupt("hello") != "hello"

    def test_int_corruption_differs(self, runtime):
        assert runtime.corrupt(7) != 7

    def test_none_mode(self, runtime):
        assert runtime.corrupt("x", mode="none") is None

    def test_negate_mode(self, runtime):
        assert runtime.corrupt(True, mode="negate") is False
        assert runtime.corrupt(5, mode="negate") == -5

    def test_auto_none_value(self, runtime):
        assert runtime.corrupt(None) == "\x00corrupted"

    def test_auto_bool(self, runtime):
        assert runtime.corrupt(False) is True

    def test_auto_list_drops_element(self, runtime):
        assert len(runtime.corrupt([1, 2, 3])) == 2

    def test_auto_dict_drops_key(self, runtime):
        assert len(runtime.corrupt({"a": 1, "b": 2})) == 1

    def test_never_raises_on_exotic_values(self, runtime):
        class Weird:
            def __str__(self):
                raise RuntimeError("nope")

        assert runtime.corrupt(Weird()) is None

    def test_string_mode_on_int(self, runtime):
        result = runtime.corrupt(1234, mode="string")
        assert isinstance(result, str)


class TestHogAndDelay:
    def test_cpu_hog_threads_are_daemons(self, runtime):
        before = threading.active_count()
        runtime.hog("cpu", seconds=0.2, threads=2)
        assert threading.active_count() >= before + 2
        assert all(
            thread.daemon for thread in threading.enumerate()
            if thread.name.startswith("Thread-")
        )
        time.sleep(0.5)  # burn threads exit after their deadline

    def test_memory_hog_allocates_and_releases(self, runtime):
        runtime.hog("memory", seconds=0.1, mb=1)
        assert any(isinstance(h, bytearray) for h in runtime._hogs)
        time.sleep(0.4)
        assert not any(isinstance(h, bytearray) for h in runtime._hogs)

    def test_disk_hog_writes_file(self, runtime, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        runtime.hog("disk", mb=1)
        files = list(tmp_path.glob(".pfp_hog_*"))
        assert len(files) == 1
        assert files[0].stat().st_size == 1024 * 1024

    def test_hog_never_raises(self, runtime):
        runtime.hog("cpu", seconds="garbage")  # defensive: swallowed

    def test_delay_sleeps(self, runtime):
        started = time.monotonic()
        runtime.delay(0.15)
        assert time.monotonic() - started >= 0.14

    def test_delay_never_raises(self, runtime):
        runtime.delay("soon")


class TestSeededDeterminism:
    def test_same_seed_same_corruption(self, tmp_path, monkeypatch):
        def load(seed, name):
            monkeypatch.setenv(SEED_ENV, str(seed))
            path = write_runtime(tmp_path / name)
            spec = importlib.util.spec_from_file_location(
                f"rt_{name}", path
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            return module

        first = load(99, "a").corrupt("abcdefgh")
        second = load(99, "b").corrupt("abcdefgh")
        third = load(100, "c").corrupt("abcdefgh")
        assert first == second
        assert first != third or True  # different seed usually differs
