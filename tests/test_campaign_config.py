"""Tests for campaign configuration, filters, and result summaries."""

import pytest

from repro.analysis.report import CampaignReport, summary_table
from repro.orchestrator.campaign import Campaign, CampaignConfig, CampaignResult
from repro.orchestrator.coverage import CoverageReport
from repro.orchestrator.experiment import ExperimentResult


class TestConfigValidation:
    def test_missing_target_rejected(self, toy_model, toy_workload,
                                     tmp_path):
        # Construction is lazy about the filesystem (a config may name a
        # tree that only exists as a manifest, or round-trip through the
        # API on another host); the clear error moves to scan/run time.
        config = CampaignConfig(
            name="x", target_dir=tmp_path / "nope",
            fault_model=toy_model, workload=toy_workload,
        )
        campaign = Campaign(config)
        with pytest.raises(FileNotFoundError, match="target_dir"):
            campaign.scan()
        with pytest.raises(FileNotFoundError, match="target_dir"):
            campaign.run()

    def test_defaults(self, toy_project, toy_model, toy_workload):
        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
        )
        assert config.trigger is True
        assert config.rounds == 2
        assert config.coverage is True
        assert config.sample is None
        assert config.scan_jobs is None
        assert config.scan_cache_dir is None
        assert config.backend == "thread"
        assert config.shards == 1

    def test_unknown_backend_rejected(self, toy_project, toy_model,
                                      toy_workload):
        with pytest.raises(ValueError, match="unknown execution backend"):
            CampaignConfig(
                name="x", target_dir=toy_project,
                fault_model=toy_model, workload=toy_workload,
                backend="quantum",
            )

    def test_invalid_shard_count_rejected(self, toy_project, toy_model,
                                          toy_workload):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            CampaignConfig(
                name="x", target_dir=toy_project,
                fault_model=toy_model, workload=toy_workload,
                shards=0,
            )

    def test_wire_round_trip_preserves_execution_policy(
            self, toy_project, toy_model, toy_workload):
        from repro.service.api import (
            campaign_config_from_dict,
            campaign_config_to_dict,
        )

        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            backend="process", shards=4,
        )
        clone = campaign_config_from_dict(campaign_config_to_dict(config))
        assert clone.backend == "process"
        assert clone.shards == 4
        assert clone.workers is None

        remote = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            backend="remote", shards=2,
            workers=["http://a:8081", "http://b:8081"],
        )
        clone = campaign_config_from_dict(campaign_config_to_dict(remote))
        assert clone.backend == "remote"
        assert clone.workers == ["http://a:8081", "http://b:8081"]

    def test_relative_workspace_resolved(self, toy_project, toy_model,
                                         toy_workload, tmp_path,
                                         monkeypatch):
        # Regression: sandboxed workloads run with their own cwd, so a
        # relative workspace (the CLI default) broke coverage/trigger
        # paths — the config must absolutize it up front.
        monkeypatch.chdir(tmp_path)
        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            workspace="relative-ws",
        )
        assert config.workspace.is_absolute()
        assert config.workspace == tmp_path / "relative-ws"


class TestCampaignScan:
    def test_scan_all_files_by_default(self, toy_project, toy_model,
                                       toy_workload):
        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
        )
        scan = Campaign(config).scan()
        # app.py has 2 return points; run.py has none matching.
        assert len(scan.points) == 2
        assert scan.files_scanned == 2

    def test_scan_restricted_files(self, toy_project, toy_model,
                                   toy_workload):
        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            injectable_files=["app.py"],
        )
        scan = Campaign(config).scan()
        assert scan.files_scanned == 1

    @pytest.mark.integration
    def test_spec_filter_limits_plan(self, toy_project, toy_model,
                                     toy_workload, tmp_path):
        config = CampaignConfig(
            name="x", target_dir=toy_project,
            fault_model=toy_model, workload=toy_workload,
            injectable_files=["app.py"],
            spec_filter=["NOT_A_SPEC"],
            coverage=False,
            parallelism=1,
            workspace=tmp_path / "ws",
        )
        result = Campaign(config).run()
        assert result.points_found == 2
        assert result.points_planned == 0
        assert result.executed == 0


class TestCampaignResult:
    def build(self):
        result = CampaignResult(name="demo", points_found=10,
                                points_planned=4)
        result.coverage = CoverageReport(covered={"a", "b", "c", "d"},
                                         total=10)
        from repro.workload.runner import RoundResult

        ok = ExperimentResult(experiment_id="e1", point={})
        ok.rounds.append(RoundResult(round_no=1, fault_enabled=True))
        ok.rounds.append(RoundResult(round_no=2, fault_enabled=False))
        failed = ExperimentResult(experiment_id="e2", point={},
                                  status="harness_error", error="x")
        result.experiments = [ok, failed]
        return result

    def test_summary_fields(self):
        summary = self.build().summary()
        assert summary["campaign"] == "demo"
        assert summary["points_found"] == 10
        assert summary["points_covered"] == 4
        assert summary["experiments"] == 2

    def test_failures_include_harness_errors(self):
        result = self.build()
        assert [e.experiment_id for e in result.failures] == ["e2"]

    def test_summary_table_renders_rows(self):
        reports = [CampaignReport(self.build())]
        text = summary_table(reports)
        assert "demo" in text
        assert "available r2" in text

    def test_coverage_ratio(self):
        report = CoverageReport(covered={"a"}, total=4)
        assert report.ratio == 0.25
        assert CoverageReport().ratio == 0.0
