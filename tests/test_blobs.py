"""Tests for the content-addressed blob store and image manifests."""

import os

import pytest

from repro.sandbox.image import SandboxImage
from repro.service.blobs import (
    BlobStore,
    ImageManifest,
    blob_digest,
    validate_digest,
)


class TestBlobStore:
    def test_put_get_roundtrip_and_layout(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        digest = store.put_bytes(b"hello fleet")
        assert digest == blob_digest(b"hello fleet")
        # Fanned out: <root>/<digest[:2]>/<digest>.
        assert store.path(digest) == (
            tmp_path / "blobs" / digest[:2] / digest
        )
        assert store.has(digest)
        assert store.get_bytes(digest) == b"hello fleet"

    def test_put_is_idempotent(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        first = store.put_bytes(b"same bytes")
        second = store.put_bytes(b"same bytes")
        assert first == second
        assert store.total_bytes() == len(b"same bytes")

    def test_declared_digest_must_match_content(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        wrong = blob_digest(b"other bytes")
        with pytest.raises(ValueError, match="hashes to"):
            store.put_bytes(b"actual bytes", digest=wrong)
        assert not store.has(wrong)
        # The right declared digest is accepted (the PUT endpoint's path).
        right = blob_digest(b"actual bytes")
        assert store.put_bytes(b"actual bytes", digest=right) == right

    def test_missing_is_the_sorted_absent_subset(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        held = store.put_bytes(b"held")
        absent_a = blob_digest(b"absent a")
        absent_b = blob_digest(b"absent b")
        assert store.missing([held]) == []
        assert store.missing([held, absent_b, absent_a, absent_a]) == sorted(
            {absent_a, absent_b}
        )

    def test_get_unknown_blob_raises_keyerror(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        digest = blob_digest(b"never stored")
        with pytest.raises(KeyError, match="unknown blob"):
            store.get_bytes(digest)

    def test_malformed_digest_rejected(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        for bad in ("xyz", "1234", 42, None, "../../etc/passwd", "g" * 64):
            with pytest.raises(ValueError, match="64 hex chars"):
                store.path(bad)
        # Uppercase hex is normalized, not rejected.
        assert validate_digest("A" * 64) == "a" * 64

    def test_lru_eviction_drops_oldest_first(self, tmp_path):
        store = BlobStore(tmp_path / "blobs", max_bytes=25)
        old = store.put_bytes(b"0" * 10)
        os.utime(store.path(old), (1_000, 1_000))
        warm = store.put_bytes(b"1" * 10)
        os.utime(store.path(warm), (2_000, 2_000))
        # get_bytes bumps recency, so `old` is now the freshest.
        store.get_bytes(old)
        newest = store.put_bytes(b"2" * 10)
        # 30 bytes > 25: the least recently used blob (warm) went.
        assert not store.has(warm)
        assert store.has(old)
        assert store.has(newest)
        assert store.total_bytes() <= 25

    def test_oversized_blob_survives_its_own_eviction(self, tmp_path):
        store = BlobStore(tmp_path / "blobs", max_bytes=4)
        digest = store.put_bytes(b"bigger than the bound")
        # A single blob above max_bytes must stay usable by the shard
        # that just fetched it.
        assert store.get_bytes(digest) == b"bigger than the bound"

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        digests = [store.put_bytes(bytes([i]) * 64) for i in range(8)]
        assert store.evict() == []
        assert all(store.has(digest) for digest in digests)


def _write_tree(root, files):
    for relpath, content in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(content)


class TestImageManifest:
    def test_identical_trees_yield_byte_identical_manifests(self, tmp_path):
        files = {"app.py": b"print('x')\n", "pkg/util.py": b"VALUE = 3\n"}
        _write_tree(tmp_path / "a", files)
        _write_tree(tmp_path / "b", files)
        left = ImageManifest.from_tree(tmp_path / "a")
        right = ImageManifest.from_tree(tmp_path / "b")
        assert left.canonical_bytes() == right.canonical_bytes()
        assert left.tree_digest == right.tree_digest
        changed = dict(files, **{"app.py": b"print('y')\n"})
        _write_tree(tmp_path / "c", changed)
        assert (ImageManifest.from_tree(tmp_path / "c").tree_digest
                != left.tree_digest)

    def test_ignored_dirs_are_skipped(self, tmp_path):
        _write_tree(tmp_path / "tree", {
            "app.py": b"pass\n",
            "__pycache__/app.cpython-312.pyc": b"\x00",
            ".git/HEAD": b"ref: refs/heads/main\n",
        })
        manifest = ImageManifest.from_tree(tmp_path / "tree")
        assert sorted(manifest.entries) == ["app.py"]

    def test_dict_roundtrip_preserves_identity(self, tmp_path):
        _write_tree(tmp_path / "tree", {"a.py": b"A\n", "d/b.py": b"B\n"})
        manifest = ImageManifest.from_tree(tmp_path / "tree",
                                           env={"PROFIPY_X": "1"})
        clone = ImageManifest.from_dict(manifest.to_dict())
        assert clone.entries == manifest.entries
        assert clone.env == manifest.env
        assert clone.tree_digest == manifest.tree_digest

    def test_tampered_tree_digest_rejected(self, tmp_path):
        _write_tree(tmp_path / "tree", {"a.py": b"A\n"})
        data = ImageManifest.from_tree(tmp_path / "tree").to_dict()
        data["tree_digest"] = blob_digest(b"forged")
        with pytest.raises(ValueError, match="declares tree digest"):
            ImageManifest.from_dict(data)

    def test_escaping_relpaths_rejected(self, tmp_path):
        _write_tree(tmp_path / "tree", {"a.py": b"A\n"})
        base = ImageManifest.from_tree(tmp_path / "tree")
        entry = base.entries["a.py"]
        for hostile in ("../evil.py", "/etc/evil.py", "d/../../evil.py"):
            data = {"entries": {hostile: dict(entry)}, "env": {}}
            with pytest.raises(ValueError, match="escapes the tree"):
                ImageManifest.from_dict(data)

    def test_materialize_rebuilds_tree_byte_identically(self, tmp_path):
        files = {"app.py": b"print('x')\n", "pkg/deep/u.py": b"U = 1\n"}
        _write_tree(tmp_path / "tree", files)
        store = BlobStore(tmp_path / "blobs")
        manifest = ImageManifest.from_tree(tmp_path / "tree", store=store)
        dest = manifest.materialize(tmp_path / "copy", store)
        for relpath, content in files.items():
            assert (dest / relpath).read_bytes() == content
        # Re-manifesting the copy yields the same identity.
        assert (ImageManifest.from_tree(dest).tree_digest
                == manifest.tree_digest)

    def test_materialize_names_the_missing_blob(self, tmp_path):
        _write_tree(tmp_path / "tree", {"a.py": b"A\n"})
        manifest = ImageManifest.from_tree(tmp_path / "tree")  # no store
        empty = BlobStore(tmp_path / "blobs")
        with pytest.raises(KeyError, match="a.py"):
            manifest.materialize(tmp_path / "copy", empty)

    def test_executable_mode_survives_the_roundtrip(self, tmp_path):
        """Regression: +x workload scripts must keep their bit through
        staging, the blob store, and materialization."""
        tree = tmp_path / "tree"
        _write_tree(tree, {"run.sh": b"#!/bin/sh\necho ok\n",
                           "app.py": b"pass\n"})
        os.chmod(tree / "run.sh", 0o755)
        store = BlobStore(tmp_path / "blobs")
        manifest = ImageManifest.from_tree(tree, store=store)
        assert manifest.entries["run.sh"]["mode"] == 0o755
        dest = manifest.materialize(tmp_path / "copy", store)
        assert os.stat(dest / "run.sh").st_mode & 0o777 == 0o755
        assert os.access(dest / "run.sh", os.X_OK)


class TestBuildFromManifest:
    def test_worker_side_image_matches_the_staged_tree(self, tmp_path):
        _write_tree(tmp_path / "src", {"app.py": b"X = 1\n"})
        image = SandboxImage.build(tmp_path / "src", tmp_path / "image",
                                   containerfile="ENV PROFIPY_DEMO=yes")
        store = BlobStore(tmp_path / "blobs")
        manifest = ImageManifest.from_image(image, store=store)
        clone = SandboxImage.build_from_manifest(
            ImageManifest.from_dict(manifest.to_dict()),
            tmp_path / "worker-image", store,
        )
        assert clone.env == {"PROFIPY_DEMO": "yes"}
        # Byte-identical staging trees: re-snapshotting the clone (env
        # included — tree_digest covers it) reproduces the original
        # identity, runtime module and all.
        assert (ImageManifest.from_image(clone).tree_digest
                == manifest.tree_digest)
