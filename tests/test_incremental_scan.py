"""Incremental tree scan: stat-manifest trust and tree-manifest reuse.

A re-campaign over an unchanged tree must be served entirely from the
cache without reading a single file, and a tree with k changed files
must do read/hash/scan work proportional to k — while keeping the
injection plan (points, ordinals, ids) byte-for-byte stable for the
untouched remainder.
"""

from __future__ import annotations

import os

import pytest

from repro.faultmodel.library import extended_model, gswfit_model
from repro.scanner.cache import ScanCache
from repro.scanner.scan import scan_tree
from repro.synth import SynthConfig, generate_codebase


@pytest.fixture()
def project(tmp_path):
    dest = tmp_path / "project"
    generate_codebase(dest, SynthConfig(files=6, seed=17))
    return dest


@pytest.fixture()
def specs():
    return (gswfit_model().enabled_specs()
            + extended_model().enabled_specs())


def touch(path, text=None):
    """Rewrite a file and force a new mtime_ns so the stat check trips."""
    stat = path.stat()
    if text is None:
        text = path.read_text(encoding="utf-8") + "\n# touched\n"
    path.write_text(text, encoding="utf-8")
    os.utime(path, ns=(stat.st_atime_ns + 1_000_000_000,
                       stat.st_mtime_ns + 1_000_000_000))


def py_files(root):
    return sorted(p for p in root.rglob("*.py"))


class TestUnchangedTree:
    def test_rescan_reads_nothing(self, project, specs, tmp_path):
        cache = ScanCache(tmp_path / "cache")
        first = scan_tree(project, specs, cache=cache)
        cold = cache.stats()
        assert cold["files_read"] == len(py_files(project))

        second = scan_tree(project, specs, cache=cache)
        warm = cache.stats()
        assert second.points == first.points
        assert second.parse_errors == first.parse_errors
        # Every file was trusted from the stat manifest and the whole
        # result came from one tree-manifest entry: zero reads, zero
        # hashing, zero per-file lookups beyond the tree hit.
        assert warm["files_read"] == cold["files_read"]
        assert warm["stat_hits"] == len(py_files(project))
        assert warm["tree_hits"] == 1
        assert warm["hits"] - cold["hits"] == len(py_files(project))

    def test_tree_manifest_survives_process_restart(self, project, specs,
                                                    tmp_path):
        cache_dir = tmp_path / "cache"
        scan_tree(project, specs, cache=ScanCache(cache_dir))

        fresh = ScanCache(cache_dir)
        result = scan_tree(project, specs, cache=fresh)
        warm = fresh.stats()
        assert warm["files_read"] == 0
        assert warm["tree_hits"] == 1
        assert result.files_scanned == len(py_files(project))


class TestChangedFiles:
    def test_k_changed_files_cost_k_reads(self, project, specs, tmp_path):
        cache = ScanCache(tmp_path / "cache")
        first = scan_tree(project, specs, cache=cache)
        before = cache.stats()

        files = py_files(project)
        changed = files[:2]
        for path in changed:
            touch(path)

        second = scan_tree(project, specs, cache=cache)
        after = cache.stats()
        k = len(changed)
        assert after["files_read"] - before["files_read"] == k
        assert after["stat_hits"] - before["stat_hits"] == len(files) - k
        # The changed tree digest misses the tree manifest, but the
        # unchanged files still come from the per-file cache.
        assert after["tree_hits"] == before["tree_hits"]
        assert after["tree_misses"] > before["tree_misses"]

        changed_rels = {path.relative_to(project).as_posix()
                        for path in changed}
        stable_first = [p for p in first.points
                        if p.file not in changed_rels]
        stable_second = [p for p in second.points
                         if p.file not in changed_rels]
        assert stable_second == stable_first
        assert {p.point_id for p in stable_second} == {
            p.point_id for p in stable_first
        }

    def test_changed_content_changes_points(self, project, specs, tmp_path):
        cache = ScanCache(tmp_path / "cache")
        scan_tree(project, specs, cache=cache)

        target = py_files(project)[0]
        touch(target, text="# nothing left to match\n")

        second = scan_tree(project, specs, cache=cache)
        rel = target.relative_to(project).as_posix()
        assert all(p.file != rel for p in second.points)

    def test_same_size_rewrite_is_detected(self, project, specs, tmp_path):
        # mtime_ns changes even when the size does not; the stat check
        # must not trust a file on size alone.
        cache = ScanCache(tmp_path / "cache")
        scan_tree(project, specs, cache=cache)
        before = cache.stats()

        target = py_files(project)[0]
        original = target.read_text(encoding="utf-8")
        touch(target, text=original.replace("return", "yield "[:6], 1)
              if "return" in original else original)

        scan_tree(project, specs, cache=cache)
        after = cache.stats()
        assert after["files_read"] - before["files_read"] == 1


class TestIncrementalKnob:
    def test_incremental_false_rereads_everything(self, project, specs,
                                                  tmp_path):
        cache = ScanCache(tmp_path / "cache")
        first = scan_tree(project, specs, cache=cache)
        before = cache.stats()

        second = scan_tree(project, specs, cache=cache,
                           incremental=False)
        after = cache.stats()
        n = len(py_files(project))
        # Every file is re-read and re-hashed; the per-file entry cache
        # still short-circuits re-scanning, but no stat/tree trust.
        assert after["files_read"] - before["files_read"] == n
        assert after["stat_hits"] == before["stat_hits"]
        assert after["tree_hits"] == before["tree_hits"]
        assert after["hits"] - before["hits"] == n
        assert second.points == first.points

    def test_incremental_false_does_not_poison_manifests(
            self, project, specs, tmp_path):
        cache = ScanCache(tmp_path / "cache")
        scan_tree(project, specs, cache=cache)
        scan_tree(project, specs, cache=cache, incremental=False)
        # A later incremental scan still gets the tree hit.
        result = scan_tree(project, specs, cache=cache)
        stats = cache.stats()
        assert stats["tree_hits"] == 1
        assert result.files_scanned == len(py_files(project))


class TestFaultloadSensitivity:
    def test_different_specs_do_not_share_tree_entries(self, project,
                                                       tmp_path):
        cache = ScanCache(tmp_path / "cache")
        gsw = gswfit_model().enabled_specs()
        ext = extended_model().enabled_specs()
        a = scan_tree(project, gsw, cache=cache)
        b = scan_tree(project, ext, cache=cache)
        stats = cache.stats()
        assert stats["tree_hits"] == 0
        assert {p.spec_name for p in a.points}.isdisjoint(
            {p.spec_name for p in b.points}) or not a.points or not b.points
        # Each faultload then hits its own tree entry.
        scan_tree(project, gsw, cache=cache)
        scan_tree(project, ext, cache=cache)
        assert cache.stats()["tree_hits"] == 2
