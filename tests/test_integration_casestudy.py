"""End-to-end integration tests of the §V case study (sampled campaigns)."""

import pytest

from repro.casestudy import (
    CASE_STUDY_COMPONENTS,
    CASE_STUDY_RULES,
    case_study_config,
    run_case_study,
)
from repro.faultmodel.casestudy import ALL_CAMPAIGNS, campaign_model

pytestmark = pytest.mark.integration


class TestCampaignModels:
    def test_all_campaigns_compile(self):
        for campaign in ALL_CAMPAIGNS:
            model = campaign_model(campaign)
            assert model.compile()

    def test_unknown_campaign(self):
        with pytest.raises(KeyError):
            campaign_model("nope")

    def test_config_materializes_target(self, tmp_path):
        config = case_study_config("wrong_inputs", tmp_path)
        assert (tmp_path / "target" / "pyetcd" / "client.py").exists()
        assert config.rounds == 2


class TestWrongInputsCampaign:
    @pytest.fixture(scope="class")
    def outcome(self, tmp_path_factory):
        workspace = tmp_path_factory.mktemp("cs-wrong-inputs")
        return run_case_study(
            "wrong_inputs", workspace=workspace, sample=3,
            command_timeout=30, parallelism=2, seed=7,
        )

    def test_points_and_coverage(self, outcome):
        result, _report = outcome
        assert result.points_found >= 20
        assert result.coverage is not None
        # §V-B: every wrong-input injection point is covered.
        assert result.coverage.covered_count == result.points_found

    def test_experiments_completed(self, outcome):
        result, _report = outcome
        assert result.executed == 3
        # Allow one transient harness hiccup under CI load; the campaign
        # itself must never crash.
        completed = [e for e in result.experiments if e.completed]
        assert len(completed) >= 2

    def test_failures_observed_and_classified(self, outcome):
        result, report = outcome
        assert len(result.failures) >= 1
        counts = report.distribution.counts(include_no_failure=False)
        known_modes = {rule.mode for rule in CASE_STUDY_RULES} | {
            "workload_failure", "workload_crash", "timeout",
            "service_crash", "service_start_failed", "harness_error",
        }
        assert set(counts) <= known_modes

    def test_report_renders(self, outcome):
        _result, report = outcome
        text = report.render()
        assert "Campaign summary" in text
        assert "service availability" in text


class TestExternalApiCampaign:
    def test_partial_coverage_shape(self, tmp_path):
        # §V-A: only part of the external-API points are covered (error
        # handlers are not exercised by a fault-free run).
        result, _report = run_case_study(
            "external_api", workspace=tmp_path, sample=2,
            command_timeout=30, parallelism=2,
        )
        assert result.coverage is not None
        assert 0 < result.coverage.covered_count < result.points_found


class TestResourceHogCampaign:
    def test_hog_campaign_runs(self, tmp_path):
        # Serial execution: concurrent hog experiments starve each other on
        # small hosts, which is what the paper's N-1 rule prevents.
        result, report = run_case_study(
            "resource_hogs", workspace=tmp_path, sample=2,
            command_timeout=25, parallelism=1,
        )
        assert result.executed == 2
        assert all(e.completed for e in result.experiments)
        # Hog experiments must terminate within the timeout budget
        # (stale threads are daemons, so rounds finish).
        assert all(e.duration < 120 for e in result.experiments)


class TestPropagationComponents:
    def test_component_specs_wellformed(self):
        names = [component.name for component in CASE_STUDY_COMPONENTS]
        assert len(names) == len(set(names))
        assert any("<output>" in component.log_globs
                   for component in CASE_STUDY_COMPONENTS)
