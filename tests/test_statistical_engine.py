"""Statistical campaign engine: estimator, stopping rules, store, and
early-stopped campaigns end to end.

The integration tests drive real campaigns over a multi-function toy
project so the margin rule has room to trip before the plan is
exhausted, and assert the invariants the subsystem promises: the
stopped stream stays a valid resume point, the final progress snapshot
is consistent (no forever-``running`` shards), and the summaries carry
per-mode Wilson estimates aggregable across campaigns.
"""

import json
import textwrap

import pytest

from repro.orchestrator.campaign import Campaign, CampaignConfig
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.stream import ExperimentStream
from repro.stats.config import SamplingConfig
from repro.stats.estimate import (
    ModeEstimate,
    StreamingEstimator,
    wilson_interval,
    z_value,
)
from repro.stats.stopping import (
    AnyOf,
    MarginBelow,
    MaxExperiments,
    MinSampleFloor,
    StoppingMonitor,
    rule_from_sampling,
)
from repro.stats.store import StatsStore
from repro.workload.spec import WorkloadSpec


# -- unit: wilson / z ------------------------------------------------------------


class TestWilson:
    def test_z_values_match_normal_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-4)
        assert z_value(0.90) == pytest.approx(1.644854, abs=1e-4)

    def test_invalid_confidence_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                z_value(bad)

    def test_interval_contains_proportion(self):
        low, high = wilson_interval(3, 10)
        assert low < 0.3 < high
        assert 0.0 <= low and high <= 1.0

    def test_zero_trials_is_total_uncertainty(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_extreme_proportions_stay_in_bounds(self):
        low, high = wilson_interval(10, 10)
        assert high == 1.0 and low > 0.5
        low, high = wilson_interval(0, 10)
        assert low == 0.0 and high < 0.5

    def test_margin_shrinks_with_n(self):
        margins = []
        for n in (10, 100, 1000):
            low, high = wilson_interval(n // 2, n)
            margins.append((high - low) / 2)
        assert margins == sorted(margins, reverse=True)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)


# -- unit: streaming estimator ---------------------------------------------------


class TestStreamingEstimator:
    def test_counts_and_estimates(self):
        estimator = StreamingEstimator(confidence=0.95)
        for index in range(6):
            estimator.observe(f"e{index}", "workload_failure")
        for index in range(6, 10):
            estimator.observe(f"e{index}", "no_failure")
        assert estimator.n == 10
        estimate = estimator.estimate("workload_failure")
        assert estimate.count == 6
        assert estimate.proportion == pytest.approx(0.6)
        assert estimate.low < 0.6 < estimate.high

    def test_observe_is_idempotent_per_id(self):
        estimator = StreamingEstimator()
        assert estimator.observe("e1", "timeout")
        assert not estimator.observe("e1", "timeout")
        assert not estimator.observe("e1", "no_failure")
        assert estimator.n == 1
        assert estimator.estimate("timeout").count == 1

    def test_summary_shape(self):
        estimator = StreamingEstimator(confidence=0.9)
        estimator.observe("e1", "timeout")
        summary = estimator.summary()
        assert summary["experiments"] == 1
        assert summary["confidence"] == 0.9
        row = summary["modes"]["timeout"]
        assert set(row) == {"mode", "count", "experiments", "proportion",
                            "low", "high", "margin"}

    def test_unobserved_mode_estimates_zero(self):
        estimator = StreamingEstimator()
        estimator.observe("e1", "no_failure")
        estimate = estimator.estimate("timeout")
        assert estimate.count == 0
        assert estimate.proportion == 0.0
        assert estimate.low == 0.0

    def test_mode_estimate_margin(self):
        estimate = ModeEstimate(mode="x", count=1, n=4, proportion=0.25,
                                low=0.1, high=0.6)
        assert estimate.margin == pytest.approx(0.25)


# -- unit: stopping rules --------------------------------------------------------


def _estimator_with(counts: dict, confidence=0.95) -> StreamingEstimator:
    estimator = StreamingEstimator(confidence)
    index = 0
    for mode, count in counts.items():
        for _ in range(count):
            estimator.observe(f"e{index}", mode)
            index += 1
    return estimator


class TestStoppingRules:
    def test_margin_below_trips_once_tight(self):
        rule = MarginBelow(0.1)
        loose = _estimator_with({"workload_failure": 3, "no_failure": 2})
        assert rule.should_stop(loose) is None
        tight = _estimator_with({"workload_failure": 300, "no_failure": 200})
        reason = rule.should_stop(tight)
        assert reason is not None and "below 0.1" in reason

    def test_margin_never_trips_on_zero_evidence(self):
        assert MarginBelow(0.9).should_stop(StreamingEstimator()) is None

    def test_margin_tracks_named_modes_only(self):
        estimator = _estimator_with({"workload_failure": 200,
                                     "no_failure": 200})
        # All observed modes are tight at n=400...
        assert MarginBelow(0.06).should_stop(estimator) is not None
        # ...but a tracked mode list pins the criterion to those modes.
        assert MarginBelow(0.06, modes=["timeout"]).should_stop(
            estimator) is not None  # timeout count 0/400 is tight too
        few = _estimator_with({"workload_failure": 3})
        assert MarginBelow(0.06, modes=["timeout"]).should_stop(few) is None

    def test_max_experiments(self):
        rule = MaxExperiments(5)
        assert rule.should_stop(_estimator_with({"x": 4})) is None
        assert rule.should_stop(_estimator_with({"x": 5})) is not None

    def test_min_sample_floor_gates(self):
        rule = MinSampleFloor(10, MaxExperiments(1))
        assert rule.should_stop(_estimator_with({"x": 9})) is None
        assert rule.should_stop(_estimator_with({"x": 10})) is not None

    def test_any_of_first_reason_wins(self):
        rule = AnyOf([MaxExperiments(100), MaxExperiments(1)])
        reason = rule.should_stop(_estimator_with({"x": 2}))
        assert reason is not None and "n=2" in reason

    def test_rule_from_sampling(self):
        assert rule_from_sampling(SamplingConfig(max_experiments=5)) is None
        rule = rule_from_sampling(SamplingConfig(margin=0.05,
                                                 min_experiments=10))
        assert isinstance(rule, MinSampleFloor)
        assert rule.floor == 10
        bare = rule_from_sampling(SamplingConfig(margin=0.05))
        assert isinstance(bare, MarginBelow)


# -- unit: sampling config -------------------------------------------------------


class TestSamplingConfig:
    def test_round_trip(self):
        config = SamplingConfig(max_experiments=100, min_experiments=10,
                                margin=0.05, confidence=0.9,
                                stratify_by="component",
                                modes=["timeout", "workload_failure"])
        clone = SamplingConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert clone == config

    def test_validation(self):
        with pytest.raises(ValueError, match="max_experiments"):
            SamplingConfig(max_experiments=0)
        with pytest.raises(ValueError, match="min_experiments"):
            SamplingConfig(min_experiments=-1)
        with pytest.raises(ValueError, match="exceeds max"):
            SamplingConfig(max_experiments=5, min_experiments=6)
        with pytest.raises(ValueError, match="margin"):
            SamplingConfig(margin=1.5)
        with pytest.raises(ValueError, match="confidence"):
            SamplingConfig(confidence=0.0)
        with pytest.raises(ValueError, match="stratify_by"):
            SamplingConfig(stratify_by="function")

    def test_campaign_config_wire_round_trip(self, toy_project, toy_model,
                                             toy_workload):
        from repro.service.api import (
            campaign_config_from_dict,
            campaign_config_to_dict,
        )

        config = CampaignConfig(
            name="x", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload,
            sampling=SamplingConfig(max_experiments=50, margin=0.1,
                                    confidence=0.9, stratify_by="file",
                                    min_experiments=5),
        )
        wire = json.loads(json.dumps(campaign_config_to_dict(config)))
        clone = campaign_config_from_dict(wire)
        assert clone.sampling == config.sampling
        unsampled = CampaignConfig(
            name="x", target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload,
        )
        assert campaign_config_from_dict(
            campaign_config_to_dict(unsampled)).sampling is None


# -- unit: stopping monitor over streams -----------------------------------------


def _result_entry(experiment_id: str, failed: bool) -> ExperimentResult:
    from repro.common.procutil import CommandResult
    from repro.workload.runner import RoundResult

    result = ExperimentResult(experiment_id=experiment_id,
                              point={"file": "app.py", "component": "app",
                                     "spec_name": "WRR"},
                              spec_name="WRR", status="completed")
    command = CommandResult(
        command="cmd", returncode=1 if failed else 0, stdout="",
        stderr="WORKLOAD FAILURE: x" if failed else "", duration=0.01,
    )
    result.rounds.append(RoundResult(round_no=1, fault_enabled=True,
                                     commands=[command]))
    return result


class TestStoppingMonitor:
    def test_monitor_tails_canonical_and_shard_streams(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.write_meta({"campaign": "m"})
        monitor = StoppingMonitor(stream.path, MaxExperiments(4))
        assert monitor.check() is False
        for index in range(3):
            stream.append(_result_entry(f"e{index}", failed=True))
        assert monitor.check() is False
        assert monitor.estimator.n == 3
        # A sibling shard stream (the process backend's working file)
        # counts too, deduplicated by experiment id.
        shard = ExperimentStream(tmp_path / "experiments-0.jsonl")
        shard.append(_result_entry("e2", failed=True))  # duplicate
        shard.append(_result_entry("e3", failed=False))
        assert monitor.check() is True
        assert monitor.estimator.n == 4
        assert monitor.reason is not None
        block = monitor.summary_block()
        assert block["experiments"] == 4
        assert block["modes"]["workload_failure"]["count"] == 3
        assert block["reason"] == monitor.reason

    def test_monitor_latches(self, tmp_path):
        stream = ExperimentStream(tmp_path / "experiments.jsonl")
        stream.append(_result_entry("e0", failed=True))
        monitor = StoppingMonitor(stream.path, MaxExperiments(1))
        assert monitor.check() is True
        assert monitor.check() is True

    def test_monitor_ignores_partial_trailing_line(self, tmp_path):
        path = tmp_path / "experiments.jsonl"
        stream = ExperimentStream(path)
        stream.append(_result_entry("e0", failed=True))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"experiment_id": "e1", "status": "comp')
        monitor = StoppingMonitor(path, MaxExperiments(10))
        monitor.check()
        assert monitor.estimator.n == 1
        # Once the line completes, it is picked up.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('leted"}\n')
        monitor.check()
        assert monitor.estimator.n == 2


# -- unit: cross-campaign store --------------------------------------------------


def _write_stream(path, campaign, results, seed=7):
    stream = ExperimentStream(path)
    stream.write_meta({"campaign": campaign, "seed": seed,
                       "faultload": "digest", "target": "/t"})
    for result in results:
        stream.append(result)
    return path


class TestStatsStore:
    def test_add_indexes_campaign_meta(self, tmp_path):
        stream = _write_stream(tmp_path / "a.jsonl", "alpha",
                               [_result_entry("e0", True)])
        store = StatsStore(tmp_path / "store")
        entry = store.add(stream)
        assert entry["campaign"] == "alpha"
        assert entry["seed"] == 7
        assert entry["experiments"] == 1
        assert store.campaigns()[0]["campaign"] == "alpha"

    def test_re_adding_replaces(self, tmp_path):
        path = _write_stream(tmp_path / "a.jsonl", "alpha",
                             [_result_entry("e0", True)])
        store = StatsStore(tmp_path / "store")
        store.add(path)
        ExperimentStream(path).append(_result_entry("e1", True))
        store.add(path)
        rows = store.campaigns()
        assert len(rows) == 1
        assert rows[0]["experiments"] == 2

    def test_missing_stream_rejected(self, tmp_path):
        store = StatsStore(tmp_path / "store")
        with pytest.raises(FileNotFoundError):
            store.add(tmp_path / "nope.jsonl")

    def test_aggregate_across_campaigns(self, tmp_path):
        store = StatsStore(tmp_path / "store")
        store.add(_write_stream(
            tmp_path / "a.jsonl", "alpha",
            [_result_entry("e0", True), _result_entry("e1", False)]))
        store.add(_write_stream(
            tmp_path / "b.jsonl", "beta",
            # Same experiment ids on purpose: different campaigns both
            # count (the dedup key is per stream).
            [_result_entry("e0", True), _result_entry("e1", True)]))
        report = store.aggregate()
        assert report["experiments"] == 4
        assert report["modes"]["workload_failure"]["count"] == 3
        assert len(report["campaigns"]) == 2
        only_alpha = store.aggregate(campaign="alpha")
        assert only_alpha["experiments"] == 2
        assert only_alpha["modes"]["workload_failure"]["count"] == 1

    def test_aggregate_filters_by_point_fields(self, tmp_path):
        store = StatsStore(tmp_path / "store")
        store.add(_write_stream(tmp_path / "a.jsonl", "alpha",
                                [_result_entry("e0", True)]))
        assert store.aggregate(file="app.py")["experiments"] == 1
        assert store.aggregate(file="other.py")["experiments"] == 0
        assert store.aggregate(component="app")["experiments"] == 1
        assert store.aggregate(spec="WRR")["experiments"] == 1
        assert store.aggregate(spec="MFC")["experiments"] == 0

    def test_aggregate_reports_missing_streams(self, tmp_path):
        store = StatsStore(tmp_path / "store")
        path = _write_stream(tmp_path / "a.jsonl", "alpha",
                             [_result_entry("e0", True)])
        store.add(path)
        path.unlink()
        report = store.aggregate()
        assert report["experiments"] == 0
        assert report["missing_streams"] == [str(path.resolve())]


# -- integration: early-stopped campaigns ----------------------------------------


N_FUNCTIONS = 10


def _many_point_project(tmp_path):
    """A toy project with one WRR injection point per function, so the
    margin rule can trip long before the plan is exhausted."""
    project = tmp_path / "many"
    project.mkdir()
    functions = []
    checks = []
    for index in range(N_FUNCTIONS):
        functions.append(textwrap.dedent(
            f"""
            def f{index}(x):
                acc = x + {index}
                return acc * 2
            """
        ).strip())
        checks.append(
            f"if app.f{index}(3) != (3 + {index}) * 2:\n"
            f"    print('WORKLOAD FAILURE: f{index}', file=sys.stderr)\n"
            f"    sys.exit(1)"
        )
    (project / "app.py").write_text("\n\n\n".join(functions) + "\n")
    (project / "run.py").write_text(
        "import sys\n\nimport app\n\n" + "\n".join(checks)
        + "\nprint('WORKLOAD SUCCESS')\n"
    )
    return project


def _stopping_config(project, toy_model, workspace, backend="thread",
                     shards=1, **overrides):
    defaults = dict(
        name="stat",
        target_dir=project,
        fault_model=toy_model,
        workload=WorkloadSpec(commands=["{python} run.py"],
                              command_timeout=30.0),
        injectable_files=["app.py"],
        coverage=False,
        parallelism=1,
        backend=backend,
        shards=shards,
        seed=7,
        workspace=workspace,
        sampling=SamplingConfig(margin=0.5, confidence=0.9,
                                min_experiments=2),
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


@pytest.mark.integration
class TestEarlyStoppedCampaign:
    @pytest.mark.parametrize("backend,shards", [("thread", 2),
                                                ("process", 2)])
    def test_rule_stop_is_consistent_and_resumable(
            self, tmp_path, toy_model, backend, shards):
        project = _many_point_project(tmp_path)
        workspace = tmp_path / f"ws-{backend}"
        snapshots = []
        config = _stopping_config(project, toy_model, workspace,
                                  backend=backend, shards=shards)
        result = Campaign(config).run(on_progress=snapshots.append)

        # The rule — not a cancel — ended the run: normal return with a
        # stopped_early block carrying n + Wilson estimates.
        assert result.stopped_early is not None
        block = result.stopped_early
        assert block["reason"]
        assert block["experiments"] == result.executed >= 2
        failure = block["modes"]["workload_failure"]
        assert failure["count"] == result.executed  # every fault bites
        assert 0.0 <= failure["low"] <= failure["high"] <= 1.0
        assert failure["margin"] < 0.5
        assert result.summary()["stopped_early"] == block
        assert result.population == N_FUNCTIONS

        # Satellite: the final progress snapshot is consistent — done
        # counts match the stream and no shard is left "running".
        assert snapshots, "backend emitted no progress"
        final = snapshots[-1]
        recorded = len(ExperimentStream(
            workspace / "experiments.jsonl").recorded_ids())
        assert final["experiments_done"] == recorded == result.executed
        assert final["experiments_total"] == N_FUNCTIONS
        states = {shard["state"] for shard in final["shards"]}
        assert "running" not in states

        # The stream is a valid resume point: dropping the sampling
        # policy and re-running executes exactly the remainder.
        resume_config = _stopping_config(project, toy_model, workspace,
                                         backend=backend, shards=shards,
                                         sampling=None)
        resumed = Campaign(resume_config).run()
        assert resumed.resumed == result.executed
        assert resumed.executed == N_FUNCTIONS
        assert resumed.stopped_early is None

    def test_thread_backend_stops_before_exhaustion(self, tmp_path,
                                                    toy_model):
        # With parallelism 1 the thread backend polls the monitor
        # between dispatches, so the stop lands well short of the plan.
        project = _many_point_project(tmp_path)
        config = _stopping_config(project, toy_model, tmp_path / "ws")
        result = Campaign(config).run()
        assert result.stopped_early is not None
        assert 2 <= result.executed < N_FUNCTIONS

    def test_user_cancel_still_raises(self, tmp_path, toy_model):
        from repro.orchestrator.campaign import CampaignCancelled

        project = _many_point_project(tmp_path)
        config = _stopping_config(project, toy_model, tmp_path / "ws")
        calls = {"n": 0}

        def cancel():
            calls["n"] += 1
            return calls["n"] > 3

        with pytest.raises(CampaignCancelled):
            Campaign(config).run(cancel=cancel)

    def test_mode_estimates_reported_without_early_stop(self, tmp_path,
                                                        toy_model):
        # A margin too tight to reach within the plan: the campaign
        # completes normally but still reports final estimates.
        project = _many_point_project(tmp_path)
        config = _stopping_config(
            project, toy_model, tmp_path / "ws",
            sampling=SamplingConfig(margin=0.01, confidence=0.99),
        )
        result = Campaign(config).run()
        assert result.stopped_early is None
        assert result.executed == N_FUNCTIONS
        assert result.mode_estimates is not None
        assert result.mode_estimates["experiments"] == N_FUNCTIONS

    def test_stratified_max_sample_covers_every_file(self, tmp_path,
                                                     toy_model):
        # max_experiments caps the plan via the stratified monotone
        # sampler; with strata = files there is one file, so this just
        # exercises the sampled path end to end deterministically.
        project = _many_point_project(tmp_path)
        config = _stopping_config(
            project, toy_model, tmp_path / "ws",
            sampling=SamplingConfig(max_experiments=4,
                                    stratify_by="file"),
        )
        result = Campaign(config).run()
        assert result.stopped_early is None
        assert result.executed == 4
        assert result.points_planned == 4
        assert result.population == N_FUNCTIONS


# -- integration: service / HTTP / CLI surface -----------------------------------


@pytest.mark.integration
class TestStatsService:
    def _submit(self, service, name, toy_project, toy_model, toy_workload,
                tmp_path):
        config = CampaignConfig(
            name=name, target_dir=toy_project, fault_model=toy_model,
            workload=toy_workload, injectable_files=["app.py"],
            coverage=False, parallelism=1, seed=7,
            workspace=tmp_path / f"{name}-ws",
        )
        job = service.submit_campaign(config, block=True)
        assert job.status == "completed", job.error
        return job

    def test_completed_jobs_register_and_aggregate(
            self, tmp_path, toy_project, toy_model, toy_workload):
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path / "svc")
        try:
            self._submit(service, "alpha", toy_project, toy_model,
                         toy_workload, tmp_path)
            self._submit(service, "beta", toy_project, toy_model,
                         toy_workload, tmp_path)
            rows = service.stats_campaigns()
            assert sorted(row["campaign"] for row in rows) == \
                ["alpha", "beta"]
            report = service.stats_aggregate()
            assert report["experiments"] == 4  # 2 campaigns x 2 points
            assert len(report["campaigns"]) == 2
            assert "workload_failure" in report["modes"]
        finally:
            service.close()

    def test_http_and_client_mirror_the_store(
            self, tmp_path, toy_project, toy_model, toy_workload):
        from repro.service.client import ProFIPyClient
        from repro.service.http import start_server
        from repro.service.service import ProFIPyService

        service = ProFIPyService(tmp_path / "svc")
        server, _thread = start_server(service)
        try:
            client = ProFIPyClient(server.url)
            self._submit(service, "alpha", toy_project, toy_model,
                         toy_workload, tmp_path)
            assert client.stats_campaigns() == service.stats_campaigns()
            via_http = client.stats_aggregate(campaign="alpha")
            in_process = service.stats_aggregate(campaign="alpha")
            assert via_http["experiments"] == in_process["experiments"]
            assert via_http["modes"] == json.loads(
                json.dumps(in_process["modes"]))
            # Filters ride the query string.
            assert client.stats_aggregate(
                spec="NOPE")["experiments"] == 0
            with pytest.raises(ValueError):
                client.stats_aggregate(confidence=2.0)
        finally:
            server.shutdown()
            service.close()

    def test_sampled_job_summary_carries_stopped_early(
            self, tmp_path, toy_model):
        from repro.service.service import ProFIPyService

        project = _many_point_project(tmp_path)
        service = ProFIPyService(tmp_path / "svc")
        try:
            config = _stopping_config(project, toy_model,
                                      tmp_path / "job-ws")
            job = service.submit_campaign(config, block=True)
            assert job.status == "completed", job.error
            summary = service.result_summary(job.job_id)
            assert summary["stopped_early"] is not None
            assert summary["stopped_early"]["experiments"] >= 2
            # /v1/jobs/{id} progress: no shard left running.
            progress = service.job(job.job_id).progress
            assert progress is not None
            states = {shard["state"] for shard in progress["shards"]}
            assert "running" not in states
            # The early-stopped stream registered in the store.
            rows = service.stats_campaigns()
            assert rows and rows[0]["stopped_early"] is True
            # The text report renders the Wilson table.
            assert "Failure mode estimates" in \
                service.report_text(job.job_id)
        finally:
            service.close()


@pytest.mark.integration
class TestStatsCLI:
    def test_stats_cli_aggregates_two_campaigns(self, tmp_path, capsys):
        from repro.cli import main

        _write_stream(tmp_path / "a.jsonl", "alpha",
                      [_result_entry("e0", True),
                       _result_entry("e1", False)])
        _write_stream(tmp_path / "b.jsonl", "beta",
                      [_result_entry("e0", True)])
        workspace = str(tmp_path / "ws")
        assert main(["stats", "--workspace", workspace, "add",
                     str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 0
        capsys.readouterr()
        assert main(["stats", "--workspace", workspace, "list"]) == 0
        listing = capsys.readouterr().out
        assert "alpha" in listing and "beta" in listing
        assert main(["stats", "--workspace", workspace, "aggregate"]) == 0
        out = capsys.readouterr().out
        assert "2 campaign(s), 3 experiments" in out
        assert "workload_failure" in out
        assert main(["stats", "--workspace", workspace, "aggregate",
                     "--campaign", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "1 campaign(s), 2 experiments" in out

    def test_campaign_parser_accepts_sampling_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "campaign", "t", "--name", "n", "--model", "gswfit",
            "--run-cmd", "true", "--sample", "100",
            "--sample-margin", "0.05", "--sample-confidence", "0.9",
            "--min-sample", "10", "--stratify-by", "component",
        ])
        assert args.sample == 100
        assert args.sample_margin == 0.05
        assert args.sample_confidence == 0.9
        assert args.min_sample == 10
        assert args.stratify_by == "component"
