"""Property-based tests (hypothesis) for core invariants.

The headline property, on randomly generated programs: for every match of
every pre-defined fault operator, the mutated source still parses — both
in permanent and trigger mode — and coverage instrumentation never breaks
the program either.  Further properties cover the DSL parameter splitter,
corruption primitives, and the etcd store's index/consistency invariants.
"""

import ast

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.rng import SeededRandom
from repro.dsl.params import split_top_level
from repro.etcdsim.errors import EtcdError
from repro.etcdsim.store import EtcdStore
from repro.faultmodel.library import extended_model, gswfit_model
from repro.mutator.mutate import Mutator
from repro.scanner.matcher import Matcher

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- a tiny random-program generator (builds ASTs, so always valid) ----------

NAMES = ("a", "b", "node", "value", "delete_x", "helper")
FUNC_NAMES = ("foo", "delete_port", "utils.execute", "os.path.join")


def _name_node(name):
    node = None
    for part in name.split("."):
        if node is None:
            node = ast.Name(id=part, ctx=ast.Load())
        else:
            node = ast.Attribute(value=node, attr=part, ctx=ast.Load())
    return node


@st.composite
def expressions(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 3))
    if choice == 0:
        return ast.Name(id=draw(st.sampled_from(NAMES)), ctx=ast.Load())
    if choice == 1:
        return ast.Constant(value=draw(st.integers(-50, 50)))
    if choice == 2:
        return ast.Constant(value=draw(st.sampled_from(
            ("x", "-f", "name-1", "plain")
        )))
    if choice == 3:
        return ast.BinOp(
            left=draw(expressions(depth=depth + 1)),
            op=draw(st.sampled_from((ast.Add(), ast.Sub(), ast.Mult()))),
            right=draw(expressions(depth=depth + 1)),
        )
    return ast.Call(
        func=_name_node(draw(st.sampled_from(FUNC_NAMES))),
        args=draw(st.lists(expressions(depth=depth + 1), max_size=3)),
        keywords=[],
    )


@st.composite
def statements(draw, depth=0):
    choice = draw(st.integers(0, 5 if depth < 2 else 2))
    if choice == 0:
        return ast.Expr(value=draw(expressions(depth=depth)))
    if choice == 1:
        return ast.Assign(
            targets=[ast.Name(id=draw(st.sampled_from(NAMES)),
                              ctx=ast.Store())],
            value=draw(expressions(depth=depth)),
        )
    if choice == 2:
        return ast.Return(value=draw(expressions(depth=depth)))
    if choice == 3:
        return ast.If(
            test=draw(expressions(depth=depth + 1)),
            body=draw(st.lists(statements(depth=depth + 1), min_size=1,
                               max_size=3)),
            orelse=draw(st.lists(statements(depth=depth + 1), max_size=2)),
        )
    if choice == 4:
        return ast.For(
            target=ast.Name(id=draw(st.sampled_from(NAMES)),
                            ctx=ast.Store()),
            iter=draw(expressions(depth=depth + 1)),
            body=draw(st.lists(statements(depth=depth + 1), min_size=1,
                               max_size=3)),
            orelse=[],
        )
    return ast.FunctionDef(
        name=draw(st.sampled_from(("f", "g", "handler"))),
        args=ast.arguments(posonlyargs=[], args=[], kwonlyargs=[],
                           kw_defaults=[], defaults=[]),
        body=draw(st.lists(statements(depth=depth + 1), min_size=1,
                           max_size=4)),
        decorator_list=[],
    )


@st.composite
def programs(draw):
    module = ast.Module(
        body=draw(st.lists(statements(), min_size=1, max_size=6)),
        type_ignores=[],
    )
    ast.fix_missing_locations(module)
    return ast.unparse(module) + "\n"


ALL_MODELS = gswfit_model().compile() + extended_model().compile()


class TestMutantsAlwaysParse:
    @SETTINGS
    @given(source=programs(), seed=st.integers(0, 10**6))
    def test_permanent_mutants_parse(self, source, seed):
        tree = ast.parse(source)
        for model in ALL_MODELS:
            matches = Matcher(model).find_matches(tree)
            mutator = Mutator(trigger=False, rng=SeededRandom(seed))
            for ordinal in range(min(len(matches), 3)):
                mutation = mutator.mutate_source(source, model, ordinal)
                ast.parse(mutation.source)

    @SETTINGS
    @given(source=programs())
    def test_trigger_mutants_parse_and_keep_original(self, source):
        tree = ast.parse(source)
        for model in ALL_MODELS:
            matches = Matcher(model).find_matches(tree)
            mutator = Mutator(trigger=True)
            for ordinal in range(min(len(matches), 2)):
                mutation = mutator.mutate_source(source, model, ordinal)
                mutated_tree = ast.parse(mutation.source)
                # The trigger keeps the original statements in an else arm.
                assert "__pfp_rt__.enabled" in mutation.source
                assert mutated_tree is not None

    @SETTINGS
    @given(source=programs())
    def test_instrumentation_parses(self, source):
        for model in ALL_MODELS[:4]:
            tree = ast.parse(source)
            matches = Matcher(model).find_matches(tree)
            targets = [
                (model, ordinal, f"{model.name}:{ordinal}")
                for ordinal in range(min(len(matches), 3))
            ]
            instrumented = Mutator().instrument_source(source, targets)
            ast.parse(instrumented)
            assert instrumented.count("__pfp_rt__.cover") == len(targets)

    @SETTINGS
    @given(source=programs())
    def test_match_windows_in_bounds(self, source):
        tree = ast.parse(source)
        for model in ALL_MODELS:
            for match in Matcher(model).find_matches(tree):
                body = getattr(match.owner, match.field)
                assert 0 <= match.start < match.end <= len(body)


class TestSplitTopLevel:
    @SETTINGS
    @given(st.lists(st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"),
            whitelist_characters="_*.- ",
        ),
        min_size=1, max_size=10,
    ), min_size=1, max_size=5))
    def test_join_split_round_trip(self, parts):
        joined = ";".join(parts)
        assert split_top_level(joined, ";") == parts

    @SETTINGS
    @given(st.text(alphabet="ab{};|'", max_size=30))
    def test_never_raises(self, text):
        split_top_level(text, ";")


class TestCorruption:
    @SETTINGS
    @given(st.text(min_size=1, max_size=64), st.integers(0, 10**6))
    def test_corrupt_string_always_differs(self, value, seed):
        assert SeededRandom(seed).corrupt_string(value) != value

    @SETTINGS
    @given(st.text(max_size=64), st.integers(0, 10**6))
    def test_corrupt_string_deterministic(self, value, seed):
        first = SeededRandom(seed).corrupt_string(value)
        second = SeededRandom(seed).corrupt_string(value)
        assert first == second

    @SETTINGS
    @given(st.integers(-10**9, 10**9), st.integers(0, 10**6))
    def test_corrupt_int_always_differs(self, value, seed):
        assert SeededRandom(seed).corrupt_int(value) != value


# -- etcd store invariants ------------------------------------------------------

op_strategy = st.sampled_from(["set", "delete", "cas", "mkdir", "ttl"])
key_strategy = st.sampled_from(["/a", "/b", "/dir/x", "/dir/y", "/deep/p/q"])


class TestStoreInvariants:
    @SETTINGS
    @given(st.lists(st.tuples(op_strategy, key_strategy,
                              st.text(alphabet="xyz09", max_size=5)),
                    max_size=30))
    def test_indices_strictly_monotonic(self, ops):
        store = EtcdStore()
        last_index = 0
        for op, key, value in ops:
            try:
                if op == "set":
                    event = store.set(key, value)
                elif op == "delete":
                    event = store.delete(key, recursive=True)
                elif op == "cas":
                    event = store.compare_and_swap(key, value,
                                                   prev_value="x")
                elif op == "mkdir":
                    event = store.set(key, dir=True)
                else:
                    event = store.set(key, value, ttl=100)
            except EtcdError:
                continue
            assert event.index > last_index or event.action == "get"
            last_index = max(last_index, event.index)

    @SETTINGS
    @given(st.lists(st.tuples(key_strategy,
                              st.text(alphabet="xyz09", max_size=5)),
                    min_size=1, max_size=20))
    def test_get_after_set_reads_back(self, writes):
        store = EtcdStore()
        expected = {}
        for key, value in writes:
            try:
                store.set(key, value)
                expected[key] = value
            except EtcdError:
                # e.g. key is now a directory parent; skip.
                expected.pop(key, None)
        for key, value in expected.items():
            assert store.get(key).node["value"] == value

    @SETTINGS
    @given(st.lists(key_strategy, min_size=1, max_size=10, unique=True))
    def test_delete_removes_exactly_the_key(self, keys):
        store = EtcdStore()
        written = []
        for key in keys:
            try:
                store.set(key, "v")
                written.append(key)
            except EtcdError:
                pass
        if not written:
            return
        victim = written[0]
        store.delete(victim, recursive=True)
        for key in written[1:]:
            if key.startswith(victim + "/"):
                continue
            store.get(key)  # must not raise
        with pytest.raises(EtcdError):
            store.get(victim)
