"""Shared fixtures: a tiny injectable project used across orchestrator tests."""

import textwrap

import pytest

from repro.dsl.parser import parse_spec
from repro.faultmodel.model import FaultModel
from repro.workload.spec import WorkloadSpec

TOY_APP = textwrap.dedent(
    """
    \"\"\"Toy target application.\"\"\"


    def compute(x):
        steps = []
        steps.append('start')
        result = x * 2
        steps.append('done')
        return result


    def unused_helper(x):
        marker = []
        marker.append('unused')
        result = x + 1
        marker.append('end')
        return result
    """
).strip() + "\n"

TOY_RUN = textwrap.dedent(
    """
    import sys

    import app

    value = app.compute(3)
    if value != 6:
        print("WORKLOAD FAILURE: compute(3) ==", value, file=sys.stderr)
        sys.exit(1)
    print("WORKLOAD SUCCESS")
    """
).strip() + "\n"

#: Wrong-return fault: matches one `return` per toy function.
TOY_SPEC = """
change {
    $BLOCK{tag=pre; stmts=1,*}
    return $EXPR#v
} into {
    $BLOCK{tag=pre}
    return -1
}
"""


@pytest.fixture
def toy_project(tmp_path):
    """A pristine toy target project directory."""
    project = tmp_path / "toy"
    project.mkdir()
    (project / "app.py").write_text(TOY_APP)
    (project / "run.py").write_text(TOY_RUN)
    return project


@pytest.fixture
def toy_model():
    model = FaultModel(name="toy")
    model.add(parse_spec(TOY_SPEC, name="WRR"),
              description="wrong return value")
    return model


@pytest.fixture
def toy_workload():
    return WorkloadSpec(commands=["{python} run.py"], command_timeout=30.0)
