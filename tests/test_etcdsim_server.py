"""HTTP-level tests of the etcd simulator server (raw wire protocol)."""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.etcdsim import EtcdServer


@pytest.fixture(scope="module")
def server():
    with EtcdServer() as instance:
        yield instance


@pytest.fixture
def base(server):
    return f"http://{server.host}:{server.port}"


def request(base, method, path, fields=None):
    data = urllib.parse.urlencode(fields).encode() if fields else None
    req = urllib.request.Request(base + path, data=data, method=method)
    req.add_header("Content-Type", "application/x-www-form-urlencoded")
    response = urllib.request.urlopen(req, timeout=5)
    return response.status, json.loads(response.read().decode())


def request_error(base, method, path, fields=None):
    try:
        request(base, method, path, fields)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())
    raise AssertionError("expected an HTTP error")


class TestWireProtocol:
    def test_version_endpoint(self, base):
        status, payload = request(base, "GET", "/version")
        assert status == 200
        assert "etcdserver" in payload

    def test_stats_endpoint(self, base):
        status, payload = request(base, "GET", "/v2/stats/store")
        assert status == 200
        assert "etcdIndex" in payload

    def test_put_returns_etcd_shape(self, base):
        status, payload = request(base, "PUT", "/v2/keys/wire/a",
                                  {"value": "1"})
        assert status in (200, 201)
        assert payload["action"] in ("create", "set")
        node = payload["node"]
        assert node["key"] == "/wire/a"
        assert node["value"] == "1"
        assert node["modifiedIndex"] >= node["createdIndex"]

    def test_get_missing_is_404_code_100(self, base):
        status, payload = request_error(base, "GET", "/v2/keys/wire/nope")
        assert status == 404
        assert payload["errorCode"] == 100
        assert "index" in payload

    def test_cas_conflict_is_412_code_101(self, base):
        request(base, "PUT", "/v2/keys/wire/cas", {"value": "a"})
        status, payload = request_error(
            base, "PUT", "/v2/keys/wire/cas",
            {"value": "b", "prevValue": "zzz"},
        )
        assert status == 412
        assert payload["errorCode"] == 101

    def test_prev_exist_conflict_is_412_code_105(self, base):
        request(base, "PUT", "/v2/keys/wire/once", {"value": "a"})
        status, payload = request_error(
            base, "PUT", "/v2/keys/wire/once",
            {"value": "b", "prevExist": "false"},
        )
        assert status == 412
        assert payload["errorCode"] == 105

    def test_invalid_ttl_is_400(self, base):
        status, payload = request_error(
            base, "PUT", "/v2/keys/wire/ttl", {"value": "x", "ttl": "-3"},
        )
        assert status == 400
        assert payload["errorCode"] == 209

    def test_invalid_bool_param_is_400(self, base):
        request(base, "PUT", "/v2/keys/wire/b", {"value": "x"})
        status, payload = request_error(
            base, "GET", "/v2/keys/wire/b?recursive=banana"
        )
        assert status == 400

    def test_unknown_path_is_404(self, base):
        status, _payload = request_error(base, "GET", "/v3/keys/x")
        assert status == 404

    def test_post_creates_in_order_keys(self, base):
        _s, first = request(base, "POST", "/v2/keys/wire/queue",
                            {"value": "one"})
        _s, second = request(base, "POST", "/v2/keys/wire/queue",
                             {"value": "two"})
        assert first["node"]["key"] < second["node"]["key"]

    def test_delete_with_query_params(self, base):
        request(base, "PUT", "/v2/keys/wire/tree/leaf", {"value": "x"})
        status, payload = request(
            base, "DELETE", "/v2/keys/wire/tree?recursive=true"
        )
        assert status == 200
        assert payload["action"] == "delete"

    def test_wait_timeout_is_408(self, base):
        request(base, "PUT", "/v2/keys/wire/w", {"value": "x"})
        status, payload = request_error(
            base, "GET",
            "/v2/keys/wire/quiet?wait=true&waitIndex=999999"
            "&waitTimeout=0.2",
        )
        assert status == 408
        assert payload["errorCode"] == 401

    def test_wait_returns_historic_event(self, base):
        _s, written = request(base, "PUT", "/v2/keys/wire/watched",
                              {"value": "v"})
        index = written["node"]["modifiedIndex"]
        status, payload = request(
            base, "GET",
            f"/v2/keys/wire/watched?wait=true&waitIndex={index}",
        )
        assert status == 200
        assert payload["node"]["value"] == "v"

    def test_quoted_keys_unquoted(self, base):
        quoted = urllib.parse.quote("/wire/with space")
        status, payload = request(base, "PUT", f"/v2/keys{quoted}",
                                  {"value": "x"})
        assert status in (200, 201)
        assert payload["node"]["key"] == "/wire/with space"

    def test_sorted_listing_via_query(self, base):
        request(base, "PUT", "/v2/keys/wire/dir/b", {"value": "2"})
        request(base, "PUT", "/v2/keys/wire/dir/a", {"value": "1"})
        _s, payload = request(base, "GET",
                              "/v2/keys/wire/dir?sorted=true")
        keys = [node["key"] for node in payload["node"]["nodes"]]
        assert keys == sorted(keys)

    def test_x_etcd_index_header(self, base):
        req = urllib.request.Request(base + "/version")
        response = urllib.request.urlopen(req, timeout=5)
        assert "X-Etcd-Index" in response.headers


class TestServerLifecycle:
    def test_ephemeral_port_bound(self):
        with EtcdServer(port=0) as instance:
            assert instance.port > 0

    def test_two_servers_coexist(self):
        with EtcdServer() as first, EtcdServer() as second:
            assert first.port != second.port

    def test_main_writes_port_file(self, tmp_path):
        import subprocess
        import sys
        import time

        port_file = tmp_path / "port.txt"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.etcdsim.server",
             "--port", "0", "--port-file", str(port_file)],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 10
            while time.time() < deadline and not port_file.exists():
                time.sleep(0.05)
            assert port_file.exists()
            assert int(port_file.read_text()) > 0
        finally:
            proc.terminate()
            proc.wait(timeout=10)
