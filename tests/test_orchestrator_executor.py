"""Tests for two-round execution and coverage on the toy target."""

import pytest

from repro.orchestrator.coverage import reduce_plan, run_coverage
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file


@pytest.fixture
def image(toy_project, tmp_path):
    return SandboxImage.build(toy_project, tmp_path / "image")


@pytest.fixture
def models(toy_model):
    return {model.name: model for model in toy_model.compile()}


@pytest.fixture
def scan(toy_project, toy_model):
    return scan_file(toy_project / "app.py", toy_model.compile(),
                     root=toy_project)


@pytest.fixture
def plan(scan):
    return Plan.from_points(scan.points)


class TestScanToy:
    def test_two_points_found(self, scan):
        # One return in compute(), one in unused_helper().
        assert len(scan.points) == 2


class TestExecutor:
    def test_trigger_round1_fails_round2_recovers(self, image, models, plan,
                                                  toy_workload, tmp_path):
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes", trigger=True,
        )
        result = executor.run(plan.experiments[0])
        assert result.completed, result.error
        assert result.failed_round1
        assert not result.failed_round2
        assert result.available_in_round2

    def test_permanent_mode_fails_both_rounds(self, image, models, plan,
                                              toy_workload, tmp_path):
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes", trigger=False,
        )
        result = executor.run(plan.experiments[0])
        assert result.failed_round1
        assert result.failed_round2
        assert not result.available_in_round2

    def test_uncovered_fault_causes_no_failure(self, image, models, plan,
                                               toy_workload, tmp_path):
        # The second point lives in unused_helper(): never called.
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes", trigger=True,
        )
        result = executor.run(plan.experiments[1])
        assert result.completed
        assert not result.failed_round1
        assert not result.failed_round2

    def test_snippets_recorded(self, image, models, plan, toy_workload,
                               tmp_path):
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes",
        )
        result = executor.run(plan.experiments[0])
        assert "return result" in result.original_snippet
        assert "return -1" in result.mutated_snippet

    def test_artifacts_persisted(self, image, models, plan, toy_workload,
                                 tmp_path):
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes", artifacts_dir=artifacts,
        )
        result = executor.run(plan.experiments[0])
        saved = artifacts / f"{result.experiment_id}.json"
        assert saved.exists()
        from repro.orchestrator.experiment import ExperimentResult

        loaded = ExperimentResult.load(saved)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.failed_round1 == result.failed_round1

    def test_fault_free_run_passes(self, image, models, toy_workload,
                                   tmp_path):
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=tmp_path / "boxes",
        )
        result = executor.run_fault_free()
        assert result.completed
        assert not result.failed_round1

    def test_sandboxes_cleaned_up(self, image, models, plan, toy_workload,
                                  tmp_path):
        base = tmp_path / "boxes"
        executor = ExperimentExecutor(
            image=image, workload=toy_workload, models=models,
            base_dir=base,
        )
        executor.run(plan.experiments[0])
        assert not any(base.iterdir()) if base.exists() else True


class TestCoverage:
    def test_covered_points_detected(self, image, models, plan,
                                     toy_workload, tmp_path):
        report = run_coverage(image, toy_workload, plan.points, models,
                              tmp_path / "boxes")
        assert report.total == 2
        assert report.covered_count == 1
        [covered_id] = report.covered
        assert "app.py" in covered_id
        assert not report.workload_failed

    def test_reduce_plan(self, image, models, plan, toy_workload, tmp_path):
        report = run_coverage(image, toy_workload, plan.points, models,
                              tmp_path / "boxes")
        reduced = reduce_plan(plan, report)
        assert len(reduced) == 1

    def test_empty_points(self, image, models, toy_workload, tmp_path):
        report = run_coverage(image, toy_workload, [], models,
                              tmp_path / "boxes")
        assert report.total == 0
        assert report.ratio == 0.0
