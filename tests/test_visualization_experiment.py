"""Tests for experiment-level timeline rendering."""

from repro.analysis.visualization import experiment_spans, render_experiment
from repro.common.procutil import CommandResult
from repro.orchestrator.experiment import ExperimentResult
from repro.workload.runner import RoundResult


def build_result():
    result = ExperimentResult(experiment_id="exp-7", point={},
                              spec_name="MFC")
    result.rounds.append(RoundResult(
        round_no=1, fault_enabled=True,
        commands=[
            CommandResult(command="python run.py --phase 1", returncode=1,
                          stdout="", stderr="boom", duration=1.5),
        ],
        duration=1.6,
    ))
    result.rounds.append(RoundResult(
        round_no=2, fault_enabled=False,
        commands=[
            CommandResult(command="python run.py --phase 2", returncode=0,
                          stdout="ok", stderr="", duration=1.0),
        ],
        duration=1.1,
    ))
    return result


class TestExperimentSpans:
    def test_one_lane_per_round_plus_commands(self):
        spans = experiment_spans(build_result())
        services = {span.service for span in spans}
        assert services == {"round-1", "round-2"}
        assert len(spans) == 4  # 2 round spans + 2 command spans

    def test_round1_marked_failed(self):
        spans = experiment_spans(build_result())
        round1 = [s for s in spans if s.service == "round-1"
                  and s.name == "fault ON"][0]
        assert round1.status.startswith("error")

    def test_command_failure_status(self):
        spans = experiment_spans(build_result())
        failed = [s for s in spans if s.status == "error: exit 1"]
        assert len(failed) == 1

    def test_rounds_sequential_on_timeline(self):
        spans = experiment_spans(build_result())
        round1 = next(s for s in spans if s.name == "fault ON")
        round2 = next(s for s in spans if s.name == "fault OFF")
        assert round2.start >= round1.end

    def test_timeout_status(self):
        result = build_result()
        result.rounds[0].commands[0].timed_out = True
        spans = experiment_spans(result)
        assert any(s.status == "error: timeout" for s in spans)


class TestRenderExperiment:
    def test_render_contains_header_and_lanes(self):
        text = render_experiment(build_result(), width=40)
        assert "exp-7" in text and "MFC" in text
        assert "round-1" in text and "round-2" in text
        assert "fault ON" in text and "fault OFF" in text

    def test_render_empty_experiment(self):
        empty = ExperimentResult(experiment_id="x", point={})
        text = render_experiment(empty)
        assert "no spans" in text
