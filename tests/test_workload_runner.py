"""Tests for workload specs, round execution, and the traffic generator."""

import pytest

from repro.etcdsim import EtcdServer
from repro.sandbox import Sandbox, SandboxImage
from repro.workload import (
    HttpTrafficGenerator,
    ServiceStartError,
    WorkloadSpec,
    etcd_case_study_workload,
    run_round,
    start_services,
)


@pytest.fixture
def image(tmp_path):
    source = tmp_path / "src"
    source.mkdir()
    (source / "noop.py").write_text("print('hi')\n")
    return SandboxImage.build(source, tmp_path / "image")


class TestWorkloadSpec:
    def test_requires_commands(self):
        with pytest.raises(ValueError, match="at least one command"):
            WorkloadSpec(commands=[])

    def test_round_trip(self):
        spec = etcd_case_study_workload()
        clone = WorkloadSpec.from_dict(spec.to_dict())
        assert clone.commands == spec.commands
        assert clone.ready_file == spec.ready_file

    def test_case_study_shape(self):
        spec = etcd_case_study_workload(command_timeout=33.0)
        assert spec.command_timeout == 33.0
        assert any("run_server" in cmd for cmd in spec.service_commands)
        assert any("run_workload" in cmd for cmd in spec.commands)


class TestRunRound:
    def test_successful_round(self, image, tmp_path):
        spec = WorkloadSpec(commands=["echo one", "echo two"])
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            result = run_round(sandbox, spec, 1, fault_enabled=True)
        assert not result.failed
        assert result.round_no == 1
        assert result.fault_enabled
        assert "one" in result.output and "two" in result.output

    def test_failed_command_marks_round(self, image, tmp_path):
        spec = WorkloadSpec(commands=["exit 1"])
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            result = run_round(sandbox, spec, 1, fault_enabled=True)
        assert result.failed
        assert not result.timed_out

    def test_timeout_stops_round(self, image, tmp_path):
        spec = WorkloadSpec(commands=["sleep 20", "echo never"],
                            command_timeout=0.3)
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            result = run_round(sandbox, spec, 1, fault_enabled=True)
        assert result.timed_out
        assert result.failed
        assert len(result.commands) == 1  # second command skipped

    def test_dead_service_marks_round(self, image, tmp_path):
        spec = WorkloadSpec(commands=["echo ok"])
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            sandbox.start_service("true")  # exits immediately
            import time

            time.sleep(0.2)
            result = run_round(sandbox, spec, 1, fault_enabled=False)
        assert result.failed
        assert not result.services_alive

    def test_round_to_dict(self, image, tmp_path):
        spec = WorkloadSpec(commands=["echo ok"])
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            result = run_round(sandbox, spec, 2, fault_enabled=False)
        data = result.to_dict()
        assert data["round_no"] == 2
        assert data["failed"] is False
        assert data["commands"][0]["returncode"] == 0


class TestStartServices:
    def test_ready_file_wait(self, image, tmp_path):
        spec = WorkloadSpec(
            service_commands=["sh -c 'sleep 0.2; echo 99 > ready; sleep 30'"],
            commands=["cat ready"],
            ready_file="ready",
            ready_timeout=5.0,
        )
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            start_services(sandbox, spec)
            result = run_round(sandbox, spec, 1, fault_enabled=False)
        assert "99" in result.output

    def test_missing_ready_file_raises(self, image, tmp_path):
        spec = WorkloadSpec(
            service_commands=["sleep 5"],
            commands=["echo never"],
            ready_file="never-appears",
            ready_timeout=0.3,
        )
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            with pytest.raises(ServiceStartError, match="never produced"):
                start_services(sandbox, spec)

    def test_dead_service_raises(self, image, tmp_path):
        spec = WorkloadSpec(service_commands=["false"],
                            commands=["echo hi"])
        with Sandbox.create(image, tmp_path / "b", "x") as sandbox:
            with pytest.raises(ServiceStartError, match="exited"):
                start_services(sandbox, spec)


class TestHttpTrafficGenerator:
    def test_traffic_against_etcdsim(self):
        with EtcdServer() as server:
            url = f"http://{server.host}:{server.port}/version"
            stats = HttpTrafficGenerator(url, requests=20,
                                         concurrency=4).run()
        assert stats.requests == 20
        assert stats.failures == 0
        assert stats.status_counts.get(200) == 20
        assert stats.throughput > 0

    def test_failures_counted(self):
        stats = HttpTrafficGenerator("http://127.0.0.1:1/x", requests=3,
                                     concurrency=1, timeout=0.2).run()
        assert stats.failures == 3
        assert stats.failure_ratio == 1.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            HttpTrafficGenerator("http://x", requests=0)

    def test_cli_exit_code(self):
        from repro.workload.httpgen import main

        with EtcdServer() as server:
            url = f"http://{server.host}:{server.port}/version"
            assert main(["--url", url, "--requests", "5"]) == 0
        assert main(["--url", "http://127.0.0.1:1/x", "--requests", "2",
                     "--timeout", "0.2"]) == 1
