"""HTTP transport tests: routing, error codes, pagination, NDJSON
streaming, and long-poll waits — against fabricated job artifacts, so no
real campaign runs here (the contract suite covers end-to-end)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.faultmodel.library import gswfit_model
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.stream import ExperimentStream
from repro.service.api import API_VERSION
from repro.service.client import ProFIPyClient
from repro.service.http import start_server
from repro.service.jobs import COMPLETED
from repro.service.service import ProFIPyService


@pytest.fixture
def stack(tmp_path):
    """A service + running HTTP server + client over one workspace."""
    service = ProFIPyService(tmp_path / "ws", max_workers=2)
    server, _thread = start_server(service)
    client = ProFIPyClient(server.url)
    yield service, server, client
    server.shutdown()
    service.close()


def fabricate_result(experiment_id, status="completed", seed=0):
    return ExperimentResult(
        experiment_id=experiment_id,
        point={"file": "app.py"},
        fault_id=f"{experiment_id}-point",
        spec_name="WRR",
        status=status,
        seed=seed,
    )


def fabricate_job(service, count=5):
    """A finished job whose directory carries a realistic result stream
    (meta line, duplicate id with last-record-wins, truncated tail)."""

    def body(job_dir):
        stream = ExperimentStream(job_dir / "experiments.jsonl")
        stream.write_meta({"campaign": "fab", "seed": 0})
        for index in range(count):
            stream.append(fabricate_result(f"fab-{index:04d}", seed=index))
        # A superseded earlier record: readers must keep the last one.
        stream.append(fabricate_result("fab-0000", seed=999))
        with open(job_dir / "experiments.jsonl", "a",
                  encoding="utf-8") as handle:
            handle.write('{"experiment_id": "fab-trunc')  # killed mid-write

    job = service.runner.submit("fab", body, block=True)
    assert job.status == COMPLETED
    return job


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutingAndErrors:
    def test_ping(self, stack):
        _service, server, client = stack
        info = client.ping()
        assert info["service"] == "profipy"
        assert info["api_version"] == API_VERSION

    def test_unknown_endpoint_is_json_404(self, stack):
        _service, server, _client = stack
        status, body = http_get(f"{server.url}/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_unknown_job_maps_to_keyerror(self, stack):
        _service, _server, client = stack
        with pytest.raises(KeyError, match="job-9999"):
            client.job("job-9999")
        with pytest.raises(KeyError):
            client.cancel("job-9999")
        with pytest.raises(KeyError):
            client.report_text("job-9999")

    def test_unknown_model_maps_to_keyerror(self, stack):
        _service, _server, client = stack
        with pytest.raises(KeyError, match="unknown fault model"):
            client.load_model("nope")

    def test_missing_artifact_maps_to_filenotfound(self, stack):
        service, _server, client = stack
        job = service.runner.submit("empty", lambda d: None, block=True)
        with pytest.raises(FileNotFoundError, match="no report"):
            client.report_text(job.job_id)
        with pytest.raises(FileNotFoundError, match="no summary"):
            client.result_summary(job.job_id)

    def test_no_stream_yet_returns_empty_like_inprocess(self, stack):
        # Transport equivalence: a job with no recorded experiments is
        # an empty list over both facades, not an error over one.
        service, _server, client = stack
        job = service.runner.submit("empty", lambda d: None, block=True)
        assert service.experiments(job.job_id) == []
        assert client.experiments(job.job_id) == []
        page = client.experiments_page(job.job_id)
        assert page.total == 0 and page.experiments == []

    def test_wrong_method_is_405_with_allow(self, stack):
        service, server, _client = stack
        job = fabricate_job(service)
        request = urllib.request.Request(
            f"{server.url}/v1/jobs/{job.job_id}", data=b"{}",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 405
        assert info.value.headers["Allow"] == "GET"
        assert json.loads(info.value.read())["error"]["code"] == \
            "method_not_allowed"

    def test_invalid_json_body_is_400(self, stack):
        _service, server, _client = stack
        request = urllib.request.Request(
            f"{server.url}/v1/campaigns", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        assert json.loads(info.value.read())["error"]["code"] == \
            "invalid_request"

    def test_submit_without_config_maps_to_valueerror(self, stack):
        _service, server, _client = stack
        status, body = None, None
        request = urllib.request.Request(
            f"{server.url}/v1/campaigns",
            data=json.dumps({"wrong": 1}).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as error:
            status, body = error.code, json.loads(error.read())
        assert status == 400
        assert body["error"]["code"] == "invalid_request"


class TestModelsOverHTTP:
    def test_model_round_trip(self, stack):
        _service, _server, client = stack
        model = gswfit_model()
        model.name = "custom"
        client.save_model(model)
        assert "custom" in client.list_models()
        loaded = client.load_model("custom")
        assert len(loaded.faults) == len(model.faults)

    def test_predefined_fallback_over_http(self, stack):
        _service, _server, client = stack
        assert client.load_model("extended").name == "extended"

    def test_put_name_mismatch_is_invalid_request(self, stack):
        _service, server, _client = stack
        model = gswfit_model()
        request = urllib.request.Request(
            f"{server.url}/v1/models/other",
            data=json.dumps(model.to_dict()).encode(),
            headers={"Content-Type": "application/json"}, method="PUT",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestExperimentRetrieval:
    def test_ndjson_stream_is_raw_file(self, stack):
        service, server, _client = stack
        job = fabricate_job(service)
        with urllib.request.urlopen(
            f"{server.url}/v1/jobs/{job.job_id}/experiments.ndjson",
            timeout=10,
        ) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            raw = response.read()
        on_disk = (job.directory / "experiments.jsonl").read_bytes()
        assert raw == on_disk

    def test_client_experiments_match_stream_semantics(self, stack):
        service, _server, client = stack
        job = fabricate_job(service, count=5)
        via_http = client.experiments(job.job_id)
        via_core = service.experiments(job.job_id)
        assert [e.to_dict() for e in via_http] == \
            [e.to_dict() for e in via_core]
        # Meta skipped, truncated line skipped, last record wins.
        assert len(via_http) == 5
        by_id = {e.experiment_id: e for e in via_http}
        assert by_id["fab-0000"].seed == 999

    def test_pagination(self, stack):
        service, _server, client = stack
        job = fabricate_job(service, count=5)
        page = client.experiments_page(job.job_id, offset=0, limit=2)
        assert page.total == 5
        assert [e["experiment_id"] for e in page.experiments] == \
            ["fab-0000", "fab-0001"]
        assert page.next_offset == 2
        last = client.experiments_page(job.job_id, offset=4, limit=2)
        assert len(last.experiments) == 1
        assert last.next_offset is None

    def test_pagination_walk_reassembles_everything(self, stack):
        service, _server, client = stack
        job = fabricate_job(service, count=5)
        seen, offset = [], 0
        while True:
            page = client.experiments_page(job.job_id, offset=offset,
                                           limit=2)
            seen.extend(e["experiment_id"] for e in page.experiments)
            if page.next_offset is None:
                break
            offset = page.next_offset
        assert seen == [f"fab-{i:04d}" for i in range(5)]

    def test_negative_offset_is_invalid_request(self, stack):
        service, server, _client = stack
        job = fabricate_job(service)
        status, body = http_get(
            f"{server.url}/v1/jobs/{job.job_id}/experiments?offset=-1"
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"


class TestJobsOverHTTP:
    def test_list_jobs_and_get_job(self, stack):
        service, _server, client = stack
        job = fabricate_job(service)
        listed = client.list_jobs()
        assert [j.job_id for j in listed] == [job.job_id]
        fetched = client.job(job.job_id)
        assert fetched.status == COMPLETED
        assert fetched.name == "fab"
        assert fetched.submitted_at == pytest.approx(job.submitted_at)

    def test_wait_long_poll_timeout(self, stack):
        service, _server, client = stack
        release = threading.Event()
        job = service.runner.submit("slow", lambda d: release.wait(15))
        with pytest.raises(TimeoutError):
            client.wait(job.job_id, timeout=0.3)
        release.set()
        finished = client.wait(job.job_id, timeout=30)
        assert finished.status == COMPLETED

    def test_cancel_queued_job_over_http(self, tmp_path):
        service = ProFIPyService(tmp_path / "ws", max_workers=1)
        server, _thread = start_server(service)
        client = ProFIPyClient(server.url)
        try:
            release = threading.Event()
            service.runner.submit("blocker", lambda d: release.wait(15))
            queued = service.runner.submit("queued", lambda d: None)
            cancelled = client.cancel(queued.job_id)
            assert cancelled.status == "cancelled"
            release.set()
        finally:
            server.shutdown()
            service.close()


class TestContentLengthValidation:
    """Regression: ``_read_raw`` used to feed the raw Content-Length
    header straight into ``int(...)`` — a malformed value blew up as an
    unhandled ValueError (500 for a client mistake), and a *negative*
    value sailed past the ``> MAX_BODY_BYTES`` bound and became
    ``rfile.read(-5)``: read-to-EOF, defeating the body limit."""

    def _raw_request(self, server, content_length, body=b""):
        """A hand-built request with an arbitrary Content-Length header
        (urllib/ProFIPyClient would refuse to send these)."""
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/blobs/missing")
            connection.putheader("Content-Length", content_length)
            connection.putheader("Content-Type", "application/json")
            connection.endheaders()
            if body:
                try:
                    connection.send(body)
                except OSError:
                    pass  # server already rejected and closed
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_malformed_content_length_is_400(self, stack):
        _service, server, client = stack
        status, payload = self._raw_request(server, "abc", body=b"{}")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "Content-Length" in payload["error"]["message"]
        # The server survives the rejected request.
        assert client.ping()["api_version"] == API_VERSION

    def test_negative_content_length_is_400(self, stack):
        _service, server, client = stack
        status, payload = self._raw_request(server, "-5", body=b"{}")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "negative" in payload["error"]["message"]
        assert client.ping()["api_version"] == API_VERSION

    def test_oversized_content_length_is_400(self, stack):
        from repro.service.http import MAX_BODY_BYTES

        _service, server, _client = stack
        status, payload = self._raw_request(server,
                                            str(MAX_BODY_BYTES + 1))
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
