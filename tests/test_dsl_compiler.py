"""Unit tests for the DSL compiler (spec text -> meta-model)."""

import ast

import pytest

from repro.dsl import (
    BindingError,
    DirectiveKind,
    DslDirectiveError,
    PatternCompileError,
    compile_all,
    compile_text,
)

MFC = """
change {
    $BLOCK{tag=b1; stmts=1,*}
    $CALL{name=delete_*}(...)
    $BLOCK{tag=b2; stmts=1,*}
} into {
    $BLOCK{tag=b1}
    $BLOCK{tag=b2}
}
"""


class TestCompile:
    def test_mfc_compiles(self):
        model = compile_text(MFC, name="MFC")
        assert model.name == "MFC"
        assert len(model.pattern_stmts) == 3
        assert len(model.replacement_stmts) == 2
        assert set(model.bound_tags) == {"b1", "b2"}

    def test_pattern_is_real_ast(self):
        model = compile_text(MFC, name="MFC")
        assert isinstance(model.pattern_module, ast.Module)
        call_stmt = model.pattern_stmts[1]
        assert isinstance(call_stmt, ast.Expr)
        assert isinstance(call_stmt.value, ast.Call)

    def test_empty_replacement_allowed(self):
        model = compile_text("change { continue } into { }")
        assert model.replacement_stmts == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternCompileError, match="pattern is empty"):
            compile_text("change { } into { pass }")

    def test_invalid_python_pattern_rejected(self):
        with pytest.raises(PatternCompileError, match="not valid"):
            compile_text("change { if : } into { }")

    def test_invalid_python_replacement_rejected(self):
        with pytest.raises(PatternCompileError, match="not valid"):
            compile_text("change { foo() } into { def : }")

    def test_action_directive_in_pattern_rejected(self):
        with pytest.raises(DslDirectiveError, match="replacement-side"):
            compile_text("change { $HOG{resource=cpu} } into { }")

    def test_corrupt_in_pattern_rejected(self):
        with pytest.raises(DslDirectiveError):
            compile_text("change { x = $CORRUPT(y) } into { }")

    def test_untagged_replacement_reference_rejected(self):
        with pytest.raises(BindingError, match="must reference a tag"):
            compile_text("change { foo() } into { $BLOCK{stmts=1,*} }")

    def test_unbound_tag_rejected(self):
        with pytest.raises(BindingError, match="not bound"):
            compile_text("change { $CALL#c(...) } into { $BLOCK{tag=zz} }")

    def test_kind_mismatch_rejected(self):
        with pytest.raises(BindingError, match="bound by"):
            compile_text("change { $CALL#c(...) } into { $STRING#c }")

    def test_duplicate_tag_rejected(self):
        with pytest.raises(BindingError, match="bound twice"):
            compile_text(
                "change { $CALL#c(...)\n$CALL#c(...) } into { pass }"
            )

    def test_block_in_expression_position_rejected(self):
        with pytest.raises(DslDirectiveError, match="statement position"):
            compile_text("change { x = $BLOCK{stmts=1} } into { }")

    def test_compile_all_multiple(self):
        models = compile_all(MFC + "\n# name: NOP\nchange { pass } into { pass }")
        assert [m.name for m in models] == ["spec_1", "NOP"]

    def test_directive_sides_marked(self):
        model = compile_text(MFC)
        pattern_side = [d for d in model.directives.values()
                        if not d.in_replacement]
        replacement_side = [d for d in model.directives.values()
                            if d.in_replacement]
        assert len(pattern_side) == 3
        assert len(replacement_side) == 2
        assert all(d.kind is DirectiveKind.BLOCK for d in replacement_side)

    def test_pick_choices_validated_at_compile(self):
        model = compile_text(
            "change { $CALL#c(...) } into { raise $PICK{choices=A()|B()} }"
        )
        picks = [d for d in model.directives.values()
                 if d.kind is DirectiveKind.PICK]
        assert len(picks) == 1
        assert picks[0].params.get_choices("choices") == ["A()", "B()"]
