"""Tests for ExperimentResult round-trips and derived properties."""

from repro.common.procutil import CommandResult
from repro.orchestrator.experiment import (
    STATUS_COMPLETED,
    STATUS_HARNESS_ERROR,
    STATUS_SERVICE_START_FAILED,
    ExperimentResult,
)
from repro.workload.runner import RoundResult


def command(rc=0, timed_out=False):
    return CommandResult(command="run", returncode=rc, stdout="out",
                         stderr="err", duration=0.5, timed_out=timed_out)


def two_round_result(r1_fail=True, r2_fail=False):
    result = ExperimentResult(
        experiment_id="e", point={"component": "pkg", "lineno": 3},
        fault_id="F:x.py:0", spec_name="F",
        original_snippet="a()", mutated_snippet="pass",
    )
    result.rounds.append(RoundResult(
        round_no=1, fault_enabled=True,
        commands=[command(1 if r1_fail else 0)],
    ))
    result.rounds.append(RoundResult(
        round_no=2, fault_enabled=False,
        commands=[command(1 if r2_fail else 0)],
    ))
    return result


class TestProperties:
    def test_round_accessor(self):
        result = two_round_result()
        assert result.round(1).fault_enabled
        assert not result.round(2).fault_enabled
        assert result.round(3) is None

    def test_availability_semantics(self):
        recovered = two_round_result(r1_fail=True, r2_fail=False)
        assert recovered.available_in_round2
        persistent = two_round_result(r1_fail=True, r2_fail=True)
        assert not persistent.available_in_round2

    def test_harness_error_counts_as_failed(self):
        result = ExperimentResult(experiment_id="e", point={},
                                  status=STATUS_HARNESS_ERROR)
        assert result.failed_round1
        assert result.failed_round2
        assert not result.available_in_round2

    def test_service_start_failed_counts_as_failed(self):
        result = ExperimentResult(experiment_id="e", point={},
                                  status=STATUS_SERVICE_START_FAILED)
        assert result.failed_round1

    def test_single_round_result_round2_neutral(self):
        result = ExperimentResult(experiment_id="e", point={})
        result.rounds.append(
            RoundResult(round_no=1, fault_enabled=True,
                        commands=[command(0)])
        )
        assert not result.failed_round1
        assert not result.failed_round2  # no round 2 -> nothing persisted

    def test_combined_output_includes_logs_and_error(self):
        result = two_round_result()
        result.logs["svc.log"] = "LOGLINE"
        result.error = "HARNESS"
        text = result.combined_output()
        assert "out" in text and "LOGLINE" in text and "HARNESS" in text


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        original = two_round_result(r1_fail=True, r2_fail=True)
        original.logs = {"a.log": "x"}
        original.duration = 3.25
        path = tmp_path / "exp.json"
        original.save(path)
        loaded = ExperimentResult.load(path)
        assert loaded.experiment_id == original.experiment_id
        assert loaded.status == STATUS_COMPLETED
        assert loaded.fault_id == original.fault_id
        assert loaded.failed_round1 == original.failed_round1
        assert loaded.failed_round2 == original.failed_round2
        assert loaded.logs == original.logs
        assert loaded.duration == 3.25
        assert loaded.round(1).commands[0].stdout == "out"

    def test_round_trip_preserves_timeout_flags(self, tmp_path):
        result = ExperimentResult(experiment_id="e", point={})
        result.rounds.append(RoundResult(
            round_no=1, fault_enabled=True,
            commands=[command(rc=None, timed_out=True)],
        ))
        clone = ExperimentResult.from_dict(result.to_dict())
        assert clone.round(1).timed_out
        assert clone.failed_round1

    def test_minimal_dict_accepted(self):
        loaded = ExperimentResult.from_dict({"experiment_id": "x"})
        assert loaded.experiment_id == "x"
        assert loaded.rounds == []
        assert loaded.status == STATUS_COMPLETED
