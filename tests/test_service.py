"""Tests for the as-a-service facade: model registry, jobs, campaigns."""

import shutil
import time

import pytest

from repro.faultmodel.library import gswfit_model
from repro.orchestrator.campaign import CampaignConfig
from repro.service import COMPLETED, FAILED, ProFIPyService
from repro.service.jobs import JobRunner


class TestModelRegistry:
    def test_save_and_load(self, tmp_path):
        service = ProFIPyService(tmp_path)
        service.save_model(gswfit_model())
        loaded = service.load_model("gswfit")
        assert len(loaded.faults) == 13

    def test_predefined_fallback(self, tmp_path):
        service = ProFIPyService(tmp_path)
        assert service.load_model("extended").name == "extended"

    def test_unknown_model(self, tmp_path):
        service = ProFIPyService(tmp_path)
        with pytest.raises(KeyError, match="unknown fault model"):
            service.load_model("nope")

    def test_import_model(self, tmp_path):
        path = tmp_path / "custom.json"
        model = gswfit_model()
        model.name = "custom"
        model.save(path)
        service = ProFIPyService(tmp_path / "ws")
        imported = service.import_model(path)
        assert imported.name == "custom"
        assert "custom" in service.list_models()


class TestJobRunner:
    def test_blocking_job(self, tmp_path):
        runner = JobRunner(tmp_path)
        ran = []
        job = runner.submit("demo", lambda d: ran.append(d), block=True)
        assert job.status == COMPLETED
        assert ran and ran[0].exists()

    def test_failing_job(self, tmp_path):
        runner = JobRunner(tmp_path)

        def body(_d):
            raise RuntimeError("kaput")

        job = runner.submit("demo", body, block=True)
        assert job.status == FAILED
        assert "kaput" in job.error

    def test_async_job_and_wait(self, tmp_path):
        runner = JobRunner(tmp_path)
        job = runner.submit("demo", lambda d: time.sleep(0.1), block=False)
        runner.wait(job.job_id, timeout=10)
        assert runner.get(job.job_id).status == COMPLETED

    def test_job_ids_sequential(self, tmp_path):
        runner = JobRunner(tmp_path)
        first = runner.submit("a", lambda d: None, block=True)
        second = runner.submit("b", lambda d: None, block=True)
        assert [first.job_id, second.job_id] == ["job-0001", "job-0002"]

    def test_jobs_reload_from_disk(self, tmp_path):
        runner = JobRunner(tmp_path)
        runner.submit("a", lambda d: None, block=True)
        reloaded = JobRunner(tmp_path)
        assert [job.job_id for job in reloaded.list()] == ["job-0001"]

    def test_unknown_job(self, tmp_path):
        with pytest.raises(KeyError):
            JobRunner(tmp_path).get("job-9999")

    def test_job_ids_never_reused_after_deletion(self, tmp_path):
        # Regression: ids were job-{len(jobs)+1}, so deleting job-0001
        # made the next submit reuse job-0002 and overwrite the survivor.
        runner = JobRunner(tmp_path)
        runner.submit("a", lambda d: None, block=True)
        survivor = runner.submit("b", lambda d: None, block=True)
        shutil.rmtree(tmp_path / "job-0001")
        reloaded = JobRunner(tmp_path)
        fresh = reloaded.submit("c", lambda d: None, block=True)
        assert fresh.job_id == "job-0003"
        assert reloaded.get(survivor.job_id).name == "b"

    def test_corrupt_job_metadata_blocks_id_but_not_registry(self, tmp_path):
        runner = JobRunner(tmp_path)
        runner.submit("a", lambda d: None, block=True)
        (tmp_path / "job-0001" / "job.json").write_text("{not json",
                                                        encoding="utf-8")
        reloaded = JobRunner(tmp_path)
        assert reloaded.list() == []  # unloadable job skipped, not fatal
        fresh = reloaded.submit("b", lambda d: None, block=True)
        # The broken directory still blocks its id from reuse.
        assert fresh.job_id == "job-0002"

    def test_wait_timeout_raises(self, tmp_path):
        runner = JobRunner(tmp_path)
        job = runner.submit("slow", lambda d: time.sleep(0.4), block=False)
        with pytest.raises(TimeoutError, match="still"):
            runner.wait(job.job_id, timeout=0.01)
        finished = runner.wait(job.job_id)
        assert finished.status == COMPLETED


class TestJobWithoutDirectory:
    def test_artifact_accessors_raise_clearly(self, tmp_path):
        # Regression: a job with no directory silently resolved artifact
        # paths against the CWD ((job.directory or Path()) / "...").
        from repro.service.jobs import Job

        service = ProFIPyService(tmp_path)
        service.runner._jobs["job-x"] = Job(job_id="job-x", name="ghost")
        for call in (service.report_text, service.result_summary,
                     service.experiments, service.experiments_path):
            with pytest.raises(FileNotFoundError, match="no directory"):
                call("job-x")
        with pytest.raises(FileNotFoundError, match="no directory"):
            service.generate_regression_tests("job-x", tmp_path / "out")
        # resume_from a directory-less job fails at submit, not mid-body.
        from repro.workload.spec import WorkloadSpec

        target = tmp_path / "target"
        target.mkdir(exist_ok=True)
        config = CampaignConfig(
            name="x", target_dir=target, fault_model=gswfit_model(),
            workload=WorkloadSpec(commands=["true"]),
        )
        with pytest.raises(FileNotFoundError, match="no directory"):
            service.submit_campaign(config, resume_from="job-x")


@pytest.mark.integration
class TestServiceCampaign:
    def test_submit_campaign_end_to_end(self, tmp_path, toy_project,
                                        toy_model, toy_workload):
        service = ProFIPyService(tmp_path / "ws")
        config = CampaignConfig(
            name="toy",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=True,
            parallelism=2,
            workspace=tmp_path / "campaign-ws",
        )
        job = service.submit_campaign(config, block=True)
        assert job.status == COMPLETED, job.error
        summary = service.result_summary(job.job_id)
        assert summary["points_found"] == 2
        assert summary["points_covered"] == 1
        assert summary["experiments"] == 1
        report = service.report_text(job.job_id)
        assert "Campaign summary" in report
        experiments = service.experiments(job.job_id)
        assert len(experiments) == 1
        assert experiments[0].failed_round1
        # The service defaults a persistent scan cache for its own run but
        # must not mutate the caller's config object.
        assert config.scan_cache_dir is None
        assert (tmp_path / "ws" / "scan_cache").is_dir()

    def test_process_backend_job_with_shard_progress(
            self, tmp_path, toy_project, toy_model, toy_workload):
        from repro.common.fsutil import read_json

        service = ProFIPyService(tmp_path / "ws")
        config = CampaignConfig(
            name="sharded",
            target_dir=toy_project,
            fault_model=toy_model,
            workload=toy_workload,
            injectable_files=["app.py"],
            coverage=False,
            parallelism=2,
            backend="process",
            shards=2,
            workspace=tmp_path / "campaign-ws",
        )
        job = service.submit_campaign(config, block=True)
        assert job.status == COMPLETED, job.error
        assert service.result_summary(job.job_id)["experiments"] == 2
        # The persisted campaign config records the execution policy.
        persisted = read_json(job.directory / "config.json")
        assert persisted["backend"] == "process"
        assert persisted["shards"] == 2
        # progress.json persisted the final shard-aware snapshot, and
        # job views (single and list) carry it.
        progress = service.job_progress(job.job_id)
        assert progress is not None
        assert progress["backend"] == "process"
        assert progress["experiments_done"] == 2
        assert progress["experiments_total"] == 2
        assert len(progress["shards"]) == 2
        assert service.job(job.job_id).progress == progress
        [listed] = [item for item in service.list_jobs()
                    if item.job_id == job.job_id]
        assert listed.progress == progress
