"""Tests for fault injection plans: filtering, sampling, sharding,
persistence."""

import pytest

from repro.common.rng import SeededRandom
from repro.orchestrator.plan import Plan, PlannedExperiment, shard_index
from repro.scanner.points import InjectionPoint, component_of


def make_point(spec="MFC", file="pkg/mod.py", ordinal=0, line=1):
    return InjectionPoint(
        spec_name=spec, file=file, ordinal=ordinal, lineno=line,
        end_lineno=line, snippet="snippet", component=component_of(file),
    )


@pytest.fixture
def plan():
    points = [
        make_point("MFC", "pkg/a.py", 0, 10),
        make_point("MFC", "pkg/b.py", 0, 20),
        make_point("WPF", "pkg/a.py", 0, 30),
        make_point("WPF", "other/c.py", 0, 40),
    ]
    return Plan.from_points(points)


class TestComponentOf:
    def test_package_component(self):
        assert component_of("pkg/sub/mod.py") == "pkg"

    def test_root_file_component(self):
        assert component_of("main.py") == "main"


class TestPlanBuilding:
    def test_experiment_ids_stable(self, plan):
        ids = [e.experiment_id for e in plan]
        assert ids == ["exp-0001", "exp-0002", "exp-0003", "exp-0004"]

    def test_len_and_points(self, plan):
        assert len(plan) == 4
        assert len(plan.points) == 4


class TestSelection:
    def test_filter_by_spec(self, plan):
        assert len(plan.filter(spec_names=["MFC"])) == 2

    def test_filter_by_file_glob(self, plan):
        assert len(plan.filter(files=["pkg/*.py"])) == 3
        assert len(plan.filter(files=["*/a.py"])) == 2

    def test_filter_by_component(self, plan):
        assert len(plan.filter(components=["other"])) == 1

    def test_filter_conjunction(self, plan):
        assert len(plan.filter(spec_names=["WPF"],
                               components=["pkg"])) == 1

    def test_sample_deterministic(self, plan):
        first = plan.sample(2, SeededRandom(7)).point_ids()
        second = plan.sample(2, SeededRandom(7)).point_ids()
        assert first == second
        assert len(first) == 2

    def test_sample_larger_than_plan(self, plan):
        assert len(plan.sample(100)) == 4

    def test_sample_preserves_order(self, plan):
        sampled = plan.sample(3, SeededRandom(1))
        ids = [e.experiment_id for e in sampled]
        assert ids == sorted(ids)

    def test_restrict_to(self, plan):
        keep = {plan.experiments[0].point.point_id}
        reduced = plan.restrict_to(keep)
        assert len(reduced) == 1


class TestSharding:
    def test_pinned_assignment(self):
        # sha256-derived, so a constant of the tool: changing the
        # partitioner silently re-shards resumed campaigns.
        assert shard_index("exp-0001", 4) == 1

    def test_depends_only_on_id_and_count(self, plan):
        for experiment in plan:
            assert shard_index(experiment.experiment_id, 4) == \
                shard_index(experiment.experiment_id, 4)

    def test_single_shard_is_identity(self, plan):
        [only] = plan.shards(1)
        assert [e.experiment_id for e in only] == \
            [e.experiment_id for e in plan]

    def test_partition_is_disjoint_and_complete(self, plan):
        for count in (2, 3, 4, 7):
            parts = plan.shards(count)
            assert len(parts) == count
            ids = [e.experiment_id for part in parts for e in part]
            assert sorted(ids) == sorted(e.experiment_id for e in plan)
            assert len(ids) == len(set(ids))

    def test_order_preserved_within_shard(self, plan):
        for part in plan.shards(3):
            ids = [e.experiment_id for e in part]
            assert ids == sorted(ids)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_index("exp-0001", 0)


class TestPersistence:
    def test_round_trip(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = Plan.load(path)
        assert loaded.point_ids() == plan.point_ids()
        assert loaded.experiments[0].experiment_id == "exp-0001"

    def test_planned_experiment_round_trip(self):
        planned = PlannedExperiment("exp-1", make_point())
        clone = PlannedExperiment.from_dict(planned.to_dict())
        assert clone == planned
