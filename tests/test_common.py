"""Unit tests for the shared helpers in repro.common."""

import os

from repro.common.fsutil import (
    atomic_write,
    copy_tree,
    count_lines,
    iter_python_files,
    read_json,
    remove_tree,
    write_json,
)
from repro.common.procutil import run_command, wait_for
from repro.common.rng import SeededRandom
from repro.common.textutil import (
    dedent_block,
    glob_match,
    indent_lines,
    truncate,
)


class TestSeededRandom:
    def test_same_seed_same_stream(self):
        first = [SeededRandom(42).randint(0, 100) for _ in range(5)]
        second = [SeededRandom(42).randint(0, 100) for _ in range(5)]
        assert first != [SeededRandom(43).randint(0, 100) for _ in range(5)]
        assert first == second

    def test_derive_is_stable_and_independent(self):
        base = SeededRandom(1)
        a1 = base.derive("exp-1").random()
        a2 = SeededRandom(1).derive("exp-1").random()
        b = SeededRandom(1).derive("exp-2").random()
        assert a1 == a2
        assert a1 != b

    def test_string_seed(self):
        assert SeededRandom("abc").random() == SeededRandom("abc").random()

    def test_corrupt_string_changes_value(self):
        rng = SeededRandom(0)
        for value in ("a", "-f", "hello world", "x" * 50):
            assert rng.corrupt_string(value) != value

    def test_corrupt_string_preserves_length(self):
        rng = SeededRandom(0)
        value = "abcdefgh"
        assert len(rng.corrupt_string(value)) == len(value)

    def test_corrupt_empty_string(self):
        assert SeededRandom(0).corrupt_string("") == "\x00"

    def test_corrupt_int_changes_value(self):
        rng = SeededRandom(0)
        for value in (0, 1, -5, 2**30):
            assert rng.corrupt_int(value) != value


class TestTextUtil:
    def test_glob_simple(self):
        assert glob_match("delete_*", "delete_port")
        assert not glob_match("delete_*", "remove_port")

    def test_glob_case_sensitive(self):
        assert not glob_match("Delete*", "delete_port")

    def test_regex_form(self):
        assert glob_match("/port$/", "delete_port")
        assert not glob_match("/^port/", "delete_port")

    def test_dedent_block_classic(self):
        text = "\n    foo()\n    bar()\n"
        assert dedent_block(text) == "foo()\nbar()"

    def test_dedent_block_inline_start(self):
        assert dedent_block(" foo()\n    bar() ") == "foo()\nbar()"

    def test_dedent_block_inline_suite(self):
        result = dedent_block(" if x:\n        go()")
        assert result.startswith("if x:")
        import ast

        ast.parse(result)

    def test_dedent_empty(self):
        assert dedent_block("   \n  \n") == ""

    def test_truncate(self):
        assert truncate("x" * 300, 10) == "x" * 7 + "..."
        assert truncate("short", 10) == "short"

    def test_indent_lines(self):
        assert indent_lines("a\n\nb") == "    a\n\n    b"


class TestFsUtil:
    def test_iter_python_files_skips_tool_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("")
        (tmp_path / "note.txt").write_text("")
        files = [p.name for p in iter_python_files(tmp_path)]
        assert files == ["a.py"]

    def test_iter_python_files_single_file(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("x = 1\n")
        assert list(iter_python_files(path)) == [path]

    def test_copy_tree(self, tmp_path):
        src = tmp_path / "src"
        (src / "sub").mkdir(parents=True)
        (src / "sub" / "a.py").write_text("x = 1\n")
        (src / "__pycache__").mkdir()
        (src / "__pycache__" / "a.pyc").write_text("")
        dst = copy_tree(src, tmp_path / "dst")
        assert (dst / "sub" / "a.py").exists()
        assert not (dst / "__pycache__").exists()

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "data.json"
        write_json(path, {"a": [1, 2]})
        assert read_json(path) == {"a": [1, 2]}

    def test_atomic_write_replaces(self, tmp_path):
        path = tmp_path / "file.txt"
        atomic_write(path, "one")
        atomic_write(path, "two")
        assert path.read_text() == "two"
        assert not path.with_name(path.name + ".tmp").exists()

    def test_remove_tree_missing_ok(self, tmp_path):
        remove_tree(tmp_path / "nope")

    def test_count_lines(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("a\nb\nc\n")
        assert count_lines([path]) == 3


class TestProcUtil:
    ENV = {"PATH": os.environ.get("PATH", "/usr/bin:/bin")}

    def test_run_command_success(self, tmp_path):
        result = run_command("echo hello", cwd=str(tmp_path), env=self.ENV,
                             timeout=10)
        assert result.ok
        assert result.stdout.strip() == "hello"

    def test_run_command_failure(self, tmp_path):
        result = run_command("exit 3", cwd=str(tmp_path), env=self.ENV,
                             timeout=10)
        assert not result.ok
        assert result.returncode == 3

    def test_run_command_timeout_kills_children(self, tmp_path):
        result = run_command("sleep 30", cwd=str(tmp_path), env=self.ENV,
                             timeout=0.3)
        assert result.timed_out
        assert not result.ok
        assert result.duration < 10

    def test_wait_for_polls(self):
        state = {"n": 0}

        def predicate():
            state["n"] += 1
            return state["n"] >= 3

        assert wait_for(predicate, timeout=5, interval=0.01)

    def test_wait_for_times_out(self):
        assert not wait_for(lambda: False, timeout=0.1, interval=0.01)
