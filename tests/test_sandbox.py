"""Tests for the sandbox substrate: images, sandboxes, limits, pool."""

import threading
import time

import pytest

from repro.sandbox import (
    ExperimentPool,
    ImageBuildError,
    ResourceMonitor,
    Sandbox,
    SandboxImage,
    default_parallelism,
    memory_available_fraction,
)


@pytest.fixture
def project(tmp_path):
    source = tmp_path / "project"
    source.mkdir()
    (source / "app.py").write_text("VALUE = 1\n")
    (source / "data.txt").write_text("payload\n")
    return source


@pytest.fixture
def image(project, tmp_path):
    return SandboxImage.build(project, tmp_path / "image")


class TestImage:
    def test_build_copies_tree_and_runtime(self, image):
        assert image.read_file("app.py") == "VALUE = 1\n"
        assert "def enabled" in image.read_file("profipy_runtime.py")

    def test_env_directive(self, project, tmp_path):
        image = SandboxImage.build(
            project, tmp_path / "img2",
            containerfile="ENV APP_MODE=test\n# comment\n",
        )
        assert image.env == {"APP_MODE": "test"}

    def test_copy_directive(self, project, tmp_path):
        extra = tmp_path / "extra.cfg"
        extra.write_text("cfg\n")
        image = SandboxImage.build(
            project, tmp_path / "img3",
            containerfile="COPY extra.cfg conf/extra.cfg\n",
            context_dir=tmp_path,
        )
        assert image.read_file("conf/extra.cfg") == "cfg\n"

    def test_run_directive(self, project, tmp_path):
        image = SandboxImage.build(
            project, tmp_path / "img4",
            containerfile="RUN echo generated > gen.txt\n",
        )
        assert image.read_file("gen.txt").strip() == "generated"

    def test_bad_directive_rejected(self, project, tmp_path):
        with pytest.raises(ImageBuildError, match="unsupported"):
            SandboxImage.build(project, tmp_path / "img5",
                               containerfile="VOLUME /data\n")

    def test_failing_run_rejected(self, project, tmp_path):
        with pytest.raises(ImageBuildError, match="RUN"):
            SandboxImage.build(project, tmp_path / "img6",
                               containerfile="RUN exit 9\n")

    def test_copy_missing_source(self, project, tmp_path):
        with pytest.raises(ImageBuildError, match="does not exist"):
            SandboxImage.build(project, tmp_path / "img7",
                               containerfile="COPY nope.txt x\n")

    def test_instantiate_is_fresh_copy(self, image, tmp_path):
        first = image.instantiate(tmp_path / "inst1")
        (first / "app.py").write_text("VALUE = 99\n")
        second = image.instantiate(tmp_path / "inst2")
        assert (second / "app.py").read_text() == "VALUE = 1\n"


class TestSandbox:
    def test_isolated_env(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-1") as sandbox:
            result = sandbox.run("echo $HOME && echo $PROFIPY_SANDBOX",
                                 timeout=10)
            home, name = result.stdout.strip().splitlines()
            assert home.startswith(str(sandbox.root))
            assert name == "exp-1"

    def test_python_placeholder(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-2") as sandbox:
            result = sandbox.run("{python} -c 'import app; print(app.VALUE)'",
                                 timeout=30)
            assert result.stdout.strip() == "1"

    def test_write_read_file(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-3") as sandbox:
            sandbox.write_file("sub/dir/file.txt", "content")
            assert sandbox.read_file("sub/dir/file.txt") == "content"

    def test_service_lifecycle_and_cleanup(self, image, tmp_path):
        sandbox = Sandbox.create(image, tmp_path / "boxes", "exp-4")
        service = sandbox.start_service("sleep 60")
        assert service.alive()
        assert sandbox.services_alive()
        sandbox.destroy()
        assert not service.alive()
        assert not sandbox.root.exists()

    def test_service_logs_collected(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-5") as sandbox:
            sandbox.start_service("echo serving; echo oops >&2")
            time.sleep(0.3)
            logs = sandbox.service_logs()
            assert any("serving" in text for text in logs.values())
            assert any("oops" in text for text in logs.values())

    def test_collect_logs_glob(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-6") as sandbox:
            sandbox.write_file("out/app.log", "ERROR boom")
            logs = sandbox.collect_logs(["out/*.log"])
            assert logs == {"out/app.log": "ERROR boom"}

    def test_wait_for_file(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-7") as sandbox:
            sandbox.start_service("sleep 0.2; echo 1234 > ready.txt")
            assert sandbox.wait_for_file("ready.txt", timeout=5)

    def test_wait_for_file_timeout(self, image, tmp_path):
        with Sandbox.create(image, tmp_path / "boxes", "exp-8") as sandbox:
            assert not sandbox.wait_for_file("never.txt", timeout=0.2)

    def test_destroyed_sandbox_rejects_commands(self, image, tmp_path):
        sandbox = Sandbox.create(image, tmp_path / "boxes", "exp-9")
        sandbox.destroy()
        with pytest.raises(RuntimeError, match="destroyed"):
            sandbox.run("true")

    def test_destroy_idempotent(self, image, tmp_path):
        sandbox = Sandbox.create(image, tmp_path / "boxes", "exp-10")
        sandbox.destroy()
        sandbox.destroy()


class TestLimits:
    def test_default_parallelism_is_n_minus_one(self):
        import os

        cores = os.cpu_count() or 1
        assert default_parallelism() == max(1, cores - 1)

    def test_memory_fraction_sane(self):
        fraction = memory_available_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_monitor_caps_at_max(self):
        monitor = ResourceMonitor(max_parallelism=4,
                                  memory_threshold=0.0,
                                  load_threshold=10**9)
        assert monitor.current_parallelism() == 4

    def test_monitor_halves_under_pressure(self):
        monitor = ResourceMonitor(max_parallelism=8,
                                  memory_threshold=1.1,   # always "low"
                                  load_threshold=10**9)
        assert monitor.current_parallelism() == 4


class TestPool:
    def test_results_in_submission_order(self):
        pool = ExperimentPool(parallelism=4)
        outcomes = pool.run([lambda i=i: i * 10 for i in range(8)])
        assert [o.result for o in outcomes] == [i * 10 for i in range(8)]

    def test_errors_captured_per_job(self):
        def boom():
            raise ValueError("nope")

        pool = ExperimentPool(parallelism=2)
        outcomes = pool.run([boom, lambda: "ok"])
        assert not outcomes[0].ok
        assert "ValueError" in outcomes[0].error
        assert outcomes[1].result == "ok"

    def test_parallelism_bounded(self):
        active = []
        peak = []
        lock = threading.Lock()

        def job():
            with lock:
                active.append(1)
                peak.append(len(active))
            time.sleep(0.05)
            with lock:
                active.pop()
            return True

        pool = ExperimentPool(parallelism=3)
        pool.run([job for _ in range(12)])
        assert max(peak) <= 3

    def test_on_result_callback(self):
        seen = []
        pool = ExperimentPool(parallelism=2)
        pool.run([lambda: 1, lambda: 2], on_result=lambda o: seen.append(o))
        assert len(seen) == 2

    def test_on_result_exception_captured_and_pool_drains(self):
        # Regression: an exception raised by the on_result callback
        # (e.g. a failed stream append) escaped run_job, was re-raised
        # by future.result(), and killed the whole campaign mid-flight.
        calls = []

        def flaky_sink(outcome):
            calls.append(outcome.index)
            if outcome.result == 1:
                raise OSError("disk full")

        pool = ExperimentPool(parallelism=2)
        outcomes = pool.run([lambda: 0, lambda: 1, lambda: 2, lambda: 3],
                            on_result=flaky_sink)
        assert len(outcomes) == 4  # the pool drained every job
        assert sorted(calls) == [0, 1, 2, 3]
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == 1
        assert failed[0].index == 1
        # The sink failure is structured: the job's own error stays
        # untouched (it succeeded), the callback traceback rides
        # sink_error.
        assert failed[0].error is None
        assert "disk full" in failed[0].sink_error
        assert failed[0].result is None
        assert all(o.ok for o in outcomes if o.index != 1)

    def test_empty_jobs(self):
        assert ExperimentPool().run([]) == []
