"""Unit tests for the etcd-v2 store semantics."""

import threading

import pytest

from repro.etcdsim.errors import EtcdError
from repro.etcdsim.store import EtcdStore, validate_key, validate_value


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def store(clock):
    return EtcdStore(clock=clock)


class TestValidation:
    def test_normalizes_slashes(self):
        assert validate_key("a/b") == "/a/b"
        assert validate_key("/a/b/") == "/a/b"

    def test_rejects_non_string(self):
        with pytest.raises(EtcdError) as exc:
            validate_key(None)
        assert exc.value.code == 209

    def test_rejects_control_chars(self):
        with pytest.raises(EtcdError):
            validate_key("/a\x00b")

    def test_rejects_non_ascii(self):
        with pytest.raises(EtcdError):
            validate_key("/ключ")

    def test_rejects_empty_segment(self):
        with pytest.raises(EtcdError):
            validate_key("/a//b")

    def test_value_rejects_control_chars(self):
        with pytest.raises(EtcdError):
            validate_value("a\x01b")
        assert validate_value("ok\n") == "ok\n"


class TestSetGet:
    def test_set_then_get(self, store):
        store.set("/a", "1")
        event = store.get("/a")
        assert event.node["value"] == "1"

    def test_get_missing_raises_100(self, store):
        with pytest.raises(EtcdError) as exc:
            store.get("/nope")
        assert exc.value.code == 100

    def test_set_creates_parents(self, store):
        store.set("/a/b/c", "x")
        listing = store.get("/a", recursive=True)
        assert listing.node["dir"] is True

    def test_indices_monotonic(self, store):
        first = store.set("/a", "1")
        second = store.set("/a", "2")
        assert second.node["modifiedIndex"] > first.node["modifiedIndex"]
        assert second.node["createdIndex"] == first.node["createdIndex"]

    def test_action_create_vs_set(self, store):
        assert store.set("/a", "1").action == "create"
        assert store.set("/a", "2").action == "set"

    def test_prev_exist_false_conflict(self, store):
        store.set("/a", "1")
        with pytest.raises(EtcdError) as exc:
            store.set("/a", "2", prev_exist=False)
        assert exc.value.code == 105

    def test_prev_exist_true_missing(self, store):
        with pytest.raises(EtcdError) as exc:
            store.set("/a", "2", prev_exist=True)
        assert exc.value.code == 100

    def test_root_read_only(self, store):
        with pytest.raises(EtcdError) as exc:
            store.set("/", "x")
        assert exc.value.code == 107

    def test_set_on_dir_rejected(self, store):
        store.set("/d", dir=True)
        with pytest.raises(EtcdError) as exc:
            store.set("/d", "value")
        assert exc.value.code == 102

    def test_file_in_path_rejected(self, store):
        store.set("/a", "1")
        with pytest.raises(EtcdError) as exc:
            store.set("/a/b", "2")
        assert exc.value.code == 104


class TestCompareAndSwap:
    def test_swap_success(self, store):
        store.set("/k", "old")
        event = store.compare_and_swap("/k", "new", prev_value="old")
        assert event.action == "compareAndSwap"
        assert store.get("/k").node["value"] == "new"

    def test_swap_wrong_value(self, store):
        store.set("/k", "old")
        with pytest.raises(EtcdError) as exc:
            store.compare_and_swap("/k", "new", prev_value="nope")
        assert exc.value.code == 101
        assert store.get("/k").node["value"] == "old"

    def test_swap_by_index(self, store):
        event = store.set("/k", "old")
        index = event.node["modifiedIndex"]
        store.compare_and_swap("/k", "new", prev_index=index)
        with pytest.raises(EtcdError):
            store.compare_and_swap("/k", "x", prev_index=index)

    def test_swap_missing_key(self, store):
        with pytest.raises(EtcdError) as exc:
            store.compare_and_swap("/k", "v", prev_value="x")
        assert exc.value.code == 100

    def test_swap_requires_condition(self, store):
        with pytest.raises(EtcdError) as exc:
            store.compare_and_swap("/k", "v")
        assert exc.value.code == 209


class TestDelete:
    def test_delete_leaf(self, store):
        store.set("/a", "1")
        event = store.delete("/a")
        assert event.action == "delete"
        with pytest.raises(EtcdError):
            store.get("/a")

    def test_delete_missing(self, store):
        with pytest.raises(EtcdError) as exc:
            store.delete("/a")
        assert exc.value.code == 100

    def test_delete_dir_needs_flag(self, store):
        store.set("/d", dir=True)
        with pytest.raises(EtcdError) as exc:
            store.delete("/d")
        assert exc.value.code == 102
        store.delete("/d", dir=True)

    def test_delete_nonempty_dir_needs_recursive(self, store):
        store.set("/d/a", "1")
        with pytest.raises(EtcdError) as exc:
            store.delete("/d", dir=True)
        assert exc.value.code == 108
        store.delete("/d", recursive=True)
        with pytest.raises(EtcdError):
            store.get("/d")


class TestTtl:
    def test_ttl_expires(self, store, clock):
        store.set("/s", "tok", ttl=5)
        assert store.get("/s").node["value"] == "tok"
        clock.advance(6)
        with pytest.raises(EtcdError) as exc:
            store.get("/s")
        assert exc.value.code == 100

    def test_ttl_reported(self, store, clock):
        store.set("/s", "tok", ttl=10)
        clock.advance(4)
        assert store.get("/s").node["ttl"] == 6

    def test_invalid_ttl_rejected(self, store):
        with pytest.raises(EtcdError) as exc:
            store.set("/s", "x", ttl=-1)
        assert exc.value.code == 209
        with pytest.raises(EtcdError):
            store.set("/s", "x", ttl="soon")

    def test_expiry_recorded_in_history(self, store, clock):
        store.set("/s", "x", ttl=1)
        clock.advance(2)
        store.stats()  # triggers the sweep
        event = store.wait("/s", wait_index=0, timeout=0.1)
        assert event is not None  # create event is in history


class TestDirListing:
    def test_sorted_listing(self, store):
        store.set("/d/b", "2")
        store.set("/d/a", "1")
        event = store.get("/d", sorted_=True)
        keys = [child["key"] for child in event.node["nodes"]]
        assert keys == ["/d/a", "/d/b"]

    def test_recursive_listing(self, store):
        store.set("/d/x/deep", "v")
        event = store.get("/d", recursive=True)
        child = event.node["nodes"][0]
        assert child["nodes"][0]["key"] == "/d/x/deep"

    def test_stats_counts(self, store):
        store.set("/a", "1")
        store.set("/d/b", "2")
        stats = store.stats()
        assert stats["keys"] == 2
        assert stats["dirs"] == 1


class TestWatch:
    def test_wait_sees_past_event_via_index(self, store):
        event = store.set("/w", "1")
        found = store.wait("/w", wait_index=event.index, timeout=0.2)
        assert found is not None
        assert found.node["value"] == "1"

    def test_wait_times_out(self, store):
        store.set("/w", "1")
        assert store.wait("/other", wait_index=999, timeout=0.1) is None

    def test_wait_wakes_on_write(self, store):
        results = []

        def waiter():
            results.append(store.wait("/w", timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        import time

        time.sleep(0.1)
        store.set("/w", "new")
        thread.join(timeout=5)
        assert results and results[0] is not None

    def test_recursive_wait_matches_children(self, store):
        event = store.set("/dir/child", "1")
        found = store.wait("/dir", wait_index=event.index, recursive=True,
                           timeout=0.2)
        assert found is not None
