"""Pre-defined fault models (paper §IV-A: "ProFIPy provides pre-defined
fault models based on previous fault injection studies").

Two models ship with the tool:

* ``gswfit`` — the 13 G-SWFIT fault operators of Durães & Madeira (paper
  §II), expressed in the ProFIPy DSL.  Where the original operators rely on
  C-specific notions, the spec documents the Python approximation.
* ``extended`` — the additional fault types §III describes from the
  industrial usage of the tool: exceptions raised at calls, ``None``
  returned by library calls, omitted optional parameters, resource hogs,
  and artificial delays.

:func:`expand_api_faults` programmatically instantiates fault types for a
list of API names — this is how campaigns scale to "120 different DSL
patterns" (paper §V-D).
"""

from __future__ import annotations

from repro.dsl.parser import parse_spec
from repro.faultmodel import odc
from repro.faultmodel.model import FaultModel

#: (name, odc class, description, DSL text) for the 13 G-SWFIT operators.
GSWFIT_SPECS: list[tuple[str, str, str, str]] = [
    (
        "MFC", odc.FUNCTION,
        "Missing function call: a call statement (not the only statement "
        "in its block) is omitted.",
        """
        change {
            $BLOCK{tag=b1; stmts=1,*}
            $CALL{name=*}(...)
            $BLOCK{tag=b2; stmts=1,*}
        } into {
            $BLOCK{tag=b1}
            $BLOCK{tag=b2}
        }
        """,
    ),
    (
        "MVIV", odc.ASSIGNMENT,
        "Missing variable initialization using a value: a literal "
        "initialization followed by more code is omitted.",
        """
        change {
            $VAR#v = $NUM#n
            $BLOCK{tag=rest; stmts=1,*}
        } into {
            $BLOCK{tag=rest}
        }
        """,
    ),
    (
        "MVAV", odc.ASSIGNMENT,
        "Missing variable assignment using a value: a literal assignment "
        "surrounded by other statements is omitted.",
        """
        change {
            $BLOCK{tag=b1; stmts=1,*}
            $VAR#v = $STRING#s
            $BLOCK{tag=b2; stmts=1,*}
        } into {
            $BLOCK{tag=b1}
            $BLOCK{tag=b2}
        }
        """,
    ),
    (
        "MVAE", odc.ASSIGNMENT,
        "Missing variable assignment with an expression: the assignment is "
        "dropped but the called expression is kept for its side effects.",
        """
        change {
            $BLOCK{tag=b1; stmts=1,*}
            $VAR#v = $CALL#c{name=*}(...)
            $BLOCK{tag=b2; stmts=1,*}
        } into {
            $BLOCK{tag=b1}
            $CALL#c(...)
            $BLOCK{tag=b2}
        }
        """,
    ),
    (
        "MIA", odc.CHECKING,
        "Missing IF construct around statements: the guard is removed and "
        "the body executes unconditionally.",
        """
        change {
            if $EXPR#cond :
                $BLOCK{tag=body; stmts=1,4}
        } into {
            $BLOCK{tag=body}
        }
        """,
    ),
    (
        "MIFS", odc.ALGORITHM,
        "Missing IF construct plus statements: the whole guarded block "
        "(up to 4 statements) is omitted.",
        """
        change {
            if $EXPR#cond :
                $BLOCK{stmts=1,4}
        } into {
        }
        """,
    ),
    (
        "MIEB", odc.ALGORITHM,
        "Missing ELSE branch: the else of an if/else construct is omitted.",
        """
        change {
            if $EXPR#cond :
                $BLOCK{tag=then; stmts=1,*}
            else :
                $BLOCK{stmts=1,4}
        } into {
            if $EXPR#cond :
                $BLOCK{tag=then}
        }
        """,
    ),
    (
        "MLAC", odc.CHECKING,
        "Missing AND clause: the second conjunct of a two-clause condition "
        "is omitted.",
        """
        change {
            if $EXPR#a and $EXPR#b :
                $BLOCK{tag=body; stmts=1,*}
        } into {
            if $EXPR#a :
                $BLOCK{tag=body}
        }
        """,
    ),
    (
        "MLOC", odc.CHECKING,
        "Missing OR clause: the second disjunct of a two-clause condition "
        "is omitted.",
        """
        change {
            if $EXPR#a or $EXPR#b :
                $BLOCK{tag=body; stmts=1,*}
        } into {
            if $EXPR#a :
                $BLOCK{tag=body}
        }
        """,
    ),
    (
        "MLPA", odc.ALGORITHM,
        "Missing small part of the algorithm: two consecutive call "
        "statements are omitted together.",
        """
        change {
            $BLOCK{tag=pre; stmts=1,*}
            $CALL{name=*}(...)
            $CALL{name=*}(...)
            $BLOCK{tag=post; stmts=1,*}
        } into {
            $BLOCK{tag=pre}
            $BLOCK{tag=post}
        }
        """,
    ),
    (
        "WVAV", odc.ASSIGNMENT,
        "Wrong value assigned to variable: the assigned value is corrupted "
        "at run time.",
        """
        change {
            $VAR#v = $EXPR#val
        } into {
            $VAR#v = $CORRUPT($EXPR#val)
        }
        """,
    ),
    (
        "WPFV", odc.INTERFACE,
        "Wrong variable used in parameter of function call: one variable "
        "argument is corrupted.",
        """
        change {
            $CALL#c{name=*}(..., $VAR#v, ...)
        } into {
            $CALL#c(..., $CORRUPT($VAR#v), ...)
        }
        """,
    ),
    (
        "WAEP", odc.INTERFACE,
        "Wrong arithmetic expression in parameter: an additive argument "
        "expression turns subtractive.",
        """
        change {
            $CALL#c{name=*}(..., $EXPR#a + $EXPR#b, ...)
        } into {
            $CALL#c(..., $EXPR#a - $EXPR#b, ...)
        }
        """,
    ),
]

#: Extended fault types from §III (industrial usage) and §V.
EXTENDED_SPECS: list[tuple[str, str, str, str]] = [
    (
        "THROW_ON_CALL", odc.INTERFACE,
        "Raise an exception at a statement containing a call (error paths "
        "of callers are exercised, as with LFI-style tools).",
        """
        change {
            $CALL#c{name=*; ctx=any}
        } into {
            raise $PICK{choices=RuntimeError('profipy: injected fault')|OSError('profipy: injected fault')|TimeoutError('profipy: injected fault')}
        }
        """,
    ),
    (
        "NONE_RETURN", odc.INTERFACE,
        "A library call returns None instead of its result; error handlers "
        "checking the returned value are exercised.",
        """
        change {
            $VAR#v = $CALL{name=*}(...)
        } into {
            $VAR#v = None
        }
        """,
    ),
    (
        "MPFC", odc.INTERFACE,
        "Missing parameter in function call: the last positional argument "
        "is omitted (e.g. a default is silently used).",
        """
        change {
            $CALL#c{name=*}($EXPR#first, ..., $EXPR#last)
        } into {
            $CALL#c($EXPR#first, ...)
        }
        """,
    ),
    (
        "WLEC", odc.CHECKING,
        "Wrong logical expression as branch condition: the condition is "
        "negated.",
        """
        change {
            if $EXPR#cond :
                $BLOCK{tag=body; stmts=1,*}
        } into {
            if not ($EXPR#cond) :
                $BLOCK{tag=body}
        }
        """,
    ),
    (
        "HOG_CPU", odc.TIMING,
        "High CPU consumption: stale busy threads are spawned after a call "
        "statement (paper §V-C).",
        """
        change {
            $CALL#c{name=*}(...)
        } into {
            $CALL#c(...)
            $HOG{resource=cpu; seconds=0; threads=2}
        }
        """,
    ),
    (
        "DELAY_CALL", odc.TIMING,
        "Performance bottleneck: an artificial delay precedes a call "
        "statement.",
        """
        change {
            $CALL#c{name=*}(...)
        } into {
            $TIMEOUT{seconds=2}
            $CALL#c(...)
        }
        """,
    ),
    (
        "MRS", odc.ALGORITHM,
        "Missing return statement: a return preceded by other statements "
        "is omitted.",
        """
        change {
            $BLOCK{tag=pre; stmts=1,*}
            return $EXPR#val
        } into {
            $BLOCK{tag=pre}
        }
        """,
    ),
]


def _build_model(name: str, description: str,
                 entries: list[tuple[str, str, str, str]]) -> FaultModel:
    model = FaultModel(name=name, description=description)
    for fault_name, odc_class, text, dsl in entries:
        model.add(
            parse_spec(dsl, name=fault_name),
            description=text,
            category="predefined",
            odc_class=odc.validate(odc_class),
        )
    return model


def gswfit_model() -> FaultModel:
    """The 13 G-SWFIT operators as a ProFIPy fault model."""
    return _build_model(
        "gswfit",
        "G-SWFIT software fault operators (Durães & Madeira), adapted to "
        "Python per paper §III.",
        GSWFIT_SPECS,
    )


def extended_model() -> FaultModel:
    """Fault types from the paper's industrial usage (§III) and §V."""
    return _build_model(
        "extended",
        "Exception/None/omitted-parameter/resource-hog fault types from "
        "ProFIPy's industrial deployments.",
        EXTENDED_SPECS,
    )


def predefined_models() -> dict[str, FaultModel]:
    """All models shipped with the tool, by name."""
    models = [gswfit_model(), extended_model()]
    return {model.name: model for model in models}


def get_model(name: str) -> FaultModel:
    models = predefined_models()
    try:
        return models[name]
    except KeyError:
        raise KeyError(
            f"unknown fault model {name!r}; available: {sorted(models)}"
        ) from None


#: Per-API fault templates used by :func:`expand_api_faults`.  ``{api}`` is
#: replaced with the API name glob; ``{name}`` with the fault name.
API_FAULT_TEMPLATES: dict[str, str] = {
    "THROW": """
        change {{
            $CALL#c{{name={api}; ctx=any}}
        }} into {{
            raise $PICK{{choices=RuntimeError('profipy: injected {api}')|OSError('profipy: injected {api}')|TimeoutError('profipy: injected {api}')}}
        }}
        """,
    "MFC": """
        change {{
            $CALL{{name={api}}}(...)
        }} into {{
            pass
        }}
        """,
    "NONE": """
        change {{
            $VAR#v = $CALL{{name={api}}}(...)
        }} into {{
            $VAR#v = None
        }}
        """,
    "OMIT_ARGS": """
        change {{
            $VAR#v = $CALL#c{{name={api}}}($EXPR#first, ...)
        }} into {{
            $VAR#v = $CALL#c($EXPR#first)
        }}
        """,
    "CORRUPT_ARG": """
        change {{
            $CALL#c{{name={api}}}(..., $EXPR#arg, ...)
        }} into {{
            $CALL#c(..., $CORRUPT($EXPR#arg), ...)
        }}
        """,
    "HOG_AFTER": """
        change {{
            $VAR#v = $CALL#c{{name={api}}}(...)
        }} into {{
            $VAR#v = $CALL#c(...)
            $HOG{{resource=cpu; seconds=0; threads=2}}
        }}
        """,
}


def expand_api_faults(
    apis: list[str],
    kinds: list[str] | None = None,
    model_name: str = "api_faults",
) -> FaultModel:
    """Instantiate per-API fault types for every (api, kind) pair.

    This mirrors how large campaigns are configured: §V-D uses 120 distinct
    DSL patterns, obtained by crossing API names with fault templates.
    """
    kinds = kinds or sorted(API_FAULT_TEMPLATES)
    model = FaultModel(
        name=model_name,
        description=f"Per-API faults over {len(apis)} APIs x {len(kinds)} kinds",
    )
    for api in apis:
        for kind in kinds:
            template = API_FAULT_TEMPLATES.get(kind)
            if template is None:
                raise KeyError(
                    f"unknown API fault template {kind!r}; "
                    f"available: {sorted(API_FAULT_TEMPLATES)}"
                )
            dsl = template.format(api=api)
            safe = api.replace("*", "X").replace(".", "_").replace("/", "_")
            model.add(
                parse_spec(dsl, name=f"{kind}_{safe}"),
                description=f"{kind} fault on calls to {api}",
                category="api",
                odc_class=odc.INTERFACE,
            )
    return model
