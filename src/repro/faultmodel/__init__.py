"""Fault models: persistent, pre-defined, and programmatic (paper §IV-A)."""

from repro.faultmodel.library import (
    EXTENDED_SPECS,
    GSWFIT_SPECS,
    expand_api_faults,
    extended_model,
    get_model,
    gswfit_model,
    predefined_models,
)
from repro.faultmodel.model import FaultModel, FaultSpec

__all__ = [
    "EXTENDED_SPECS",
    "FaultModel",
    "FaultSpec",
    "GSWFIT_SPECS",
    "expand_api_faults",
    "extended_model",
    "get_model",
    "gswfit_model",
    "predefined_models",
]
