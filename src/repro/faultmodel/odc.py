"""Orthogonal Defect Classification (ODC) categories (paper §II).

The pre-defined fault models classify each fault type into the ODC defect
types introduced by Chillarege et al., which the paper cites as the basis
of most fixed-fault-model injection tools.  Classification is metadata:
it powers drill-down reporting by defect class.
"""

from __future__ import annotations

#: ODC defect types referenced by the paper.
ASSIGNMENT = "Assignment"
CHECKING = "Checking"
ALGORITHM = "Algorithm"
INTERFACE = "Interface"
FUNCTION = "Function"
TIMING = "Timing/Serialization"

ALL_CLASSES = (
    ASSIGNMENT,
    CHECKING,
    ALGORITHM,
    INTERFACE,
    FUNCTION,
    TIMING,
)


def validate(odc_class: str) -> str:
    """Return ``odc_class`` if it is a known ODC defect type."""
    if odc_class and odc_class not in ALL_CLASSES:
        raise ValueError(
            f"unknown ODC class {odc_class!r}; expected one of {ALL_CLASSES}"
        )
    return odc_class


def group_by_class(fault_model) -> dict[str, list[str]]:
    """Fault names grouped by ODC class (empty class -> 'Unclassified')."""
    grouped: dict[str, list[str]] = {}
    for fault in fault_model.faults:
        key = fault.odc_class or "Unclassified"
        grouped.setdefault(key, []).append(fault.name)
    return grouped
