"""Fault models: named, persistent collections of bug specifications.

The paper stores the user's fault model in a JSON file so that fault models
from previous campaigns can be saved and imported (§IV-A).  A
:class:`FaultModel` groups :class:`~repro.dsl.parser.BugSpec` entries with
metadata (description, fault category, ODC class) and compiles to the
meta-models consumed by the scanner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import read_json, write_json
from repro.dsl.compiler import compile_spec
from repro.dsl.metamodel import MetaModel
from repro.dsl.parser import BugSpec, parse_spec

FORMAT_VERSION = 1


@dataclass
class FaultSpec:
    """One fault type inside a fault model."""

    spec: BugSpec
    description: str = ""
    category: str = ""
    odc_class: str = ""
    enabled: bool = True

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "dsl": self.spec.raw,
            "description": self.description,
            "category": self.category,
            "odc_class": self.odc_class,
            "enabled": self.enabled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        spec = parse_spec(data["dsl"], name=data["name"])
        return cls(
            spec=spec,
            description=data.get("description", ""),
            category=data.get("category", ""),
            odc_class=data.get("odc_class", ""),
            enabled=data.get("enabled", True),
        )


@dataclass
class FaultModel:
    """A named set of fault types, loadable from / savable to JSON."""

    name: str
    description: str = ""
    faults: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [fault.name for fault in self.faults]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(
                f"fault model {self.name!r} has duplicate fault names: "
                f"{sorted(duplicates)}"
            )

    # -- content access ------------------------------------------------------

    def add(self, spec: BugSpec, description: str = "", category: str = "",
            odc_class: str = "") -> FaultSpec:
        """Add a fault type; raises on duplicate names."""
        if any(fault.name == spec.name for fault in self.faults):
            raise ValueError(
                f"fault model {self.name!r} already contains {spec.name!r}"
            )
        fault = FaultSpec(spec=spec, description=description,
                          category=category, odc_class=odc_class)
        self.faults.append(fault)
        return fault

    def get(self, fault_name: str) -> FaultSpec:
        for fault in self.faults:
            if fault.name == fault_name:
                return fault
        raise KeyError(f"no fault named {fault_name!r} in {self.name!r}")

    def enabled_specs(self) -> list[BugSpec]:
        return [fault.spec for fault in self.faults if fault.enabled]

    def compile(self) -> list[MetaModel]:
        """Compile every enabled fault type to a meta-model."""
        return [compile_spec(spec) for spec in self.enabled_specs()]

    def names(self) -> list[str]:
        return [fault.name for fault in self.faults]

    # -- persistence (paper: "the fault model is stored in a JSON file") -----

    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    def save(self, path: str | Path) -> None:
        write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "FaultModel":
        version = data.get("format_version", FORMAT_VERSION)
        if version > FORMAT_VERSION:
            raise ValueError(
                f"fault model format {version} is newer than supported "
                f"({FORMAT_VERSION})"
            )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            faults=[FaultSpec.from_dict(item) for item in data.get("faults", [])],
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultModel":
        return cls.from_dict(read_json(path))
