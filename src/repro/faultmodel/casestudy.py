"""Case-study faultloads: the three campaigns of Table I (paper §V).

Three fault categories, as requested by the paper's industrial partner:

* **Campaign A** — failures when calling external library APIs: the client's
  calls into ``urllib`` and ``os`` raise exceptions, return ``None``, are
  omitted, or lose parameters (§V-A);
* **Campaign B** — wrong inputs in the client API: the key/value/ttl
  parameters of ``set``/``get``/``test_and_set``/... are corrupted, nulled,
  or made negative as they enter the library (§V-B);
* **Campaign C** — resource management bugs: stale CPU-hogging threads are
  spawned inside the client methods (§V-C).

The specs are written against :mod:`repro.etcdsim.client` (the python-etcd
stand-in) and therefore double as worked examples of tailoring the DSL with
domain knowledge, as §III advocates.
"""

from __future__ import annotations

from repro.dsl.parser import parse_spec
from repro.faultmodel import odc
from repro.faultmodel.model import FaultModel

CAMPAIGN_EXTERNAL_API = "external_api"
CAMPAIGN_WRONG_INPUTS = "wrong_inputs"
CAMPAIGN_RESOURCE_HOGS = "resource_hogs"

ALL_CAMPAIGNS = (
    CAMPAIGN_EXTERNAL_API,
    CAMPAIGN_WRONG_INPUTS,
    CAMPAIGN_RESOURCE_HOGS,
)

#: (name, odc class, description, DSL) per campaign.
_CAMPAIGN_SPECS: dict[str, list[tuple[str, str, str, str]]] = {
    CAMPAIGN_EXTERNAL_API: [
        (
            "A_THROW_URLOPEN", odc.INTERFACE,
            "urllib.request.urlopen raises a network exception "
            "(Throw Exception, per-API exception list).",
            """
            change {
                $CALL#c{name=*.urlopen; ctx=any}
            } into {
                raise $PICK{choices=TimeoutError('profipy: connect timeout')|ConnectionError('profipy: connection refused')|OSError('profipy: network unreachable')}
            }
            """,
        ),
        (
            "A_NONE_URLOPEN", odc.INTERFACE,
            "urllib.request.urlopen returns None instead of a response "
            "object.",
            """
            change {
                $VAR#v = $CALL{name=*.urlopen}(...)
            } into {
                $VAR#v = None
            }
            """,
        ),
        (
            "A_OMIT_URLOPEN_ARGS", odc.INTERFACE,
            "urlopen is invoked without its optional parameters (Missing "
            "Parameters: the library default timeout is used).",
            """
            change {
                $VAR#v = $CALL#c{name=*.urlopen}($EXPR#req, ...)
            } into {
                $VAR#v = $CALL#c($EXPR#req)
            }
            """,
        ),
        (
            "A_THROW_OS_ENV", odc.INTERFACE,
            "os.environ.get raises (Throw Exception on the os module).",
            """
            change {
                $CALL#c{name=os.environ.get; ctx=any}
            } into {
                raise $PICK{choices=KeyError('profipy: environment unavailable')|OSError('profipy: environment unavailable')}
            }
            """,
        ),
        (
            "A_NONE_OS_ENV", odc.INTERFACE,
            "os.environ.get returns None (missing configuration).",
            """
            change {
                $VAR#v = $CALL{name=os.environ.get}(...)
            } into {
                $VAR#v = None
            }
            """,
        ),
        (
            "A_CORRUPT_QUOTE", odc.INTERFACE,
            "urllib.parse.quote receives a corrupted input (Wrong Call).",
            """
            change {
                $VAR#v = $CALL#c{name=*.quote}($EXPR#k)
            } into {
                $VAR#v = $CALL#c($CORRUPT($EXPR#k))
            }
            """,
        ),
        (
            "A_MFC_ADD_HEADER", odc.FUNCTION,
            "The Request.add_header call is omitted (Missing Function "
            "Call): requests go out without Content-Type.",
            """
            change {
                $CALL{name=*.add_header}(...)
            } into {
                pass
            }
            """,
        ),
        (
            "A_NONE_URLENCODE", odc.INTERFACE,
            "urllib.parse.urlencode returns None: the request body is lost.",
            """
            change {
                $VAR#v = $CALL{name=*.urlencode}(...)
            } into {
                $VAR#v = None
            }
            """,
        ),
        (
            "A_THROW_CONNECTION_HANDLER", odc.ALGORITHM,
            "The connection-failure handler itself fails (fault in the "
            "error path: only covered when a connection error occurs).",
            """
            change {
                $CALL#c{name=EtcdConnectionFailed; ctx=any}
            } into {
                raise RuntimeError('profipy: error handler failed')
            }
            """,
        ),
        (
            "A_THROW_JSON_LOADS", odc.INTERFACE,
            "json.loads raises on a response payload.",
            """
            change {
                $VAR#v = $CALL{name=json.loads}(...)
            } into {
                raise $PICK{choices=ValueError('profipy: bad payload')|UnicodeDecodeError('utf-8', b'', 0, 1, 'profipy')}
            }
            """,
        ),
    ],
    CAMPAIGN_WRONG_INPUTS: [
        (
            "B_NONE_KEY", odc.INTERFACE,
            "A None object reference is passed as the key parameter "
            "(python-etcd dereferences it with key.startswith).",
            """
            change {
                $VAR#p = $CALL#c{name=*._key_endpoint}($EXPR#k)
            } into {
                $VAR#p = $CALL#c(None)
            }
            """,
        ),
        (
            "B_CORRUPT_KEY", odc.INTERFACE,
            "The key string is corrupted with random characters.",
            """
            change {
                $VAR#p = $CALL#c{name=*._key_endpoint}($EXPR#k)
            } into {
                $VAR#p = $CALL#c($CORRUPT{mode=string}($EXPR#k))
            }
            """,
        ),
        (
            "B_CORRUPT_VALUE", odc.INTERFACE,
            "The value parameter is corrupted with random characters.",
            """
            change {
                $VAR#f = $CALL#c{name=*._write_fields}($EXPR#v, $EXPR#t)
            } into {
                $VAR#f = $CALL#c($CORRUPT($EXPR#v), $EXPR#t)
            }
            """,
        ),
        (
            "B_NONE_VALUE", odc.INTERFACE,
            "A None object reference is passed as the value parameter.",
            """
            change {
                $VAR#f = $CALL#c{name=*._write_fields}($EXPR#v, $EXPR#t)
            } into {
                $VAR#f = $CALL#c(None, $EXPR#t)
            }
            """,
        ),
        (
            "B_NEGATIVE_TTL", odc.INTERFACE,
            "The TTL parameter is corrupted (e.g. made negative): the "
            "server rejects the request with 400 Bad Request.",
            """
            change {
                $VAR#f = $CALL#c{name=*._write_fields}($EXPR#v, $EXPR#t)
            } into {
                $VAR#f = $CALL#c($EXPR#v, $CORRUPT{mode=int}($EXPR#t))
            }
            """,
        ),
        (
            "B_CORRUPT_PREV_VALUE", odc.INTERFACE,
            "test_and_set compares against a corrupted previous value.",
            """
            change {
                fields['prevValue'] = $EXPR#pv
            } into {
                fields['prevValue'] = $CORRUPT($EXPR#pv)
            }
            """,
        ),
        (
            "B_NONE_PAYLOAD", odc.INTERFACE,
            "The decoded response payload is replaced by None before use.",
            """
            change {
                $VAR#p = $CALL{name=*._decode_payload}(...)
            } into {
                $VAR#p = None
            }
            """,
        ),
        (
            "B_CORRUPT_HTTP_METHOD", odc.INTERFACE,
            "The HTTP verb passed into the request layer is corrupted "
            "(the server rejects the unknown method).",
            """
            change {
                $VAR#p = $CALL#c{name=*._execute}($STRING#m, ...)
            } into {
                $VAR#p = $CALL#c($CORRUPT($STRING#m), ...)
            }
            """,
        ),
        (
            "B_CORRUPT_QUERY_FLAG", odc.INTERFACE,
            "A query-string flag (recursive/sorted/wait) is corrupted.",
            """
            change {
                $CALL#c{name=flags.append}($STRING#f)
            } into {
                $CALL#c($CORRUPT($STRING#f))
            }
            """,
        ),
        (
            "B_CORRUPT_PATH_PREFIX", odc.INTERFACE,
            "A URL path/query prefix concatenation is corrupted "
            "(requests go to a wrong endpoint).",
            """
            change {
                $VAR#u = $STRING#prefix + $EXPR#rest
            } into {
                $VAR#u = $CORRUPT($STRING#prefix) + $EXPR#rest
            }
            """,
        ),
    ],
    CAMPAIGN_RESOURCE_HOGS: [
        (
            "C_HOG_AFTER_EXECUTE", odc.TIMING,
            "Stale CPU-hogging threads are spawned after every request "
            "issued by a client method (Hog threads inside methods).",
            """
            change {
                $VAR#p = $CALL#c{name=*._execute}(...)
            } into {
                $VAR#p = $CALL#c(...)
                $HOG{resource=cpu; seconds=0; threads=4}
            }
            """,
        ),
        (
            "C_HOG_ON_ENDPOINT", odc.TIMING,
            "Stale CPU-hogging threads are spawned while building the key "
            "endpoint (hot path of every API method).",
            """
            change {
                $VAR#p = $CALL#c{name=*._key_endpoint}(...)
            } into {
                $HOG{resource=cpu; seconds=0; threads=4}
                $VAR#p = $CALL#c(...)
            }
            """,
        ),
        (
            "C_DELAY_RESPONSE", odc.TIMING,
            "Response decoding is artificially delayed (performance "
            "bottleneck).",
            """
            change {
                $VAR#p = $CALL#c{name=*._decode_payload}(...)
            } into {
                $TIMEOUT{seconds=2}
                $VAR#p = $CALL#c(...)
            }
            """,
        ),
    ],
}

#: Human-readable Table I rows (category, injection target, examples).
TABLE1_ROWS = [
    (
        "Failures when calling external library APIs",
        "API calls to the urllib and os Python modules",
        "Exceptions, None objects, omitted call, wrong call",
    ),
    (
        "Wrong inputs in Python-etcd API",
        "set(key, val), get(key), test_and_set(key, val, old), ...",
        "String corruptions, None values, negative integers",
    ),
    (
        "Resource management bugs",
        "set(key, val), get(key), test_and_set(key, val, old), ...",
        "Hog threads inside methods of Python-etcd",
    ),
]


def campaign_model(campaign: str) -> FaultModel:
    """The fault model for one of the three §V campaigns."""
    try:
        entries = _CAMPAIGN_SPECS[campaign]
    except KeyError:
        raise KeyError(
            f"unknown campaign {campaign!r}; available: {ALL_CAMPAIGNS}"
        ) from None
    model = FaultModel(
        name=campaign,
        description=f"Case-study campaign {campaign!r} (paper §V, Table I)",
    )
    for name, odc_class, description, dsl in entries:
        model.add(
            parse_spec(dsl, name=name),
            description=description,
            category=campaign,
            odc_class=odc.validate(odc_class),
        )
    return model


def all_campaign_models() -> dict[str, FaultModel]:
    """All three Table I fault models, by campaign name."""
    return {campaign: campaign_model(campaign)
            for campaign in ALL_CAMPAIGNS}
