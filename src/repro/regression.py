"""Turn failed experiments into regression tests (paper §I).

The paper's first motivation for programmable fault models: "a typical
necessity in industry, which arises when a critical failure occurs, is to
introduce regression tests against the fault that caused the failure, to
assure that the same failure cannot occur again".

:func:`generate_regression_test` converts one failed experiment into a
self-contained pytest module that re-injects *exactly* that fault (same
spec, same injection point, same seed) and asserts that the system now
tolerates it.  The generated test fails until the target is hardened —
which is the point of a regression test for a fault-tolerance gap.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.faultmodel.model import FaultModel
from repro.orchestrator.experiment import ExperimentResult
from repro.workload.spec import WorkloadSpec

_TEMPLATE = '''\
"""Auto-generated ProFIPy regression test.

Experiment {experiment_id!r} observed a service failure when the fault
below was injected:

    fault type : {spec_name}
    location   : {file}:{lineno}
    original   : {original_snippet}
    injected   : {mutated_snippet}

This test re-injects the same fault and asserts the system now tolerates
it (no workload failure while the fault is active).  It fails until the
target is hardened against this fault class.
"""

import json
from pathlib import Path

import pytest

from repro.faultmodel.model import FaultModel
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.plan import Plan, PlannedExperiment
from repro.sandbox.image import SandboxImage
from repro.scanner.scan import scan_file
from repro.workload.spec import WorkloadSpec

FAULT_MODEL = json.loads(r\'\'\'{fault_model_json}\'\'\')
WORKLOAD = json.loads(r\'\'\'{workload_json}\'\'\')
TARGET_DIR = Path(r"{target_dir}")
POINT_ID = "{point_id}"
INJECT_FILE = "{file}"
# Replayed under the original campaign seed and experiment id so the
# per-experiment RNG streams (mutation choices, runtime SEED_ENV)
# reproduce the recorded fault exactly.
CAMPAIGN_SEED = {campaign_seed}
EXPERIMENT_ID = "{experiment_id}"


@pytest.mark.regression
def test_system_tolerates_{safe_name}(tmp_path):
    fault_model = FaultModel.from_dict(FAULT_MODEL)
    models = {{model.name: model for model in fault_model.compile()}}
    workload = WorkloadSpec.from_dict(WORKLOAD)

    scan = scan_file(TARGET_DIR / INJECT_FILE, list(models.values()),
                     root=TARGET_DIR)
    plan = Plan.from_points(scan.points).restrict_to({{POINT_ID}})
    assert len(plan) == 1, (
        f"injection point {{POINT_ID!r}} no longer exists; the code moved "
        "- re-record this regression test"
    )

    image = SandboxImage.build(TARGET_DIR, tmp_path / "image")
    executor = ExperimentExecutor(
        image=image, workload=workload, models=models,
        base_dir=tmp_path / "boxes", trigger=True,
        campaign_seed=CAMPAIGN_SEED,
    )
    planned = PlannedExperiment(experiment_id=EXPERIMENT_ID,
                                point=plan.experiments[0].point)
    result = executor.run(planned)
    assert result.completed, result.error
    assert not result.failed_round1, (
        "the fault {spec_name} at {file}:{lineno} still causes a service "
        "failure:\\n" + result.round(1).output
    )
'''


def generate_regression_test(
    result: ExperimentResult,
    fault_model: FaultModel,
    target_dir: str | Path,
    workload: WorkloadSpec,
    campaign_seed: int = 0,
) -> str:
    """Render a pytest module re-injecting the experiment's fault.

    ``fault_model`` may be the full campaign model; it is narrowed to the
    one fault type the experiment used so the generated file is minimal.
    ``campaign_seed`` must be the seed the recording campaign ran with:
    mutation RNG streams are keyed on ``(campaign_seed, experiment_id)``,
    so the replay embeds both to re-create the exact recorded mutant.
    """
    if not result.spec_name or not result.point:
        raise ValueError(
            f"experiment {result.experiment_id!r} carries no injection "
            "point; only fault injection experiments can be converted"
        )
    fault = fault_model.get(result.spec_name)
    narrowed = FaultModel(
        name=f"regression_{result.experiment_id}",
        description=f"Regression faultload from {result.experiment_id}",
    )
    narrowed.add(fault.spec, description=fault.description,
                 category=fault.category, odc_class=fault.odc_class)

    point = result.point
    safe_name = (
        f"{result.spec_name}_{Path(point['file']).stem}_{point['ordinal']}"
        .lower().replace("-", "_").replace(".", "_")
    )
    original = result.original_snippet.splitlines() or ["<unknown>"]
    mutated = result.mutated_snippet.splitlines() or ["<removed>"]
    return _TEMPLATE.format(
        experiment_id=result.experiment_id,
        spec_name=result.spec_name,
        file=point["file"],
        lineno=point["lineno"],
        original_snippet=original[0],
        mutated_snippet=mutated[0],
        fault_model_json=json.dumps(narrowed.to_dict()),
        workload_json=json.dumps(workload.to_dict()),
        target_dir=str(Path(target_dir).resolve()),
        point_id=point.get("point_id",
                           f"{result.spec_name}:{point['file']}:"
                           f"{point['ordinal']}"),
        safe_name=safe_name,
        campaign_seed=campaign_seed,
    )


def write_regression_test(
    result: ExperimentResult,
    fault_model: FaultModel,
    target_dir: str | Path,
    workload: WorkloadSpec,
    dest_dir: str | Path,
    campaign_seed: int = 0,
) -> Path:
    """Write the generated test under ``dest_dir`` and return its path."""
    dest_dir = Path(dest_dir)
    dest_dir.mkdir(parents=True, exist_ok=True)
    text = generate_regression_test(result, fault_model, target_dir,
                                    workload, campaign_seed=campaign_seed)
    safe = result.experiment_id.replace("-", "_").replace(".", "_")
    path = dest_dir / f"test_regression_{safe}.py"
    path.write_text(text, encoding="utf-8")
    return path
