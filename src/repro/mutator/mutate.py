"""Source-code mutator: generate fault-injected program versions (§IV-B).

Two modes:

* **trigger mode** (default, like the EDFI technique the paper adopts):
  the matched statements are wrapped in
  ``if __pfp_rt__.enabled(fault_id): <faulty> else: <original>`` so the
  fault can be switched on and off while the target runs (two-round
  execution, §IV-B);
* **permanent mode**: the faulty code simply replaces the original window
  (a classic mutant, useful for mutation-testing style campaigns).

Mutants are materialized by **span patching** by default
(:mod:`repro.mutator.patch`): only the matched window and the
runtime-import line are re-emitted, spliced into the original source
bytes, so per-mutant cost no longer scales with file size and everything
outside the window keeps its original formatting.  Windows that cannot be
patched soundly fall back transparently to the legacy deepcopy +
whole-file ``ast.unparse`` path; ``verify_patches`` (or the
``PROFIPY_VERIFY_PATCHES`` environment variable) cross-checks every
successful patch against that path with an AST-equivalence oracle.

The mutator also produces the *coverage-instrumented* version used by the
fault-free pre-run (§IV-D): every injection point gets a
``__pfp_rt__.cover(point_id)`` probe and no fault.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path

from repro.common.rng import SeededRandom
from repro.dsl.metamodel import MetaModel
from repro.mutator.patch import ast_equivalent, patch_mutant
from repro.mutator.runtime import RUNTIME_ALIAS, RUNTIME_MODULE_NAME
from repro.mutator.substitute import ReplacementBuilder, runtime_call
from repro.scanner.cache import MatchMemo
from repro.scanner.matcher import Match, Matcher, pick_match
from repro.scanner.scan import match_source, nth_match


@dataclass(frozen=True)
class MutantRequest:
    """One batched pre-generation request (see :func:`generate_mutants`).

    ``rng`` must be the experiment's own stream (derived from the campaign
    seed and the experiment id), never a stream shared across requests —
    sharing is what made mutant generation order-dependent.
    """

    key: str
    source: str
    model: MetaModel
    ordinal: int
    fault_id: str
    file: str
    rng: SeededRandom


def generate_mutants(
    requests: "list[MutantRequest]",
    trigger: bool = True,
    match_memo: MatchMemo | None = None,
) -> dict[str, Mutation]:
    """Serially pre-generate one mutant per request, keyed by ``request.key``.

    This is the batch phase of the execution engine: mutation happens
    *before* experiments fan out to the sandbox pool, so the matcher never
    runs inside the parallel critical section.  Requests are processed
    grouped by ``(file, spec, ordinal)``, which populates the
    :class:`MatchMemo` once per ``(source, spec)`` pair — every later
    ordinal of the group is a pure cache hit, and no memo entry is ever
    built from two threads at once.

    Each mutant draws only from its request's own RNG stream, so the
    output is byte-identical regardless of request order or the
    parallelism of the execution phase that follows.
    """
    memo = match_memo if match_memo is not None else MatchMemo()
    ordered = sorted(
        enumerate(requests),
        key=lambda pair: (pair[1].file, pair[1].model.name,
                          pair[1].ordinal, pair[0]),
    )
    mutants: dict[str, Mutation] = {}
    for _, request in ordered:
        mutator = Mutator(trigger=trigger, rng=request.rng, match_memo=memo)
        try:
            mutants[request.key] = mutator.mutate_source(
                request.source, request.model, request.ordinal,
                fault_id=request.fault_id, file=request.file,
            )
        except Exception:  # noqa: BLE001 - deferred to the executor
            # One bad request (stale ordinal, broken spec) must not sink
            # the batch.  The executor's inline fallback re-raises the
            # same error inside its per-experiment try/except, recording
            # a harness_error result for just that experiment.
            continue
    return mutants


@dataclass
class Mutation:
    """One generated mutated version of one source file."""

    fault_id: str
    spec_name: str
    file: str
    lineno: int
    source: str
    original_snippet: str
    mutated_snippet: str

    def describe(self) -> str:
        return (f"{self.fault_id} @ {self.file}:{self.lineno} "
                f"[{self.spec_name}]")


class Mutator:
    """Apply bug specifications to source code."""

    def __init__(self, trigger: bool = True,
                 rng: SeededRandom | None = None,
                 match_memo: MatchMemo | None = None,
                 span_patching: bool = True,
                 verify_patches: bool | None = None) -> None:
        self.trigger = trigger
        self.rng = rng or SeededRandom(0)
        #: Shared per-batch memo: repeated mutations of the same
        #: (file, spec) pair reuse one cached match list instead of
        #: re-running the backtracking matcher per mutant.
        self.match_memo = match_memo
        #: Materialize mutants by splicing the window's byte span instead
        #: of re-unparsing the whole file (False forces the legacy path).
        self.span_patching = span_patching
        if verify_patches is None:
            verify_patches = bool(os.environ.get("PROFIPY_VERIFY_PATCHES"))
        #: Cross-check every successful span patch against the legacy
        #: path with the AST-equivalence oracle (belt-and-suspenders for
        #: campaigns that can afford it; the test suite runs with it on).
        self.verify_patches = verify_patches
        #: How mutants were materialized: span-``patched``, legacy
        #: ``fallback``, and oracle ``verify_mismatch`` counts.
        self.patch_stats = {"patched": 0, "fallback": 0,
                            "verify_mismatch": 0}

    # -- fault injection -------------------------------------------------------

    def mutate_source(
        self,
        source: str,
        model: MetaModel,
        ordinal: int,
        fault_id: str | None = None,
        file: str = "<string>",
    ) -> Mutation:
        """Mutate the ``ordinal``-th match of ``model`` in ``source``."""
        fault_id = fault_id or f"{model.name}:{file}:{ordinal}"
        if self.match_memo is not None:
            # Shared pristine tree: read-only from here on.
            tree, match = self.match_memo.peek(source, model, ordinal)
        else:
            tree = ast.parse(source)
            match = self._nth_match_in_tree(tree, model, ordinal)
        original_stmts = match.stmts
        original_snippet = "\n".join(
            ast.unparse(stmt) for stmt in original_stmts
        )
        # match.lineno is a live property over the owner's statement list;
        # capture the pristine window's line before any path mutates it.
        lineno = match.lineno

        # The RNG stream is consumed exactly once, before the path choice,
        # so span-patched and fallback mutants draw identical faults.
        builder = ReplacementBuilder(
            model, match, rng=self.rng.derive(fault_id)
        )
        faulty = builder.build()
        needs_runtime = builder.needs_runtime or self.trigger
        mutated_snippet = "\n".join(
            ast.unparse(ast.fix_missing_locations(stmt)) for stmt in faulty
        )

        patched = None
        if self.span_patching:
            patched = patch_mutant(
                source, tree, match, faulty,
                trigger=self.trigger, fault_id=fault_id,
                needs_runtime=needs_runtime,
            )
        if patched is None:
            self.patch_stats["fallback"] += 1
            mutated_source = self._legacy_mutant_source(
                source, model, ordinal, tree, match, faulty,
                fault_id, needs_runtime,
            )
        else:
            self.patch_stats["patched"] += 1
            mutated_source = patched
            if self.verify_patches:
                legacy = self._legacy_mutant_source(
                    source, model, ordinal, tree, match, faulty,
                    fault_id, needs_runtime,
                )
                if not ast_equivalent(patched, legacy):
                    self.patch_stats["verify_mismatch"] += 1
                    mutated_source = legacy
        return Mutation(
            fault_id=fault_id,
            spec_name=model.name,
            file=file,
            lineno=lineno,
            source=mutated_source,
            original_snippet=original_snippet,
            mutated_snippet=mutated_snippet or "pass",
        )

    def _legacy_mutant_source(
        self,
        source: str,
        model: MetaModel,
        ordinal: int,
        tree: ast.Module,
        match: Match,
        faulty: list[ast.stmt],
        fault_id: str,
        needs_runtime: bool,
    ) -> str:
        """Deepcopy + whole-file unparse (the pre-span-patching path).

        With a memo the pristine tree is shared, so a private copy is
        taken first; without one ``tree`` is already this call's own.
        ``faulty`` statements are detached copies (the builder never
        aliases pristine nodes), so splicing them into either tree is
        safe.
        """
        if self.match_memo is not None:
            tree, match = self.match_memo.take(source, model, ordinal)
        body = getattr(match.owner, match.field)
        if self.trigger:
            guard = ast.If(
                test=runtime_call("enabled", [ast.Constant(fault_id)]),
                body=list(faulty) or [ast.Pass()],
                orelse=list(match.stmts),
            )
            body[match.start:match.end] = [guard]
        else:
            body[match.start:match.end] = list(faulty)
            if not body:
                body.append(ast.Pass())
        if needs_runtime:
            _insert_runtime_import(tree)
        ast.fix_missing_locations(tree)
        return ast.unparse(tree) + "\n"

    def mutate_file(
        self,
        path: str | Path,
        model: MetaModel,
        ordinal: int,
        fault_id: str | None = None,
        rel_file: str | None = None,
    ) -> Mutation:
        path = Path(path)
        source = path.read_text(encoding="utf-8")
        return self.mutate_source(
            source, model, ordinal,
            fault_id=fault_id, file=rel_file or path.name,
        )

    # -- coverage instrumentation ----------------------------------------------

    def instrument_source(
        self,
        source: str,
        targets: list[tuple[MetaModel, int, str]],
        file: str = "<string>",
    ) -> str:
        """Insert coverage probes for each ``(model, ordinal, point_id)``.

        The returned source contains no faults: each probe records that the
        workload reached the corresponding injection point.  With a
        :class:`MatchMemo` the backtracking matcher runs at most once per
        distinct spec (the memo's match lists are shared with mutant
        generation); without one it runs once per model, on a private
        parse.
        """
        if self.match_memo is not None:
            tree, windows = self.match_memo.take_windows(
                source, [(model, ordinal) for model, ordinal, _ in targets]
            )
            inserts = [
                (window.owner, window.field, window.start, point_id)
                for window, (_, _, point_id) in zip(windows, targets)
            ]
        else:
            tree = ast.parse(source)
            # One matcher run per model: targets usually carry many
            # ordinals of the same spec, and every ordinal resolves from
            # one match list.
            matches_by_model: dict[int, list[Match]] = {}
            inserts = []
            for model, ordinal, point_id in targets:
                matches = matches_by_model.get(id(model))
                if matches is None:
                    matches = Matcher(model).find_matches(tree)
                    matches_by_model[id(model)] = matches
                match = pick_match(matches, model.name, ordinal)
                inserts.append(
                    (match.owner, match.field, match.start, point_id)
                )
        # Insert deepest-position first so earlier indices stay valid.
        grouped: dict[tuple[int, str], list[tuple[int, str]]] = {}
        owners: dict[tuple[int, str], ast.AST] = {}
        for owner, fname, start, point_id in inserts:
            key = (id(owner), fname)
            grouped.setdefault(key, []).append((start, point_id))
            owners[key] = owner
        for key, entries in grouped.items():
            owner = owners[key]
            body = getattr(owner, key[1])
            for start, point_id in sorted(entries, reverse=True):
                probe = ast.Expr(
                    value=runtime_call("cover", [ast.Constant(point_id)])
                )
                body.insert(start, probe)
        if inserts:
            _insert_runtime_import(tree)
        ast.fix_missing_locations(tree)
        return ast.unparse(tree) + "\n"

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _nth_match_in_tree(tree: ast.Module, model: MetaModel,
                           ordinal: int) -> Match:
        return pick_match(Matcher(model).find_matches(tree),
                          model.name, ordinal)


def _insert_runtime_import(tree: ast.Module) -> None:
    """Add ``import profipy_runtime as __pfp_rt__`` after any docstring
    and ``__future__`` imports (idempotent)."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Import)
            and any(alias.name == RUNTIME_MODULE_NAME
                    and alias.asname == RUNTIME_ALIAS
                    for alias in stmt.names)
        ):
            return
    index = 0
    body = tree.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        index = 1
    while index < len(body) and (
        isinstance(body[index], ast.ImportFrom)
        and body[index].module == "__future__"
    ):
        index += 1
    body.insert(
        index,
        ast.Import(names=[ast.alias(name=RUNTIME_MODULE_NAME,
                                    asname=RUNTIME_ALIAS)]),
    )


__all__ = ["MutantRequest", "Mutation", "Mutator", "generate_mutants",
           "match_source", "nth_match"]
