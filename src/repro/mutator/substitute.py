"""Build the faulty replacement AST for one match (paper §IV-B).

Given a :class:`~repro.scanner.matcher.Match` and the compiled spec, this
module instantiates the ``into { ... }`` side: tagged directives are
replaced by (copies of) the material they bound, ``...`` wildcards splice
back the absorbed call arguments, and action directives expand into calls
to the injected ``profipy_runtime`` module.
"""

from __future__ import annotations

import ast
import copy

from repro.common.rng import SeededRandom
from repro.dsl.directives import Directive, DirectiveKind
from repro.dsl.errors import BindingError, PatternCompileError
from repro.dsl.metamodel import MetaModel, is_ellipsis_expr
from repro.mutator.runtime import RUNTIME_ALIAS
from repro.scanner.bindings import CallCapture
from repro.scanner.matcher import Match


def runtime_call(function: str, args: list[ast.expr]) -> ast.Call:
    """``__pfp_rt__.<function>(<args>)`` as an AST expression."""
    return ast.Call(
        func=ast.Attribute(
            value=ast.Name(id=RUNTIME_ALIAS, ctx=ast.Load()),
            attr=function,
            ctx=ast.Load(),
        ),
        args=args,
        keywords=[],
    )


class ReplacementBuilder:
    """Instantiate the replacement statements for one match."""

    def __init__(self, model: MetaModel, match: Match,
                 rng: SeededRandom | None = None) -> None:
        self.model = model
        self.match = match
        self.rng = rng or SeededRandom(0)
        #: True once any action directive required the runtime module.
        self.needs_runtime = False

    def build(self) -> list[ast.stmt]:
        """The faulty statements that replace the matched window."""
        result: list[ast.stmt] = []
        for stmt in self.model.replacement_stmts:
            result.extend(self._build_stmt(stmt))
        return result

    # -- statements -----------------------------------------------------------

    def _build_stmt(self, stmt: ast.stmt) -> list[ast.stmt]:
        directive = self.model.directive_of_stmt(stmt)
        if directive is None:
            return [self._transform(copy.deepcopy(stmt))]
        return self._stmts_for_directive(directive)

    def _stmts_for_directive(self, directive: Directive) -> list[ast.stmt]:
        kind = directive.kind
        if kind is DirectiveKind.BLOCK:
            bound = self._bound(directive)
            return [copy.deepcopy(item) for item in bound]
        if kind is DirectiveKind.HOG:
            self.needs_runtime = True
            return [ast.Expr(value=runtime_call("hog", [
                ast.Constant(directive.params.get("resource", "cpu")),
                ast.Constant(directive.params.get_float("seconds", 2.0)),
                ast.Constant(directive.params.get_int("threads", 2)),
                ast.Constant(directive.params.get_int("mb", 64)),
            ]))]
        if kind is DirectiveKind.TIMEOUT:
            self.needs_runtime = True
            return [ast.Expr(value=runtime_call("delay", [
                ast.Constant(directive.params.get_float("seconds", 1.0)),
            ]))]
        if kind is DirectiveKind.PICK:
            return self._pick_stmts(directive)
        if kind is DirectiveKind.CALL:
            capture = self._bound_call(directive)
            if capture.containing_stmt is not None:
                return [copy.deepcopy(capture.containing_stmt)]
            return [ast.Expr(value=copy.deepcopy(capture.call))]
        # $EXPR / $STRING / $NUM / $VAR reference used as a statement.
        bound = self._bound(directive)
        return [ast.Expr(value=copy.deepcopy(bound))]

    def _pick_stmts(self, directive: Directive) -> list[ast.stmt]:
        choice = self.rng.choice(directive.params.get_choices("choices"))
        try:
            module = ast.parse(choice)
        except SyntaxError as exc:
            raise PatternCompileError(
                f"spec {self.model.name!r}: $PICK choice {choice!r} is not "
                f"valid Python: {exc.msg}",
                line=directive.line,
            ) from exc
        return module.body

    # -- expressions ----------------------------------------------------------

    def _transform(self, node: ast.AST) -> ast.AST:
        """Substitute every placeholder inside an already-copied node."""
        result = _Substituter(self).visit(node)
        for child in ast.walk(result):
            body = getattr(child, "body", None)
            if isinstance(body, list) and not body and not isinstance(
                child, ast.Module
            ):
                body.append(ast.Pass())
        return result

    def _expr_for_name(self, directive: Directive) -> ast.expr:
        kind = directive.kind
        if kind is DirectiveKind.PICK:
            choice = self.rng.choice(directive.params.get_choices("choices"))
            try:
                return ast.parse(choice, mode="eval").body
            except SyntaxError as exc:
                raise PatternCompileError(
                    f"spec {self.model.name!r}: $PICK choice {choice!r} is "
                    f"not a valid expression: {exc.msg}",
                    line=directive.line,
                ) from exc
        if kind is DirectiveKind.CALL:
            capture = self._bound_call(directive)
            return copy.deepcopy(capture.call)
        if kind in (DirectiveKind.EXPR, DirectiveKind.STRING,
                    DirectiveKind.NUM, DirectiveKind.VAR):
            return copy.deepcopy(self._bound(directive))
        raise BindingError(
            f"spec {self.model.name!r}: ${kind.value} cannot be used as a "
            "bare expression in the into block",
            line=directive.line,
        )

    def _rebuild_call(self, directive: Directive,
                      template: ast.Call) -> ast.expr:
        """``$CALL#c(...)`` in the replacement: rebuild the bound call."""
        capture = self._bound_call(directive)
        new_args: list[ast.expr] = []
        wildcard_index = 0
        used_wildcard = False
        for arg in template.args:
            if is_ellipsis_expr(arg):
                if wildcard_index >= len(capture.wildcards):
                    raise BindingError(
                        f"spec {self.model.name!r}: the into block uses more "
                        f"'...' wildcards on #{directive.tag} than the "
                        "change pattern captured",
                        line=directive.line,
                    )
                new_args.extend(
                    copy.deepcopy(item)
                    for item in capture.wildcards[wildcard_index]
                )
                wildcard_index += 1
                used_wildcard = True
            else:
                new_args.append(self._transform(copy.deepcopy(arg)))
        new_keywords = [
            ast.keyword(
                arg=keyword.arg,
                value=self._transform(copy.deepcopy(keyword.value)),
            )
            for keyword in template.keywords
        ]
        if used_wildcard:
            new_keywords.extend(
                copy.deepcopy(keyword) for keyword in capture.absorbed_keywords
            )
        return ast.Call(
            func=copy.deepcopy(capture.call.func),
            args=new_args,
            keywords=new_keywords,
        )

    def _corrupt_call(self, directive: Directive,
                      template: ast.Call) -> ast.expr:
        if len(template.args) != 1 or template.keywords:
            raise PatternCompileError(
                f"spec {self.model.name!r}: $CORRUPT takes exactly one "
                "argument",
                line=directive.line,
            )
        self.needs_runtime = True
        inner = self._transform(copy.deepcopy(template.args[0]))
        mode = directive.params.get("mode", "auto")
        return runtime_call("corrupt", [inner, ast.Constant(mode)])

    # -- binding lookups -------------------------------------------------------

    def _bound(self, directive: Directive):
        if directive.tag is None or not self.match.bindings.has(directive.tag):
            raise BindingError(
                f"spec {self.model.name!r}: ${directive.kind.value} in the "
                f"into block references unbound tag "
                f"#{directive.tag or '<none>'}",
                line=directive.line,
            )
        return self.match.bindings.get(directive.tag)

    def _bound_call(self, directive: Directive) -> CallCapture:
        bound = self._bound(directive)
        if not isinstance(bound, CallCapture):
            raise BindingError(
                f"spec {self.model.name!r}: tag #{directive.tag} is not "
                "bound to a call",
                line=directive.line,
            )
        return bound


class _Substituter(ast.NodeTransformer):
    """Node transformer that expands placeholders via the builder."""

    def __init__(self, builder: ReplacementBuilder) -> None:
        self.builder = builder
        self.model = builder.model

    def visit_Call(self, node: ast.Call) -> ast.expr:
        directive = self.model.directive_of_call(node)
        if directive is not None:
            if directive.kind is DirectiveKind.CORRUPT:
                return self.builder._corrupt_call(directive, node)
            if directive.kind is DirectiveKind.CALL:
                return self.builder._rebuild_call(directive, node)
            raise BindingError(
                f"spec {self.model.name!r}: ${directive.kind.value} cannot "
                "be called with arguments in the into block",
                line=directive.line,
            )
        self.generic_visit(node)
        return node

    def visit_Expr(self, node: ast.Expr):
        # A directive on a line of its own *inside* a compound replacement
        # statement (e.g. ``$BLOCK{tag=b}`` within an ``if`` body) expands
        # to zero or more statements; NodeTransformer splices the list.
        directive = self.model.directive_of_name(node.value)
        if directive is not None:
            return self.builder._stmts_for_directive(directive)
        self.generic_visit(node)
        return node

    def visit_Name(self, node: ast.Name) -> ast.expr:
        directive = self.model.directive_of_name(node)
        if directive is not None:
            return self.builder._expr_for_name(directive)
        return node
