"""Span-based mutant materialization: splice bytes, don't re-emit files.

The legacy mutant path deepcopies the pristine parse tree and re-unparses
the *entire* file per mutant, even though only a few statements change.
This module materializes the mutant by source patching instead: the
matched statement window's byte span is computed from the pristine tree's
position info (``lineno``/``col_offset`` pairs are UTF-8 *byte* offsets),
the replacement (trigger guard or faulty statements) is unparsed alone,
re-indented to the window's indentation, and spliced into the original
bytes — plus a second zero-width splice for the runtime-import line.

Soundness over cleverness: :func:`patch_mutant` returns ``None`` whenever
the window cannot be patched provably safely — same-line compound
statements (``if x: y()``), ``;``-joined statements, ``elif`` windows
(whose source token differs from their AST rendering), decorated
definitions, import insertion points that would reorder statements — and
the caller falls back to the deepcopy+unparse path.  Every successful
patch is parse-checked; the AST-equivalence oracle
(:func:`ast_equivalent`) lets callers and the test suite assert that both
paths produce semantically identical mutants.

Everything *outside* the patched spans — comments, blank lines, string
quoting, formatting — is preserved byte-for-byte, which the legacy
whole-file unparse never could.
"""

from __future__ import annotations

import ast

from repro.mutator.runtime import RUNTIME_ALIAS, RUNTIME_MODULE_NAME
from repro.mutator.substitute import runtime_call
from repro.scanner.matcher import Match

RUNTIME_IMPORT_LINE = f"import {RUNTIME_MODULE_NAME} as {RUNTIME_ALIAS}\n"


def ast_equivalent(source_a: str, source_b: str) -> bool:
    """True iff the two sources parse to structurally identical trees.

    Positions and formatting are ignored (``ast.dump`` drops attributes),
    so a span-patched mutant and a whole-file-unparsed mutant compare
    equal exactly when they are the same program.
    """
    return ast.dump(ast.parse(source_a)) == ast.dump(ast.parse(source_b))


def patch_mutant(
    source: str,
    tree: ast.Module,
    match: Match,
    faulty: list[ast.stmt],
    *,
    trigger: bool,
    fault_id: str,
    needs_runtime: bool,
) -> str | None:
    """Splice the mutant for ``match`` into ``source``, or ``None``.

    ``tree`` and ``match`` are the *pristine* parse tree and its match —
    nothing here mutates either, so memoized trees may be shared freely.
    ``faulty`` is the already-built replacement statement list (the RNG
    draws happened in the caller, once, so patch and fallback see the
    same stream).  A ``None`` return means "fall back to deepcopy+
    unparse"; it is never an error.
    """
    stmts = match.stmts
    if not stmts:
        return None  # zero-width window: nowhere to splice
    span = _window_span(source, stmts)
    if span is None:
        return None
    start_line, start_col, end_line, end_col, lines = span

    start_bytes = lines[start_line - 1].encode("utf-8")
    prefix = start_bytes[:start_col]
    if prefix.strip():
        # The window shares its first line with other code (`if x: y()`,
        # `a = 1; y()`): a textual splice cannot preserve the head.
        return None
    if start_bytes[start_col:start_col + 4] == b"elif":
        # An elif clause's AST (a nested If) unparses as `if ...`, which
        # would detach the branch from its chain.  Only the legacy path
        # re-emits the surrounding chain correctly.
        return None
    tail = lines[end_line - 1].encode("utf-8")[end_col:].decode("utf-8")
    stripped_tail = tail.strip()
    if stripped_tail and not stripped_tail.startswith("#"):
        return None  # `; more()` or a same-line suite follows the window

    insert_line = None
    if needs_runtime and not _has_runtime_import(tree):
        insert_line = _runtime_import_line(tree, len(lines))
        if insert_line is None or insert_line > start_line:
            # No provably safe zero-width insertion point before the
            # window (e.g. the window itself spans the import slot).
            return None

    replacement = _render_window(match, faulty, trigger, fault_id,
                                 indent=prefix.decode("utf-8"))
    window_text = prefix.decode("utf-8") + replacement + tail
    if not replacement and not window_text.strip():
        # Pure deletion of the whole line(s): drop them entirely rather
        # than leaving stray whitespace lines behind.
        window_text = ""

    patched_lines = list(lines)
    patched_lines[start_line - 1:end_line] = (
        [window_text] if window_text else []
    )
    if insert_line is not None:
        index = insert_line - 1
        if index >= len(patched_lines):
            if patched_lines and not patched_lines[-1].endswith("\n"):
                patched_lines[-1] += "\n"
            patched_lines.append(RUNTIME_IMPORT_LINE)
        else:
            patched_lines.insert(index, RUNTIME_IMPORT_LINE)
    patched = "".join(patched_lines)
    try:
        ast.parse(patched)
    except (SyntaxError, ValueError):
        return None  # exotic layout survived the checks; fall back
    return patched


# -- span computation -----------------------------------------------------------


def _window_span(
    source: str, stmts: list[ast.stmt],
) -> tuple[int, int, int, int, list[str]] | None:
    """``(start_line, start_col, end_line, end_col, lines)`` or None.

    Lines are 1-based; columns are UTF-8 byte offsets (the ``ast``
    convention).  Returns None when positions are missing or the window
    starts on a decorated definition (decorator lines sit *above* the
    statement's recorded position, so the span would exclude them).
    """
    first, last = stmts[0], stmts[-1]
    if getattr(first, "decorator_list", None):
        return None
    start_line = getattr(first, "lineno", None)
    start_col = getattr(first, "col_offset", None)
    end_line = getattr(last, "end_lineno", None)
    end_col = getattr(last, "end_col_offset", None)
    if None in (start_line, start_col, end_line, end_col):
        return None
    lines = source.splitlines(keepends=True)
    if not (1 <= start_line <= end_line <= len(lines)):
        return None
    return start_line, start_col, end_line, end_col, lines


# -- replacement rendering ------------------------------------------------------


def _render_window(match: Match, faulty: list[ast.stmt], trigger: bool,
                   fault_id: str, indent: str) -> str:
    """The replacement text for the window, re-indented to ``indent``."""
    if trigger:
        stmts: list[ast.stmt] = [ast.If(
            test=runtime_call("enabled", [ast.Constant(fault_id)]),
            body=list(faulty) or [ast.Pass()],
            orelse=list(match.stmts),
        )]
    else:
        stmts = list(faulty)
        if not stmts and _covers_whole_list(match):
            stmts = [ast.Pass()]  # an emptied suite still needs a body
    if not stmts:
        return ""
    rendered: list[str] = []
    for stmt in stmts:
        # unparse needs location attributes on 3.11 (type-comment lookup);
        # synthetic guard nodes have none, real nodes keep theirs.
        ast.fix_missing_locations(stmt)
        rendered.append(ast.unparse(stmt))
    text = "\n".join(rendered)
    lines = text.split("\n")
    # First line splices after the window's own indentation; every later
    # line (including unparse's blank separators, left empty) re-indents.
    return "\n".join(
        [lines[0]] + [indent + line if line else line for line in lines[1:]]
    )


def _covers_whole_list(match: Match) -> bool:
    body = getattr(match.owner, match.field)
    return match.start == 0 and match.end >= len(body)


# -- runtime-import placement ---------------------------------------------------


def _has_runtime_import(tree: ast.Module) -> bool:
    for stmt in tree.body:
        if isinstance(stmt, ast.Import) and any(
            alias.name == RUNTIME_MODULE_NAME
            and alias.asname == RUNTIME_ALIAS
            for alias in stmt.names
        ):
            return True
    return False


def _runtime_import_line(tree: ast.Module, total_lines: int) -> int | None:
    """1-based line where the runtime-import line may be inserted.

    Mirrors ``_insert_runtime_import``'s index (after any docstring and
    ``__future__`` imports) translated to source positions.  Returns None
    when a whole-line insertion there would reorder statements (a prior
    statement sharing the line, or a column-offset statement).
    """
    body = tree.body
    index = 0
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ) and isinstance(body[0].value.value, str):
        index = 1
    while index < len(body) and (
        isinstance(body[index], ast.ImportFrom)
        and body[index].module == "__future__"
    ):
        index += 1
    if index >= len(body):
        return total_lines + 1  # append at EOF
    stmt = body[index]
    line = stmt.lineno
    decorators = getattr(stmt, "decorator_list", None)
    if decorators:
        line = min(line, min(d.lineno for d in decorators))
    if stmt.col_offset != 0:
        return None  # `;`-joined module top: a line insert would reorder
    if index > 0:
        previous = body[index - 1]
        if getattr(previous, "end_lineno", line) >= line:
            return None  # the previous statement shares the line
    return line


__all__ = ["RUNTIME_IMPORT_LINE", "ast_equivalent", "patch_mutant"]
