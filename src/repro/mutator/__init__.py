"""Source-code mutator and injected runtime (paper §IV-B)."""

from repro.mutator.mutate import Mutation, Mutator
from repro.mutator.runtime import (
    COVERAGE_ENV,
    RUNTIME_ALIAS,
    RUNTIME_MODULE_NAME,
    RUNTIME_SOURCE,
    SEED_ENV,
    TRIGGER_ENV,
    write_runtime,
)
from repro.mutator.substitute import ReplacementBuilder, runtime_call

__all__ = [
    "COVERAGE_ENV",
    "Mutation",
    "Mutator",
    "RUNTIME_ALIAS",
    "RUNTIME_MODULE_NAME",
    "RUNTIME_SOURCE",
    "ReplacementBuilder",
    "SEED_ENV",
    "TRIGGER_ENV",
    "runtime_call",
    "write_runtime",
]
