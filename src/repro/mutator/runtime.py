"""The ProFIPy runtime support module shipped next to mutated sources.

Mutated programs import ``profipy_runtime`` (paper §IV-B): it implements the
EDFI-style *trigger* that enables/disables the faulty branch while the
target runs, the coverage probes used by the fault-free pre-run (§IV-D),
and the run-time actions behind ``$CORRUPT``, ``$HOG`` and ``$TIMEOUT``.

The paper toggles the trigger through a shared-memory word; we substitute a
small file re-read by the runtime (see DESIGN.md) so the tool can flip the
fault between workload rounds without restarting the target.  The module is
generated as *source text* (not imported from this package) because it must
be self-contained inside the sandbox.
"""

from __future__ import annotations

from pathlib import Path

#: Module name mutated files import.
RUNTIME_MODULE_NAME = "profipy_runtime"

#: Alias used inside mutated code (not name-mangled: two trailing underscores).
RUNTIME_ALIAS = "__pfp_rt__"

#: Environment variables understood by the runtime.
TRIGGER_ENV = "PROFIPY_TRIGGER_FILE"
COVERAGE_ENV = "PROFIPY_COVERAGE_FILE"
SEED_ENV = "PROFIPY_RNG_SEED"

RUNTIME_SOURCE = '''\
"""ProFIPy runtime support (auto-generated; do not edit).

Provides the fault trigger, coverage probes, and runtime fault actions for
mutated sources.  Every entry point is defensive: a broken runtime must
never add failures beyond the injected one.
"""

import os
import random
import threading
import time

TRIGGER_ENV = "PROFIPY_TRIGGER_FILE"
COVERAGE_ENV = "PROFIPY_COVERAGE_FILE"
SEED_ENV = "PROFIPY_RNG_SEED"

_rng = random.Random(int(os.environ.get(SEED_ENV, "0") or "0"))
_cover_seen = set()
_lock = threading.Lock()
_trigger_cache = {"path": None, "mtime": None, "value": True}
_hogs = []


def enabled(fault_id):
    """True when the injected fault identified by ``fault_id`` is active.

    The trigger file contains ``1``/``on`` (all faults active), ``0``/``off``
    (all inactive), or a comma-separated list of active fault ids.  Without
    a trigger file the fault is permanently active.
    """
    path = os.environ.get(TRIGGER_ENV)
    if not path:
        return True
    try:
        mtime = os.stat(path).st_mtime_ns
    except OSError:
        return True
    cache = _trigger_cache
    if cache["path"] != path or cache["mtime"] != mtime:
        try:
            with open(path, "r") as handle:
                content = handle.read().strip()
        except OSError:
            return True
        cache["path"] = path
        cache["mtime"] = mtime
        cache["value"] = content
    content = cache["value"]
    if content is True or content == "":
        return True
    if content in ("1", "on", "all", "true"):
        return True
    if content in ("0", "off", "none", "false"):
        return False
    return fault_id in [part.strip() for part in content.split(",")]


def cover(point_id):
    """Record that execution reached an injection point (coverage pre-run)."""
    path = os.environ.get(COVERAGE_ENV)
    if not path:
        return
    with _lock:
        if point_id in _cover_seen:
            return
        _cover_seen.add(point_id)
        try:
            with open(path, "a") as handle:
                handle.write(point_id + "\\n")
        except OSError:
            pass


def corrupt(value, mode="auto"):
    """Type-aware value corruption backing the ``$CORRUPT`` directive."""
    try:
        if mode == "none":
            return None
        if mode == "negate":
            if isinstance(value, bool):
                return not value
            if isinstance(value, (int, float)):
                return -value
            return None
        if mode == "string" or (mode == "auto" and isinstance(value, str)):
            return _corrupt_string(value if isinstance(value, str) else str(value))
        if mode == "int" or (
            mode == "auto"
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            return _corrupt_int(int(value))
        if mode == "auto":
            if value is None:
                return "\\x00corrupted"
            if isinstance(value, bool):
                return not value
            if isinstance(value, float):
                return -value if value else 1e308
            if isinstance(value, (list, tuple)):
                items = list(value)
                if items:
                    items.pop(_rng.randrange(len(items)))
                result = type(value)(items) if not isinstance(value, list) else items
                return result
            if isinstance(value, dict):
                items = dict(value)
                if items:
                    items.pop(_rng.choice(sorted(items, key=repr)))
                return items
            return None
    except Exception:
        return None
    return None


def _corrupt_string(value):
    if not value:
        return "\\x00"
    chars = list(value)
    count = max(1, len(chars) // 2)
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789#@!?~"
    for index in _rng.sample(range(len(chars)), min(count, len(chars))):
        original = chars[index]
        replacement = _rng.choice(alphabet)
        while replacement == original:
            replacement = _rng.choice(alphabet)
        chars[index] = replacement
    return "".join(chars)


def _corrupt_int(value):
    candidates = [c for c in (-value, 0, value + 1, value - 1, -1, 2 ** 31 - 1)
                  if c != value]
    return _rng.choice(candidates or [value - 1])


def hog(resource="cpu", seconds=2.0, threads=2, mb=64):
    """Spawn a resource hog (``$HOG``): stale CPU threads, memory, or disk.

    CPU hogs are daemon threads so they die with the process; ``seconds <= 0``
    means "until process exit" (a truly stale thread, as in paper §V-C).
    """
    try:
        seconds = float(seconds)
        if resource == "cpu":
            deadline = None if seconds <= 0 else time.monotonic() + seconds
            for _ in range(max(1, int(threads))):
                thread = threading.Thread(
                    target=_burn_cpu, args=(deadline,), daemon=True
                )
                thread.start()
                _hogs.append(thread)
        elif resource == "memory":
            _hogs.append(bytearray(int(mb) * 1024 * 1024))
            if seconds > 0:
                timer = threading.Timer(seconds, _release_memory)
                timer.daemon = True
                timer.start()
        elif resource == "disk":
            path = os.path.join(os.getcwd(), ".pfp_hog_%d" % _rng.randrange(10 ** 9))
            with open(path, "wb") as handle:
                handle.write(b"\\0" * int(mb) * 1024 * 1024)
            _hogs.append(path)
    except Exception:
        pass


def _burn_cpu(deadline):
    value = 1.0
    while deadline is None or time.monotonic() < deadline:
        value = value * 1.0000001 + 1.0
        if value > 1e12:
            value = 1.0


def _release_memory():
    _hogs[:] = [h for h in _hogs if not isinstance(h, bytearray)]


def delay(seconds=1.0):
    """Inject an artificial time delay (``$TIMEOUT``)."""
    try:
        time.sleep(float(seconds))
    except Exception:
        pass
'''


def write_runtime(directory: str | Path) -> Path:
    """Write ``profipy_runtime.py`` into ``directory`` and return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{RUNTIME_MODULE_NAME}.py"
    path.write_text(RUNTIME_SOURCE, encoding="utf-8")
    return path
