"""The full ProFIPy workflow: Scan → Execution → Data Analysis (Fig. 2).

:class:`Campaign` wires every phase together: compile the fault model,
scan the injectable files, build the plan (filter/sample), optionally
reduce it by coverage, then hand the pending plan to a pluggable
execution backend (``CampaignConfig.backend``) that pipelines mutant
generation with sharded experiment execution, streaming results to
disk, and finally pass everything to the analysis layer.

The execution phase is deterministic and crash-resumable: every
per-experiment RNG and runtime seed derives from
``sha256(campaign_seed, experiment_id)``, and completed experiments are
appended to an ``experiments.jsonl`` stream as they finish.  A restarted
campaign over the same stream skips the recorded experiment ids.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import remove_tree
from repro.faultmodel.model import FaultModel
from repro.orchestrator.backends import (
    BACKEND_REMOTE,
    BACKEND_THREAD,
    ExecutionContext,
    create_backend,
    discard_shard_streams,
    recover_shard_streams,
    validate_backend_name,
)
from repro.orchestrator.coverage import CoverageReport, reduce_plan, run_coverage
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.plan import Plan
from repro.orchestrator.stream import ExperimentStream
from repro.sandbox.image import SandboxImage
from repro.scanner.cache import ScanCache, faultload_digest
from repro.scanner.scan import ScanResult, scan_files
from repro.stats.config import SamplingConfig
from repro.stats.sampler import monotone_sample
from repro.stats.stopping import StoppingMonitor, rule_from_sampling
from repro.workload.spec import WorkloadSpec


class CampaignCancelled(Exception):
    """A campaign stopped early on a cooperative cancellation request.

    Raised by :meth:`Campaign.run` when its ``cancel`` hook reports a
    request between experiments.  In-flight experiments finish and are
    recorded; the partial :class:`CampaignResult` (with its result
    stream) rides on :attr:`result`, so the stream is a valid
    ``resume_from`` point for a follow-up campaign.
    """

    def __init__(self, result: "CampaignResult") -> None:
        super().__init__(f"campaign {result.name!r} cancelled after "
                         f"{result.executed} experiments")
        self.result = result


@dataclass
class CampaignConfig:
    """Everything the user configures for one campaign (paper Fig. 2)."""

    name: str
    target_dir: Path
    fault_model: FaultModel
    workload: WorkloadSpec
    #: Relative paths of the files to inject (None = every .py in target).
    injectable_files: list[str] | None = None
    containerfile: str | None = None
    trigger: bool = True
    rounds: int = 2
    coverage: bool = True
    #: Random sample size over the plan (None = inject everywhere).
    #: Drawn through the prefix-stable seeded sampler, so raising the
    #: size and resuming executes only the delta.
    sample: int | None = None
    #: Statistical sampling / early-stopping policy (see
    #: :class:`repro.stats.config.SamplingConfig`).  Its
    #: ``max_experiments`` supersedes :attr:`sample` when both are set.
    sampling: SamplingConfig | None = None
    #: Filters applied to the plan before sampling.
    spec_filter: list[str] | None = None
    file_filter: list[str] | None = None
    #: None = adaptive N-1 parallelism; an int pins the worker count.
    parallelism: int | None = None
    #: Execution backend: ``"thread"`` (one in-process pool),
    #: ``"process"`` (per-shard worker processes), or ``"remote"``
    #: (per-shard workers over the /v1 API).  Results are byte-identical
    #: across backends — this is purely a scaling choice.
    backend: str = BACKEND_THREAD
    #: Shard count for the deterministic plan partitioner (independent
    #: of results; a resumed campaign may change it freely).
    shards: int = 1
    #: Worker base URLs (``http://host:port`` of ``profipy worker``
    #: instances) for the remote backend.  The remote backend needs
    #: at least one of ``workers`` / ``registry_url``.
    workers: list[str] | None = None
    #: Coordinator URL whose ``/v1/workers`` registry supplies (and
    #: health-tracks) the fleet for the remote backend.  Static
    #: ``workers`` URLs still work and are registered there as
    #: unmanaged peers when both are given.
    registry_url: str | None = None
    #: Content-addressed snapshot of the pristine target tree
    #: (``ImageManifest.to_dict()`` form).  When set and ``target_dir``
    #: is absent on this host, the campaign materializes the tree from
    #: the blob store into its workspace first — how a campaign
    #: submitted over the /v1 API runs without any filesystem path
    #: shared with the client.
    image_manifest: dict | None = None
    #: Local blob store directory: where a manifest-bearing campaign
    #: materializes its target from, and where the remote backend
    #: ingests the built image before shipping it to workers (default:
    #: ``<workspace>/blobs``; the service points submitted campaigns at
    #: its own persistent store).
    blob_cache_dir: Path | None = None
    #: Scan-phase worker processes (None/1 = in-process indexed scan).
    scan_jobs: int | None = None
    #: Persistent scan-cache directory; repeated campaigns over unchanged
    #: trees skip re-matching (the as-a-Service fast path).
    scan_cache_dir: Path | None = None
    #: Incremental scan over the cache's stat/tree manifests: a
    #: re-campaign reads, hashes, and scans only the files that changed
    #: since the last scan.  Turn off to force every file to be re-read
    #: and re-hashed (the per-file cache still applies).
    scan_incremental: bool = True
    seed: int = 0
    #: Workspace directory (default: a fresh temporary directory).
    workspace: Path | None = None
    keep_artifacts: bool = False
    #: Result stream file (default: ``<workspace>/experiments.jsonl``).
    results_path: Path | None = None
    #: Skip experiments already recorded in the result stream.  Leave on
    #: for crash-resume; turn off to force a full re-run over a reused
    #: workspace (the stream is truncated first).
    resume: bool = True

    def __post_init__(self) -> None:
        self.target_dir = Path(self.target_dir)
        # target_dir existence is checked where the tree is actually
        # read (scan / run), not at construction: a config may legally
        # name a tree that exists only as a content-addressed manifest,
        # or round-trip through the API on a host that never sees the
        # client's filesystem.
        validate_backend_name(self.backend)
        if isinstance(self.sampling, dict):
            # Wire-format configs arrive with the sampling block as a
            # plain dict; normalize (and validate) it here.
            self.sampling = SamplingConfig.from_dict(self.sampling)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if (self.backend == BACKEND_REMOTE and not self.workers
                and not self.registry_url):
            raise ValueError(
                "backend 'remote' requires worker URLs "
                "(CampaignConfig.workers / --worker) or a registry "
                "(CampaignConfig.registry_url / --registry)"
            )
        if self.workspace is not None:
            # Sandboxed workloads run with their own cwd; a relative
            # workspace (e.g. the CLI's default .profipy) would make the
            # coverage/trigger paths resolve against the wrong directory.
            self.workspace = Path(self.workspace).resolve()
        if self.results_path is not None:
            self.results_path = Path(self.results_path).resolve()
        if self.blob_cache_dir is not None:
            self.blob_cache_dir = Path(self.blob_cache_dir).resolve()


@dataclass
class CampaignResult:
    """Everything a campaign produced, for the analysis phase.

    Experiment results live in the ``experiments.jsonl`` stream at
    ``experiments_path``; :attr:`experiments` loads them lazily (sorted by
    experiment id, so the order is deterministic regardless of completion
    order).  During execution nothing accumulates in memory.
    """

    name: str
    points_found: int = 0
    points_planned: int = 0
    #: Plan size before sampling truncated it (== points_planned for
    #: unsampled campaigns).
    population: int = 0
    coverage: CoverageReport | None = None
    scan_seconds: float = 0.0
    coverage_seconds: float = 0.0
    execution_seconds: float = 0.0
    scan_errors: dict[str, str] = field(default_factory=dict)
    #: Where the per-experiment result stream lives (None once the
    #: backing file is gone, e.g. a deleted temporary workspace).
    experiments_path: Path | None = None
    #: Kept workspace (explicit, or temporary with ``keep_artifacts``).
    workspace: Path | None = None
    artifacts_dir: Path | None = None
    #: Experiments skipped because the stream already recorded them.
    resumed: int = 0
    #: Set when a stopping rule ended the campaign before the plan was
    #: exhausted: ``{reason, experiments, confidence, modes: {...}}``
    #: with per-mode Wilson estimates.  The stream stays a valid resume
    #: point — a follow-up campaign extends it toward exhaustive.
    stopped_early: dict | None = None
    #: Final per-failure-mode estimates (same shape as the
    #: ``stopped_early`` block) whenever a sampling policy was active.
    mode_estimates: dict | None = None
    _experiments: list[ExperimentResult] | None = None

    @property
    def experiments(self) -> list[ExperimentResult]:
        if self._experiments is None:
            if self.experiments_path is not None:
                self._experiments = sorted(
                    ExperimentStream(self.experiments_path).load(),
                    key=lambda experiment: experiment.experiment_id,
                )
            else:
                self._experiments = []
        return self._experiments

    @experiments.setter
    def experiments(self, value: list[ExperimentResult]) -> None:
        self._experiments = list(value)

    def materialize(self) -> None:
        """Load the stream into memory (call before its file disappears)."""
        _ = self.experiments

    @property
    def executed(self) -> int:
        return len(self.experiments)

    @property
    def failures(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.any_failure]

    @property
    def failures_round1(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.failed_round1]

    @property
    def failures_round2(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.failed_round2]

    def summary(self) -> dict:
        """The §V headline numbers for this campaign."""
        return {
            "campaign": self.name,
            "scan_errors": len(self.scan_errors),
            "points_found": self.points_found,
            "points_covered": (self.coverage.covered_count
                               if self.coverage else None),
            "experiments": self.executed,
            "experiments_with_failures": len(self.failures),
            "failures_round1": len(self.failures_round1),
            "failures_round2": len(self.failures_round2),
            "resumed": self.resumed,
            "population": self.population,
            "stopped_early": self.stopped_early,
            "mode_estimates": self.mode_estimates,
            "workspace": str(self.workspace) if self.workspace else None,
            "artifacts_dir": (str(self.artifacts_dir)
                              if self.artifacts_dir else None),
        }


class Campaign:
    """Drives one fault injection campaign end to end."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.models = {
            model.name: model for model in config.fault_model.compile()
        }

    # -- scan phase --------------------------------------------------------------

    def scan(self) -> ScanResult:
        """Find every injection point in the injectable files.

        Runs through the indexed scan engine: spec prefilters, one shared
        AST walk per file, ``scan_jobs`` warm worker processes, and an
        optional content-addressed result cache.  Missing or unreadable
        injectable files are recorded in ``parse_errors`` rather than
        aborting the campaign.
        """
        config = self.config
        if not config.target_dir.exists():
            raise FileNotFoundError(
                f"target_dir {config.target_dir} not found"
            )
        files = config.injectable_files
        if files is None:
            from repro.common.fsutil import iter_python_files

            paths = sorted(iter_python_files(config.target_dir))
        else:
            paths = [config.target_dir / rel for rel in files]
        cache = (ScanCache(config.scan_cache_dir)
                 if config.scan_cache_dir is not None else None)
        # Specs and models derive from the same compiled set, so the
        # serial and parallel paths scan an identical faultload (and
        # produce identical cache digests).
        models = list(self.models.values())
        return scan_files(
            paths,
            [model.spec for model in models],
            root=config.target_dir,
            jobs=config.scan_jobs or 1,
            cache=cache,
            models=models,
            incremental=config.scan_incremental,
        )

    # -- full workflow -------------------------------------------------------------

    def run(self, progress=None, cancel=None,
            on_progress=None) -> CampaignResult:
        """Scan, plan, (optionally) reduce by coverage, execute, collect.

        ``cancel`` is an optional zero-argument callable polled between
        experiments (the service layer wires it to the job scheduler's
        cancel flag).  Once it returns true, no further experiment
        starts; in-flight ones finish and are recorded, then
        :class:`CampaignCancelled` is raised carrying the partial result.

        ``on_progress`` is an optional callable receiving shard-aware
        progress snapshots (``experiments_done``/``experiments_total``
        over the *whole* plan, plus per-shard states) as the execution
        backend advances — the feed the service layer persists for
        ``/v1/jobs/{id}``.
        """
        config = self.config
        owns_workspace = config.workspace is None
        workspace = Path(
            config.workspace or tempfile.mkdtemp(prefix="profipy-")
        )
        workspace.mkdir(parents=True, exist_ok=True)
        result = CampaignResult(name=config.name)
        result.workspace = workspace
        say = progress or (lambda _msg: None)
        stream = ExperimentStream(
            config.results_path or workspace / "experiments.jsonl"
        )
        try:
            target_manifest = None
            if config.image_manifest is not None:
                # Lazy: the service package imports orchestrator modules.
                from repro.service.blobs import BlobStore, ImageManifest

                target_manifest = ImageManifest.from_dict(
                    config.image_manifest
                )
                if not config.target_dir.exists():
                    # The target tree never touched this host's disk:
                    # rebuild it byte-for-byte from the local blob store
                    # and run the normal workflow over the copy.
                    say(f"[{config.name}] materializing target from "
                        f"manifest {target_manifest.tree_digest[:12]}")
                    materialized = workspace / "target"
                    target_manifest.materialize(
                        materialized,
                        BlobStore(config.blob_cache_dir
                                  or workspace / "blobs"),
                    )
                    config = self.config = dataclasses.replace(
                        config, target_dir=materialized
                    )
            if not config.target_dir.exists():
                raise FileNotFoundError(
                    f"target_dir {config.target_dir} not found"
                )
            say(f"[{config.name}] building sandbox image")
            image = SandboxImage.build(
                config.target_dir, workspace / "image",
                containerfile=config.containerfile,
            )

            say(f"[{config.name}] scanning for injection points")
            scan_started = time.monotonic()
            scan = self.scan()
            result.scan_seconds = time.monotonic() - scan_started
            result.scan_errors = scan.parse_errors
            result.points_found = len(scan.points)

            plan = Plan.from_points(scan.points,
                                    prefix=f"{config.name}")
            if config.spec_filter or config.file_filter:
                plan = plan.filter(spec_names=config.spec_filter,
                                   files=config.file_filter)
            if config.coverage:
                say(f"[{config.name}] coverage pre-run over "
                    f"{len(plan)} points")
                coverage_started = time.monotonic()
                report = run_coverage(
                    image, config.workload, plan.points, self.models,
                    workspace / "sandboxes",
                )
                result.coverage_seconds = (
                    time.monotonic() - coverage_started
                )
                result.coverage = report
                plan = reduce_plan(plan, report)
            result.population = len(plan)
            sampling = config.sampling
            sample_target = (sampling.max_experiments
                             if sampling is not None else None)
            if sample_target is None:
                sample_target = config.sample
            if sample_target is not None:
                # Prefix-stable draw: re-running with a larger target
                # (or none) plans a superset, so resume executes only
                # the delta.
                plan = monotone_sample(
                    plan, sample_target, config.seed,
                    stratify_by=(sampling.stratify_by
                                 if sampling is not None else None),
                )
                say(f"[{config.name}] sampled {len(plan)} of "
                    f"{result.population} planned experiments")
            result.points_planned = len(plan)

            # Fingerprint of everything that gives experiment ids their
            # meaning; a stream recorded under different parameters must
            # not be silently replayed as this campaign's results.
            stream_meta = {
                "campaign": config.name,
                "seed": config.seed,
                "faultload": faultload_digest(list(self.models.values())),
                # A manifest names the target by *content*, so the same
                # campaign resumes cleanly on any host; a path-based
                # target keeps its host-local identity.
                "target": (f"manifest:{target_manifest.tree_digest}"
                           if target_manifest is not None
                           else str(config.target_dir.resolve())),
            }
            if config.resume:
                existing_meta = stream.read_meta()
                if existing_meta is not None and existing_meta != stream_meta:
                    changed = sorted(
                        key for key in stream_meta
                        if existing_meta.get(key) != stream_meta[key]
                    )
                    raise ValueError(
                        f"result stream {stream.path} was recorded by a "
                        f"different campaign (changed: {', '.join(changed)}); "
                        "re-run with resume=False (--no-resume) or use a "
                        "fresh workspace"
                    )
                # A run killed mid-flight under the process backend leaves
                # partial per-shard streams; fold them into the canonical
                # stream *before* computing the resume set, so those
                # experiments count as recorded regardless of the backend
                # or shard count this run uses.
                salvaged = recover_shard_streams(stream)
                if salvaged:
                    say(f"[{config.name}] recovered {salvaged} experiments "
                        "from partial shard streams")
                recorded = stream.recorded_ids()
                if existing_meta is None:
                    stream.write_meta(stream_meta)
            else:
                stream.clear()
                discard_shard_streams(stream.path)
                recorded = set()
                stream.write_meta(stream_meta)
            pending = plan.excluding(recorded)
            result.resumed = len(plan) - len(pending)
            if result.resumed:
                say(f"[{config.name}] resuming: {result.resumed} "
                    "experiments already recorded in the stream")

            artifacts = None
            if config.keep_artifacts:
                artifacts = workspace / "artifacts"
                artifacts.mkdir(parents=True, exist_ok=True)
                result.artifacts_dir = artifacts
            executor = ExperimentExecutor(
                image=image,
                workload=config.workload,
                models=self.models,
                base_dir=workspace / "sandboxes",
                trigger=config.trigger,
                rounds=config.rounds,
                campaign_seed=config.seed,
                artifacts_dir=artifacts,
                cancel_check=cancel,
            )

            # Sequential stopping rides the cooperative-cancel plumbing:
            # the monitor tails the result streams and its check() is
            # OR-ed into the cancel hook every backend already polls
            # between experiments.  In-flight experiments drain
            # normally; the user's own cancel keeps raising.
            monitor = None
            backend_cancel = cancel
            if sampling is not None:
                stop_rule = rule_from_sampling(sampling)
                if stop_rule is not None:
                    monitor = StoppingMonitor(
                        stream.path, stop_rule,
                        confidence=sampling.confidence,
                    )

                    def backend_cancel(user_cancel=cancel,
                                       check=monitor.check):
                        if user_cancel is not None and user_cancel():
                            return True
                        return check()

            say(f"[{config.name}] executing {len(pending)} experiments "
                f"({config.backend} backend, {config.shards} shard(s), "
                "pipelined mutant generation)")
            pending_list = list(pending)

            def emit_progress(snapshot):
                # Backends report over the pending remainder; the job
                # view shows progress over the whole plan, so offset by
                # the experiments the resume already accounted for.
                snapshot = dict(snapshot)
                snapshot["experiments_done"] += result.resumed
                snapshot["experiments_total"] += result.resumed
                snapshot["resumed"] = result.resumed
                on_progress(snapshot)

            backend = create_backend(config.backend)
            registry = None
            if config.registry_url:
                # Lazy: client.py imports this module at load time.
                from repro.service.client import ProFIPyClient

                registry = ProFIPyClient(config.registry_url, timeout=10.0)
            shard_manifest = None
            blob_store = None
            if config.backend == BACKEND_REMOTE:
                # Snapshot the *built* image (runtime + containerfile
                # effects included) into the local blob store; the
                # backend ships workers the manifest plus only the blobs
                # each one reports missing — no shared filesystem.
                from repro.service.blobs import BlobStore, ImageManifest

                blob_store = BlobStore(config.blob_cache_dir
                                       or workspace / "blobs")
                shard_manifest = ImageManifest.from_image(
                    image, store=blob_store
                )
            context = ExecutionContext(
                executor=executor,
                fault_model=config.fault_model,
                shards=config.shards,
                parallelism=config.parallelism,
                cancel=backend_cancel,
                on_progress=(emit_progress if on_progress is not None
                             else None),
                workers=config.workers,
                registry=registry,
                image_manifest=shard_manifest,
                blob_store=blob_store,
            )
            execution_started = time.monotonic()
            outcome = backend.execute(context, pending_list, stream)
            result.execution_seconds = time.monotonic() - execution_started
            result.experiments_path = stream.path
            user_cancelled = cancel is not None and cancel()
            if monitor is not None:
                result.mode_estimates = monitor.summary_block()
            if outcome.cancelled or user_cancelled:
                if (monitor is not None and monitor.stopped
                        and not user_cancelled):
                    # The stopping rule — not the user — ended the run:
                    # a successful bounded-cost campaign, not a
                    # cancellation.  The stream stays a valid resume
                    # point toward exhaustive.
                    result.stopped_early = result.mode_estimates
                    say(f"[{config.name}] stopped early after "
                        f"{result.executed} experiments: "
                        f"{monitor.reason}")
                else:
                    say(f"[{config.name}] cancelled after "
                        f"{result.executed} recorded experiments")
                    raise CampaignCancelled(result)
            if result.stopped_early is None:
                say(f"[{config.name}] done: "
                    f"{len(result.failures)}/{result.executed} experiments "
                    "showed failures")
            return result
        finally:
            if owns_workspace and not config.keep_artifacts:
                # The stream file lives in the workspace we are about to
                # delete: materialize results first so the analysis layer
                # still sees them.
                result.materialize()
                if (result.experiments_path is not None
                        and workspace in result.experiments_path.parents):
                    result.experiments_path = None
                result.workspace = None
                remove_tree(workspace)
