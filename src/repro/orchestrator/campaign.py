"""The full ProFIPy workflow: Scan → Execution → Data Analysis (Fig. 2).

:class:`Campaign` wires every phase together: compile the fault model,
scan the injectable files, build the plan (filter/sample), optionally
reduce it by coverage, execute experiments in the adaptive parallel pool,
and hand the results to the analysis layer.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import remove_tree
from repro.common.rng import SeededRandom
from repro.faultmodel.model import FaultModel
from repro.orchestrator.coverage import CoverageReport, reduce_plan, run_coverage
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.experiment import ExperimentResult
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.sandbox.pool import ExperimentPool
from repro.scanner.cache import ScanCache
from repro.scanner.scan import ScanResult, scan_files
from repro.workload.spec import WorkloadSpec


@dataclass
class CampaignConfig:
    """Everything the user configures for one campaign (paper Fig. 2)."""

    name: str
    target_dir: Path
    fault_model: FaultModel
    workload: WorkloadSpec
    #: Relative paths of the files to inject (None = every .py in target).
    injectable_files: list[str] | None = None
    containerfile: str | None = None
    trigger: bool = True
    rounds: int = 2
    coverage: bool = True
    #: Random sample size over the plan (None = inject everywhere).
    sample: int | None = None
    #: Filters applied to the plan before sampling.
    spec_filter: list[str] | None = None
    file_filter: list[str] | None = None
    #: None = adaptive N-1 parallelism; an int pins the worker count.
    parallelism: int | None = None
    #: Scan-phase worker processes (None/1 = in-process indexed scan).
    scan_jobs: int | None = None
    #: Persistent scan-cache directory; repeated campaigns over unchanged
    #: trees skip re-matching (the as-a-Service fast path).
    scan_cache_dir: Path | None = None
    seed: int = 0
    #: Workspace directory (default: a fresh temporary directory).
    workspace: Path | None = None
    keep_artifacts: bool = False

    def __post_init__(self) -> None:
        self.target_dir = Path(self.target_dir)
        if not self.target_dir.exists():
            raise FileNotFoundError(f"target_dir {self.target_dir} not found")
        if self.workspace is not None:
            # Sandboxed workloads run with their own cwd; a relative
            # workspace (e.g. the CLI's default .profipy) would make the
            # coverage/trigger paths resolve against the wrong directory.
            self.workspace = Path(self.workspace).resolve()


@dataclass
class CampaignResult:
    """Everything a campaign produced, for the analysis phase."""

    name: str
    points_found: int = 0
    points_planned: int = 0
    coverage: CoverageReport | None = None
    experiments: list[ExperimentResult] = field(default_factory=list)
    scan_seconds: float = 0.0
    coverage_seconds: float = 0.0
    execution_seconds: float = 0.0
    scan_errors: dict[str, str] = field(default_factory=dict)

    @property
    def executed(self) -> int:
        return len(self.experiments)

    @property
    def failures(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.any_failure]

    @property
    def failures_round1(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.failed_round1]

    @property
    def failures_round2(self) -> list[ExperimentResult]:
        return [e for e in self.experiments if e.failed_round2]

    def summary(self) -> dict:
        """The §V headline numbers for this campaign."""
        return {
            "campaign": self.name,
            "scan_errors": len(self.scan_errors),
            "points_found": self.points_found,
            "points_covered": (self.coverage.covered_count
                               if self.coverage else None),
            "experiments": self.executed,
            "experiments_with_failures": len(self.failures),
            "failures_round1": len(self.failures_round1),
            "failures_round2": len(self.failures_round2),
        }


class Campaign:
    """Drives one fault injection campaign end to end."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.models = {
            model.name: model for model in config.fault_model.compile()
        }

    # -- scan phase --------------------------------------------------------------

    def scan(self) -> ScanResult:
        """Find every injection point in the injectable files.

        Runs through the indexed scan engine: spec prefilters, one shared
        AST walk per file, ``scan_jobs`` warm worker processes, and an
        optional content-addressed result cache.  Missing or unreadable
        injectable files are recorded in ``parse_errors`` rather than
        aborting the campaign.
        """
        config = self.config
        files = config.injectable_files
        if files is None:
            from repro.common.fsutil import iter_python_files

            paths = sorted(iter_python_files(config.target_dir))
        else:
            paths = [config.target_dir / rel for rel in files]
        cache = (ScanCache(config.scan_cache_dir)
                 if config.scan_cache_dir is not None else None)
        # Specs and models derive from the same compiled set, so the
        # serial and parallel paths scan an identical faultload (and
        # produce identical cache digests).
        models = list(self.models.values())
        return scan_files(
            paths,
            [model.spec for model in models],
            root=config.target_dir,
            jobs=config.scan_jobs or 1,
            cache=cache,
            models=models,
        )

    # -- full workflow -------------------------------------------------------------

    def run(self, progress=None) -> CampaignResult:
        """Scan, plan, (optionally) reduce by coverage, execute, collect."""
        config = self.config
        owns_workspace = config.workspace is None
        workspace = Path(
            config.workspace or tempfile.mkdtemp(prefix="profipy-")
        )
        workspace.mkdir(parents=True, exist_ok=True)
        result = CampaignResult(name=config.name)
        say = progress or (lambda _msg: None)
        try:
            say(f"[{config.name}] building sandbox image")
            image = SandboxImage.build(
                config.target_dir, workspace / "image",
                containerfile=config.containerfile,
            )

            say(f"[{config.name}] scanning for injection points")
            scan_started = time.monotonic()
            scan = self.scan()
            result.scan_seconds = time.monotonic() - scan_started
            result.scan_errors = scan.parse_errors
            result.points_found = len(scan.points)

            plan = Plan.from_points(scan.points,
                                    prefix=f"{config.name}")
            if config.spec_filter or config.file_filter:
                plan = plan.filter(spec_names=config.spec_filter,
                                   files=config.file_filter)
            if config.coverage:
                say(f"[{config.name}] coverage pre-run over "
                    f"{len(plan)} points")
                coverage_started = time.monotonic()
                report = run_coverage(
                    image, config.workload, plan.points, self.models,
                    workspace / "sandboxes",
                )
                result.coverage_seconds = (
                    time.monotonic() - coverage_started
                )
                result.coverage = report
                plan = reduce_plan(plan, report)
            if config.sample is not None:
                plan = plan.sample(config.sample,
                                   SeededRandom(config.seed))
            result.points_planned = len(plan)

            say(f"[{config.name}] executing {len(plan)} experiments")
            artifacts = None
            if config.keep_artifacts:
                artifacts = workspace / "artifacts"
                artifacts.mkdir(parents=True, exist_ok=True)
            executor = ExperimentExecutor(
                image=image,
                workload=config.workload,
                models=self.models,
                base_dir=workspace / "sandboxes",
                trigger=config.trigger,
                rounds=config.rounds,
                rng=SeededRandom(config.seed),
                artifacts_dir=artifacts,
            )
            pool = ExperimentPool(parallelism=config.parallelism)
            execution_started = time.monotonic()
            jobs = [
                (lambda planned=planned: executor.run(planned))
                for planned in plan
            ]
            outcomes = pool.run(jobs)
            result.execution_seconds = time.monotonic() - execution_started
            for outcome in outcomes:
                if outcome.ok:
                    result.experiments.append(outcome.result)
                else:
                    broken = ExperimentResult(
                        experiment_id=f"{config.name}-job-{outcome.index}",
                        point={},
                        status="harness_error",
                        error=outcome.error or "unknown pool failure",
                    )
                    result.experiments.append(broken)
            say(f"[{config.name}] done: "
                f"{len(result.failures)}/{result.executed} experiments "
                "showed failures")
            return result
        finally:
            if owns_workspace and not config.keep_artifacts:
                remove_tree(workspace)
