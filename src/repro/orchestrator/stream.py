"""Streaming experiment-result sink: an append-only JSONL file.

The execution engine appends each :class:`ExperimentResult` to the stream
as it completes, instead of accumulating every result (with full logs) in
memory.  This gives the campaign constant memory during execution and
makes it crash-resumable: a restarted run reads the ids already recorded
and skips those experiments (the as-a-service resume path).

The format is one JSON object per line.  A process killed mid-write
leaves at most one truncated trailing line; readers tolerate and skip it,
so a partial stream is always a valid resume point.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Iterator

from repro.orchestrator.experiment import STATUS_HARNESS_ERROR, ExperimentResult


def parse_stream_lines(lines) -> Iterator[dict]:
    """Decode stream lines to dicts, skipping blanks, truncated lines
    (a killed run's partial trailing write), and non-object lines.

    The single definition of the line-level reader semantics: the
    on-disk reader below and the HTTP client's NDJSON consumer both go
    through here, so the transports can never diverge on how a stream
    is interpreted.
    """
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError:
            continue  # truncated trailing line from a killed run
        if isinstance(data, dict):
            yield data


def latest_entries(lines) -> dict[str, dict]:
    """Result entries keyed by experiment id; last record wins (a
    harness-errored experiment retried on resume supersedes the old
    record).  Meta lines are skipped."""
    entries: dict[str, dict] = {}
    for data in parse_stream_lines(lines):
        if "experiment_id" in data:
            entries[data["experiment_id"]] = data
    return entries


class ExperimentStream:
    """Append-only JSONL stream of experiment results (thread-safe).

    Besides result lines, the stream may carry ``{"meta": {...}}`` lines
    describing the campaign that produced it (seed, faultload digest);
    result readers skip them, and :meth:`read_meta` exposes the last one
    so a resuming campaign can refuse a stream recorded under different
    parameters.  When an experiment id occurs more than once (a
    harness-errored experiment retried on resume), the *last* record
    wins.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing -----------------------------------------------------------------

    def append(self, result: ExperimentResult) -> None:
        """Record one finished experiment; flushed and fsynced per line so
        a crash never loses a completed experiment."""
        self._append_line(json.dumps(result.to_dict(), sort_keys=True))

    def append_entry(self, entry: dict) -> None:
        """Record one raw result dict (the shard-merge path: entries read
        from a shard stream are re-appended without an
        ``ExperimentResult`` round-trip, so merging cannot reshape
        records)."""
        self._append_line(json.dumps(entry, sort_keys=True))

    def write_meta(self, meta: dict) -> None:
        """Append a campaign-metadata line (skipped by result readers)."""
        self._append_line(json.dumps({"meta": meta}, sort_keys=True))

    def _append_line(self, line: str) -> None:
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # A killed run can leave a truncated line with no newline at
            # the end of the file; terminate it first so the new record
            # does not get glued onto (and corrupted by) the partial one.
            needs_newline = False
            try:
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    needs_newline = existing.read(1) != b"\n"
            except (FileNotFoundError, OSError):
                pass
            with open(self.path, "a", encoding="utf-8") as handle:
                if needs_newline:
                    handle.write("\n")
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def clear(self) -> None:
        """Drop the stream (fresh, non-resuming campaign runs)."""
        with self._lock:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    # -- reading -----------------------------------------------------------------

    def _raw_lines(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            yield from parse_stream_lines(handle)

    def _latest_entries(self) -> dict[str, dict]:
        """Result entries keyed by experiment id; last record wins."""
        if not self.path.exists():
            return {}
        with open(self.path, "r", encoding="utf-8") as handle:
            return latest_entries(handle)

    def entries(self) -> list[dict]:
        """Every recorded result as a raw dict, sorted by experiment id
        (the pagination fast path: no ExperimentResult round-trip)."""
        return [entry for _id, entry in sorted(self._latest_entries().items())]

    def read_meta(self) -> dict | None:
        """The last campaign-metadata line, if any."""
        meta = None
        for data in self._raw_lines():
            if "meta" in data and isinstance(data["meta"], dict):
                meta = data["meta"]
        return meta

    def recorded_ids(self) -> set[str]:
        """Ids a resumed campaign may skip: everything recorded except
        harness errors, which are infrastructure failures worth retrying
        (the retry's record supersedes the old one — last record wins)."""
        return {
            experiment_id
            for experiment_id, entry in self._latest_entries().items()
            if entry.get("status") != STATUS_HARNESS_ERROR
        }

    def canonical_bytes(self) -> bytes:
        """The stream's deterministic byte form: one sorted-key JSON line
        per experiment id, sorted by id, meta and superseded records
        dropped.  Two campaigns recorded the same experiments iff their
        canonical bytes are equal — regardless of completion order,
        execution backend, or shard count (the sharded-execution
        equivalence tests compare exactly this)."""
        lines = [json.dumps(entry, sort_keys=True)
                 for _id, entry in sorted(self._latest_entries().items())]
        if not lines:
            return b""
        return ("\n".join(lines) + "\n").encode("utf-8")

    def __iter__(self) -> Iterator[ExperimentResult]:
        for entry in self._latest_entries().values():
            yield ExperimentResult.from_dict(entry)

    def load(self) -> list[ExperimentResult]:
        """Every recorded result (one per experiment id)."""
        return list(self)

    def __len__(self) -> int:
        return len(self._latest_entries())


__all__ = ["ExperimentStream", "latest_entries", "parse_stream_lines"]
