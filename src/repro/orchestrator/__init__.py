"""Campaign orchestration: the Fig. 2 workflow."""

from repro.orchestrator.campaign import (
    Campaign,
    CampaignCancelled,
    CampaignConfig,
    CampaignResult,
)
from repro.orchestrator.coverage import (
    CoverageReport,
    reduce_plan,
    run_coverage,
)
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.experiment import (
    STATUS_COMPLETED,
    STATUS_HARNESS_ERROR,
    STATUS_SERVICE_START_FAILED,
    ExperimentResult,
)
from repro.orchestrator.plan import Plan, PlannedExperiment
from repro.orchestrator.stream import ExperimentStream

__all__ = [
    "ExperimentStream",
    "Campaign",
    "CampaignCancelled",
    "CampaignConfig",
    "CampaignResult",
    "CoverageReport",
    "ExperimentExecutor",
    "ExperimentResult",
    "Plan",
    "PlannedExperiment",
    "STATUS_COMPLETED",
    "STATUS_HARNESS_ERROR",
    "STATUS_SERVICE_START_FAILED",
    "reduce_plan",
    "run_coverage",
]
