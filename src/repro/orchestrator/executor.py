"""Two-round, trigger-controlled experiment execution (paper §IV-B).

For each experiment the executor:

1. instantiates a fresh sandbox from the image and writes the mutated
   source file into it (EDFI-style trigger wrapping);
2. starts the service commands with the fault *disabled*;
3. round 1 — enables the trigger, runs the workload;
4. round 2 — disables the trigger, runs the workload again *without
   restarting the target*, so persistent error states surface;
5. collects outputs/logs and tears the sandbox down.

The trigger is a file re-read by the injected runtime, the shared-memory
substitute documented in DESIGN.md.

Determinism: every stochastic input of an experiment — the mutation RNG
and the sandbox runtime seed (``SEED_ENV``) — derives from a sha256
digest of ``(campaign_seed, experiment_id)``.  Results are therefore
byte-identical across runs, hosts, ``PYTHONHASHSEED`` values, and
parallelism levels.  Mutants are normally generated *pipelined* via
:meth:`ExperimentExecutor.iter_mutations`: a single producer emits one
``(file, spec)`` group at a time, so generation stays serial (the
``MatchMemo`` guarantee) while the sandbox pool executes earlier groups
— peak memory is bounded by the largest group, not the plan.
:meth:`prepare_mutations` materializes the same pipeline for callers
that want the whole batch up front, and :meth:`run` falls back to
inline generation with the same per-experiment stream when no pre-built
mutation is supplied; all three paths are byte-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.common.rng import SeededRandom, experiment_seed
from repro.dsl.metamodel import MetaModel
from repro.mutator.mutate import (
    MutantRequest,
    Mutation,
    Mutator,
    generate_mutants,
)
from repro.scanner.cache import MatchMemo
from repro.mutator.runtime import SEED_ENV, TRIGGER_ENV
from repro.orchestrator.experiment import (
    STATUS_COMPLETED,
    STATUS_HARNESS_ERROR,
    STATUS_SERVICE_START_FAILED,
    ExperimentResult,
)
from repro.orchestrator.plan import PlannedExperiment
from repro.sandbox.image import SandboxImage
from repro.sandbox.sandbox import Sandbox
from repro.workload.runner import ServiceStartError, run_round, start_services
from repro.workload.spec import WorkloadSpec

TRIGGER_FILE = ".pfp_trigger"


@dataclass
class ExperimentExecutor:
    """Runs planned experiments against an image + workload."""

    image: SandboxImage
    workload: WorkloadSpec
    models: dict[str, MetaModel]
    base_dir: Path
    trigger: bool = True
    rounds: int = 2
    #: Campaign-level seed; every per-experiment stream derives from it.
    campaign_seed: int | str = 0
    artifacts_dir: Path | None = None
    #: Optional cooperative-cancellation hook polled before an experiment
    #: starts; once it returns true, :meth:`run` declines new experiments
    #: (returning ``None``) so a cancelled campaign drains quickly.
    cancel_check: Callable[[], bool] | None = None
    #: Memo for the *inline* mutation path in :meth:`run` (fallback when
    #: no pre-built mutation is supplied).  The pipelined generator uses
    #: a fresh memo per (file, spec) group instead, so pristine trees
    #: are released group by group.
    match_memo: MatchMemo = field(default_factory=MatchMemo)

    # -- deterministic derivation ------------------------------------------------

    def experiment_rng(self, experiment_id: str) -> SeededRandom:
        """The experiment's private RNG stream (stable across runs)."""
        return SeededRandom(self.campaign_seed).derive(experiment_id)

    def runtime_seed(self, experiment_id: str) -> int:
        """The sandbox ``SEED_ENV`` value for one experiment."""
        return experiment_seed(self.campaign_seed, experiment_id)

    # -- pipelined mutant generation ----------------------------------------------

    def iter_mutations(
        self, planned: Iterable[PlannedExperiment],
    ) -> Iterator[tuple[PlannedExperiment, Mutation | None]]:
        """Lazily generate the plan's mutants, one ``(file, spec)`` group
        at a time.

        This is the producer side of the pipelined execution engine: the
        sandbox pool pulls jobs from this generator as worker slots free,
        so group N+1 is generated while group N's experiments run.
        Generation stays on the single consuming thread — the serial
        :class:`MatchMemo` guarantee of the old whole-plan batch — and
        peak memory is bounded by the largest group (one pristine source
        plus its mutants), not by the plan.

        Every request draws only from its experiment's own RNG stream
        (derived from the campaign seed), so the yielded mutants are
        byte-identical to the whole-plan batch and to inline generation.
        An experiment whose mutant cannot be generated (unreadable file,
        stale ordinal) yields ``None``: :meth:`run`'s inline fallback
        hits the same error and records a ``harness_error`` for just
        that experiment.
        """
        ordered = sorted(
            enumerate(planned),
            key=lambda pair: (pair[1].point.file, pair[1].point.spec_name,
                              pair[1].point.ordinal, pair[0]),
        )
        source_file: str | None = None
        source: str | None = None
        index = 0
        while index < len(ordered):
            point = ordered[index][1].point
            group = [ordered[index][1]]
            index += 1
            while index < len(ordered) and (
                ordered[index][1].point.file == point.file
                and ordered[index][1].point.spec_name == point.spec_name
            ):
                group.append(ordered[index][1])
                index += 1
            # Groups arrive sorted by file, so caching the previous
            # file's source is enough to read each file exactly once.
            if point.file != source_file:
                source_file = point.file
                try:
                    source = self.image.read_file(point.file)
                except OSError:
                    source = None
            if source is None:
                for experiment in group:
                    yield experiment, None
                continue
            requests = [MutantRequest(
                key=experiment.experiment_id,
                source=source,
                model=self.models[point.spec_name],
                ordinal=experiment.point.ordinal,
                fault_id=experiment.point.point_id,
                file=experiment.point.file,
                rng=self.experiment_rng(experiment.experiment_id),
            ) for experiment in group]
            # A fresh memo per group: each (file, spec) pair IS one
            # group, so nothing is ever re-matched — and the group's
            # pristine tree is released with the group instead of
            # accumulating for the whole plan (the batched engine's
            # peak-memory problem in miniature).
            mutations = generate_mutants(requests, trigger=self.trigger,
                                         match_memo=MatchMemo())
            for experiment in group:
                # pop: each mutant is released to its job immediately, so
                # at most one group's worth is alive at any moment.
                yield experiment, mutations.pop(experiment.experiment_id,
                                                None)

    def prepare_mutations(
        self, planned: Iterable[PlannedExperiment],
    ) -> dict[str, Mutation]:
        """Pre-generate every mutant of the plan, keyed by experiment id.

        The materialized form of :meth:`iter_mutations` — same grouping,
        same per-request RNG streams, byte-identical output — for callers
        that want the whole batch before fanning out (peak memory is then
        O(plan), which is why the campaign path pipelines instead).
        """
        return {
            experiment.experiment_id: mutation
            for experiment, mutation in self.iter_mutations(planned)
            if mutation is not None
        }

    # -- execution ---------------------------------------------------------------

    def run(self, planned: PlannedExperiment,
            mutation: Mutation | None = None) -> ExperimentResult | None:
        """Execute one experiment end-to-end; never raises for target bugs.

        ``mutation`` is the pre-generated mutant from
        :meth:`prepare_mutations`; when omitted the mutant is generated
        inline from the same per-experiment RNG stream, so both paths
        produce identical results.  Returns ``None`` without running
        anything when :attr:`cancel_check` reports a cancellation request
        (the experiment is simply not recorded, so a resumed campaign
        re-plans it).
        """
        if self.cancel_check is not None and self.cancel_check():
            return None
        point = planned.point
        result = ExperimentResult(
            experiment_id=planned.experiment_id,
            point=point.to_dict(),
            fault_id=point.point_id,
            spec_name=point.spec_name,
            seed=self.runtime_seed(planned.experiment_id),
        )
        started = time.monotonic()
        try:
            self._run_inner(planned, result, mutation)
        except ServiceStartError as error:
            result.status = STATUS_SERVICE_START_FAILED
            result.error = str(error)
        except Exception as error:  # noqa: BLE001 - harness robustness
            result.status = STATUS_HARNESS_ERROR
            result.error = f"{type(error).__name__}: {error}"
        result.duration = time.monotonic() - started
        if self.artifacts_dir is not None:
            result.save(self.artifacts_dir / f"{planned.experiment_id}.json")
        return result

    def _run_inner(self, planned: PlannedExperiment,
                   result: ExperimentResult,
                   mutation: Mutation | None = None) -> None:
        point = planned.point
        if mutation is None:
            model = self.models[point.spec_name]
            pristine = self.image.read_file(point.file)
            mutation = Mutator(
                trigger=self.trigger,
                rng=self.experiment_rng(planned.experiment_id),
                match_memo=self.match_memo,
            ).mutate_source(
                pristine, model, point.ordinal,
                fault_id=point.point_id, file=point.file,
            )
        result.original_snippet = mutation.original_snippet
        result.mutated_snippet = mutation.mutated_snippet

        with Sandbox.create(self.image, self.base_dir,
                            planned.experiment_id) as sandbox:
            trigger_path = sandbox.write_file(TRIGGER_FILE, "0")
            sandbox.env[TRIGGER_ENV] = str(trigger_path)
            sandbox.env[SEED_ENV] = str(result.seed)
            sandbox.write_file(point.file, mutation.source)

            start_services(sandbox, self.workload)
            for round_no in range(1, self.rounds + 1):
                fault_enabled = round_no == 1
                sandbox.write_file(TRIGGER_FILE,
                                   "1" if fault_enabled else "0")
                round_result = run_round(sandbox, self.workload, round_no,
                                         fault_enabled)
                result.rounds.append(round_result)
            result.logs = {
                **sandbox.service_logs(),
                **sandbox.collect_logs(self.workload.log_files),
            }
        result.status = STATUS_COMPLETED

    def run_fault_free(self, name: str = "fault-free") -> ExperimentResult:
        """One pristine run of the workload (baseline / sanity check)."""
        result = ExperimentResult(experiment_id=name, point={},
                                  spec_name="<none>")
        started = time.monotonic()
        try:
            with Sandbox.create(self.image, self.base_dir, name) as sandbox:
                start_services(sandbox, self.workload)
                round_result = run_round(sandbox, self.workload, 1,
                                         fault_enabled=False)
                result.rounds.append(round_result)
                result.logs = sandbox.service_logs()
            result.status = STATUS_COMPLETED
        except ServiceStartError as error:
            result.status = STATUS_SERVICE_START_FAILED
            result.error = str(error)
        result.duration = time.monotonic() - started
        return result
