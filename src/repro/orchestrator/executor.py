"""Two-round, trigger-controlled experiment execution (paper §IV-B).

For each experiment the executor:

1. instantiates a fresh sandbox from the image and writes the mutated
   source file into it (EDFI-style trigger wrapping);
2. starts the service commands with the fault *disabled*;
3. round 1 — enables the trigger, runs the workload;
4. round 2 — disables the trigger, runs the workload again *without
   restarting the target*, so persistent error states surface;
5. collects outputs/logs and tears the sandbox down.

The trigger is a file re-read by the injected runtime, the shared-memory
substitute documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.rng import SeededRandom
from repro.dsl.metamodel import MetaModel
from repro.mutator.mutate import Mutator
from repro.scanner.cache import MatchMemo
from repro.mutator.runtime import SEED_ENV, TRIGGER_ENV
from repro.orchestrator.experiment import (
    STATUS_COMPLETED,
    STATUS_HARNESS_ERROR,
    STATUS_SERVICE_START_FAILED,
    ExperimentResult,
)
from repro.orchestrator.plan import PlannedExperiment
from repro.sandbox.image import SandboxImage
from repro.sandbox.sandbox import Sandbox
from repro.workload.runner import ServiceStartError, run_round, start_services
from repro.workload.spec import WorkloadSpec

TRIGGER_FILE = ".pfp_trigger"


@dataclass
class ExperimentExecutor:
    """Runs planned experiments against an image + workload."""

    image: SandboxImage
    workload: WorkloadSpec
    models: dict[str, MetaModel]
    base_dir: Path
    trigger: bool = True
    rounds: int = 2
    rng: SeededRandom = field(default_factory=lambda: SeededRandom(0))
    artifacts_dir: Path | None = None
    #: Shared across the batch: experiments hitting the same (file, spec)
    #: pair at different ordinals reuse one cached match list.
    match_memo: MatchMemo = field(default_factory=MatchMemo)

    def run(self, planned: PlannedExperiment) -> ExperimentResult:
        """Execute one experiment end-to-end; never raises for target bugs."""
        point = planned.point
        result = ExperimentResult(
            experiment_id=planned.experiment_id,
            point=point.to_dict(),
            fault_id=point.point_id,
            spec_name=point.spec_name,
        )
        started = time.monotonic()
        try:
            self._run_inner(planned, result)
        except ServiceStartError as error:
            result.status = STATUS_SERVICE_START_FAILED
            result.error = str(error)
        except Exception as error:  # noqa: BLE001 - harness robustness
            result.status = STATUS_HARNESS_ERROR
            result.error = f"{type(error).__name__}: {error}"
        result.duration = time.monotonic() - started
        if self.artifacts_dir is not None:
            result.save(self.artifacts_dir / f"{planned.experiment_id}.json")
        return result

    def _run_inner(self, planned: PlannedExperiment,
                   result: ExperimentResult) -> None:
        point = planned.point
        model = self.models[point.spec_name]
        pristine = self.image.read_file(point.file)
        mutation = Mutator(trigger=self.trigger, rng=self.rng,
                           match_memo=self.match_memo).mutate_source(
            pristine, model, point.ordinal,
            fault_id=point.point_id, file=point.file,
        )
        result.original_snippet = mutation.original_snippet
        result.mutated_snippet = mutation.mutated_snippet

        with Sandbox.create(self.image, self.base_dir,
                            planned.experiment_id) as sandbox:
            trigger_path = sandbox.write_file(TRIGGER_FILE, "0")
            sandbox.env[TRIGGER_ENV] = str(trigger_path)
            sandbox.env[SEED_ENV] = str(
                abs(hash(planned.experiment_id)) % (2 ** 31)
            )
            sandbox.write_file(point.file, mutation.source)

            start_services(sandbox, self.workload)
            for round_no in range(1, self.rounds + 1):
                fault_enabled = round_no == 1
                sandbox.write_file(TRIGGER_FILE,
                                   "1" if fault_enabled else "0")
                round_result = run_round(sandbox, self.workload, round_no,
                                         fault_enabled)
                result.rounds.append(round_result)
            result.logs = {
                **sandbox.service_logs(),
                **sandbox.collect_logs(self.workload.log_files),
            }
        result.status = STATUS_COMPLETED

    def run_fault_free(self, name: str = "fault-free") -> ExperimentResult:
        """One pristine run of the workload (baseline / sanity check)."""
        result = ExperimentResult(experiment_id=name, point={},
                                  spec_name="<none>")
        started = time.monotonic()
        try:
            with Sandbox.create(self.image, self.base_dir, name) as sandbox:
                start_services(sandbox, self.workload)
                round_result = run_round(sandbox, self.workload, 1,
                                         fault_enabled=False)
                result.rounds.append(round_result)
                result.logs = sandbox.service_logs()
            result.status = STATUS_COMPLETED
        except ServiceStartError as error:
            result.status = STATUS_SERVICE_START_FAILED
            result.error = str(error)
        result.duration = time.monotonic() - started
        return result
