"""Experiment results: everything one fault injection run produced.

An :class:`ExperimentResult` carries the injection point, the mutation
snippets, the two round outcomes, collected logs, and any harness error —
the raw material for the data-analysis phase (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import read_json, write_json
from repro.workload.runner import RoundResult

STATUS_COMPLETED = "completed"
STATUS_SERVICE_START_FAILED = "service_start_failed"
STATUS_HARNESS_ERROR = "harness_error"


@dataclass
class ExperimentResult:
    """Outcome of one fault injection experiment."""

    experiment_id: str
    point: dict
    fault_id: str = ""
    spec_name: str = ""
    #: Runtime RNG seed handed to the sandbox (``SEED_ENV``); derived from
    #: sha256 of (campaign seed, experiment id) so replays are exact.
    seed: int | None = None
    status: str = STATUS_COMPLETED
    original_snippet: str = ""
    mutated_snippet: str = ""
    rounds: list[RoundResult] = field(default_factory=list)
    logs: dict[str, str] = field(default_factory=dict)
    error: str = ""
    duration: float = 0.0

    # -- round accessors -----------------------------------------------------

    def round(self, round_no: int) -> RoundResult | None:
        for item in self.rounds:
            if item.round_no == round_no:
                return item
        return None

    @property
    def completed(self) -> bool:
        return self.status == STATUS_COMPLETED

    @property
    def failed_round1(self) -> bool:
        """Service failure while the fault was enabled."""
        if self.status != STATUS_COMPLETED:
            return True
        first = self.round(1)
        return first is None or first.failed

    @property
    def failed_round2(self) -> bool:
        """Failure *after* disabling the fault: unrecovered error state."""
        if self.status != STATUS_COMPLETED:
            return True
        second = self.round(2)
        if second is None:
            return False
        return second.failed

    @property
    def any_failure(self) -> bool:
        return self.failed_round1 or self.failed_round2

    @property
    def available_in_round2(self) -> bool:
        """The §IV-C service-availability criterion for this experiment."""
        return self.completed and not self.failed_round2

    def combined_output(self) -> str:
        """All command output plus logs, for pattern-based classification."""
        chunks = [round_.output for round_ in self.rounds]
        chunks.extend(self.logs.values())
        if self.error:
            chunks.append(self.error)
        return "\n".join(chunk for chunk in chunks if chunk)

    # -- persistence ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "point": self.point,
            "fault_id": self.fault_id,
            "spec_name": self.spec_name,
            "seed": self.seed,
            "status": self.status,
            "original_snippet": self.original_snippet,
            "mutated_snippet": self.mutated_snippet,
            "rounds": [round_.to_dict() for round_ in self.rounds],
            "logs": dict(self.logs),
            "error": self.error,
            "duration": self.duration,
        }

    def save(self, path: str | Path) -> None:
        write_json(path, self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        rounds = []
        for entry in data.get("rounds", []):
            from repro.common.procutil import CommandResult

            commands = [
                CommandResult(
                    command=cmd["command"],
                    returncode=cmd["returncode"],
                    stdout=cmd["stdout"],
                    stderr=cmd["stderr"],
                    duration=cmd["duration"],
                    timed_out=cmd["timed_out"],
                )
                for cmd in entry.get("commands", [])
            ]
            rounds.append(
                RoundResult(
                    round_no=entry["round_no"],
                    fault_enabled=entry["fault_enabled"],
                    commands=commands,
                    duration=entry.get("duration", 0.0),
                    services_alive=entry.get("services_alive", True),
                )
            )
        return cls(
            experiment_id=data["experiment_id"],
            point=data.get("point", {}),
            fault_id=data.get("fault_id", ""),
            spec_name=data.get("spec_name", ""),
            seed=data.get("seed"),
            status=data.get("status", STATUS_COMPLETED),
            original_snippet=data.get("original_snippet", ""),
            mutated_snippet=data.get("mutated_snippet", ""),
            rounds=rounds,
            logs=dict(data.get("logs", {})),
            error=data.get("error", ""),
            duration=data.get("duration", 0.0),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        return cls.from_dict(read_json(path))
