"""Pluggable, sharded execution backends for the post-scan pipeline.

The campaign's execution phase is a *policy*: how the pending plan's
experiments are distributed over workers.  This module makes that policy
pluggable behind one :class:`ExecutionBackend` protocol, selected via
``CampaignConfig.backend``:

* :class:`ThreadBackend` (``"thread"``) — the in-process engine: one
  adaptive :class:`~repro.sandbox.pool.ExperimentPool` fed by the
  pipelined mutant generator (:meth:`ExperimentExecutor.iter_mutations`),
  streaming results straight into the canonical ``experiments.jsonl``.
* :class:`ProcessBackend` (``"process"``) — per-shard worker processes:
  the pending plan is partitioned by the deterministic shard partitioner
  (:func:`repro.orchestrator.plan.shard_index`), each shard runs the same
  pipelined engine in its own process, streams to its own
  ``experiments-<shard>.jsonl``, and the parent merges the shard streams
  deterministically (sorted by experiment id) into the canonical stream.
* :class:`RemoteBackend` (``"remote"``) — per-shard *remote* workers:
  the same shard payloads are dispatched over the versioned ``/v1``
  service API (``POST /v1/shards`` on a ``profipy worker`` host) instead
  of to local processes.  The parent polls each worker's shard status,
  incrementally mirrors the worker's shard stream into a local
  ``experiments-<shard>.jsonl`` (so a killed campaign still resumes from
  everything fetched so far), relays cooperative cancellation, and fails
  a shard over to another worker on connection loss.  The merge is the
  exact machinery :class:`ProcessBackend` uses, so a dead worker's shard
  degrades to retried ``harness_error`` records identically.

Both backends preserve the determinism invariant: experiment ids, seeds,
and mutants are independent of backend and shard count, so the same
campaign seed yields byte-identical per-experiment ``point``,
``mutated_snippet``, and ``seed`` whichever backend runs it — and a
campaign may even crash under one backend and resume under the other.
Crash recovery of partial shard streams (:func:`recover_shard_streams`)
runs before the campaign computes its resume set, so no recorded
experiment is ever re-run or lost.

Cancellation is cooperative everywhere: the thread backend polls the
campaign's cancel hook between experiments; the process backend relays it
to workers through a cancel-flag *file* (the same substitute-for-shared-
memory idiom as the sandbox trigger file), which each worker polls
between experiments; the remote backend relays it as
``POST /v1/shards/{id}/cancel``, behind which the worker's own
cancel-flag file sits.

Progress is shard-aware: backends report ``experiments_done/total`` plus
a per-shard state table through ``ExecutionContext.on_progress`` — the
feed the service layer persists for ``/v1/jobs/{id}``.
"""

from __future__ import annotations

import http.client
import re
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Protocol

from repro.faultmodel.model import FaultModel
from repro.orchestrator.executor import ExperimentExecutor
from repro.orchestrator.experiment import (
    STATUS_HARNESS_ERROR,
    ExperimentResult,
)
from repro.orchestrator.plan import PlannedExperiment, shard_index
from repro.orchestrator.stream import ExperimentStream
from repro.sandbox.image import SandboxImage
from repro.sandbox.pool import ExperimentPool, JobOutcome
from repro.workload.spec import WorkloadSpec

BACKEND_THREAD = "thread"
BACKEND_PROCESS = "process"
BACKEND_REMOTE = "remote"
BACKEND_NAMES = (BACKEND_THREAD, BACKEND_PROCESS, BACKEND_REMOTE)

#: Shard stream files are canonical-stream siblings: ``experiments.jsonl``
#: → ``experiments-3.jsonl``.
_SHARD_SUFFIX_RE = re.compile(r"-(\d+)$")


@dataclass
class ExecutionContext:
    """Everything a backend needs to run one campaign's pending plan.

    ``executor`` carries the in-process pieces (image, workload, compiled
    models, seeds); ``fault_model`` is the *serializable* source of the
    same faultload, which process workers recompile on their side —
    compiled metamodels hold AST/matcher state that must not cross a
    process boundary.
    """

    executor: ExperimentExecutor
    fault_model: FaultModel
    shards: int = 1
    parallelism: int | None = None
    cancel: Callable[[], bool] | None = None
    on_progress: Callable[[dict], None] | None = None
    #: Worker base URLs (``http://host:port``) for the remote backend.
    workers: list[str] | None = None
    #: Worker registry facade for the remote backend — anything with
    #: ``list_workers()`` / ``register_worker()`` (a
    #: :class:`~repro.service.registry.WorkerRegistry`, a
    #: :class:`~repro.service.service.ProFIPyService`, or a
    #: :class:`~repro.service.client.ProFIPyClient` pointed at a
    #: coordinator).  When set, the fleet is resolved and health-tracked
    #: from it; static ``workers`` URLs become unmanaged pins.
    registry: object | None = None
    #: Content-addressed identity of the staged image
    #: (:class:`~repro.service.blobs.ImageManifest`).  When set, the
    #: remote backend ships shards *without* filesystem paths: each
    #: worker is asked which blobs it lacks, exactly those are uploaded,
    #: and the payload carries the manifest instead of staging paths.
    image_manifest: object | None = None
    #: The :class:`~repro.service.blobs.BlobStore` holding the
    #: manifest's blobs (the upload source for missing ones).
    blob_store: object | None = None


@dataclass
class ExecutionOutcome:
    """What a backend reports back to the campaign."""

    cancelled: bool = False
    #: Final per-shard states (mirrors the last progress snapshot).
    shards: list[dict] = field(default_factory=list)


class ExecutionBackend(Protocol):
    """The pluggable execution policy: run ``pending``, stream results."""

    name: str

    def execute(self, context: ExecutionContext,
                pending: list[PlannedExperiment],
                stream: ExperimentStream) -> ExecutionOutcome:
        """Execute every pending experiment, appending each result to
        ``stream`` as it completes; must never raise for target bugs."""
        ...  # pragma: no cover - protocol


def validate_backend_name(name: str) -> str:
    """Check ``name`` against the registry (shared by config validation
    and backend construction, so the two can never disagree)."""
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(known: {', '.join(BACKEND_NAMES)})"
        )
    return name


def create_backend(name: str) -> "ExecutionBackend":
    """The backend registered under ``name`` (``thread``, ``process``,
    or ``remote``)."""
    validate_backend_name(name)
    if name == BACKEND_THREAD:
        return ThreadBackend()
    if name == BACKEND_REMOTE:
        return RemoteBackend()
    return ProcessBackend()


# -- shard stream bookkeeping -----------------------------------------------------


def shard_stream_path(canonical: Path, shard: int) -> Path:
    """Where shard ``shard`` streams its results, next to ``canonical``."""
    return canonical.with_name(f"{canonical.stem}-{shard}{canonical.suffix}")


def leftover_shard_streams(canonical: Path) -> list[Path]:
    """Partial shard streams a crashed run left next to ``canonical``."""
    found = []
    for path in canonical.parent.glob(f"{canonical.stem}-*{canonical.suffix}"):
        # Strip the suffix by length so a suffixless canonical path
        # (len 0) keeps the whole name instead of slicing it to "".
        base = path.name[:len(path.name) - len(canonical.suffix)]
        if _SHARD_SUFFIX_RE.search(base):
            found.append(path)
    return sorted(found)


def merge_shard_stream(canonical: ExperimentStream,
                       shard_path: Path) -> list[str]:
    """Fold one shard stream into the canonical stream and delete it.

    Entries are appended sorted by experiment id (deterministic merge
    order) as raw dicts, so merging never reshapes a record.  Returns
    the experiment ids merged.
    """
    shard = ExperimentStream(shard_path)
    entries = sorted(shard._latest_entries().items())
    for _experiment_id, entry in entries:
        canonical.append_entry(entry)
    try:
        shard_path.unlink()
    except FileNotFoundError:
        pass
    return [experiment_id for experiment_id, _entry in entries]


def recover_shard_streams(stream: ExperimentStream) -> int:
    """Merge any partial shard streams a crashed run left behind.

    The campaign calls this before computing its resume set, so
    experiments a killed process-backend run recorded only in shard
    streams count as recorded — resume re-runs exactly the remainder,
    whatever backend or shard count the new run uses.
    """
    merged = 0
    for path in leftover_shard_streams(stream.path):
        merged += len(merge_shard_stream(stream, path))
    return merged


def discard_shard_streams(canonical: Path) -> None:
    """Drop leftover shard streams (the ``resume=False`` fresh-run path)."""
    for path in leftover_shard_streams(canonical):
        try:
            path.unlink()
        except FileNotFoundError:
            pass


# -- shard-aware progress ----------------------------------------------------------


class ShardProgress:
    """Thread-safe ``experiments_done/total`` + per-shard state tracker.

    Snapshots are plain dicts, ready for the service layer to persist::

        {"backend": "process", "experiments_done": 7, "experiments_total":
         20, "shards": [{"shard": 0, "total": 5, "done": 5, "state":
         "completed"}, ...]}
    """

    def __init__(self, backend: str, totals: list[int],
                 sink: Callable[[dict], None] | None = None) -> None:
        self.backend = backend
        self.sink = sink
        self._lock = threading.Lock()
        # Separate lock (snapshot() takes self._lock): emits serialize,
        # so concurrent on_result threads can never push a stale
        # snapshot after a fresher one.
        self._emit_lock = threading.Lock()
        self._last: dict | None = None
        self._shards = [
            {"shard": index, "total": total, "done": 0,
             "state": "completed" if total == 0 else "pending"}
            for index, total in enumerate(totals)
        ]

    def start(self, shard: int) -> None:
        with self._lock:
            if self._shards[shard]["state"] == "pending":
                self._shards[shard]["state"] = "running"
        self.emit()

    def record(self, shard: int) -> None:
        """Advance a shard by one experiment and emit (event-driven
        feeds like the thread backend's per-result callback)."""
        self._advance(shard, None)
        self.emit()

    def set_done(self, shard: int, done: int) -> None:
        """Pin a shard's done count *without* emitting — poll loops pin
        every shard then emit one snapshot per tick."""
        self._advance(shard, done)

    def _advance(self, shard: int, done: int | None) -> None:
        with self._lock:
            entry = self._shards[shard]
            entry["done"] = (entry["done"] + 1 if done is None
                             else max(entry["done"], done))
            if entry["state"] == "pending" and entry["done"]:
                entry["state"] = "running"
            if entry["done"] >= entry["total"]:
                entry["state"] = "completed"

    def finish(self, shard: int, state: str = "completed") -> None:
        with self._lock:
            entry = self._shards[shard]
            if entry["done"] >= entry["total"] and state != "failed":
                state = "completed"
            elif state == "completed":
                # Finished without recording everything: cancelled or a
                # dead worker — either way, not completed.
                state = "stopped"
            entry["state"] = state
        self.emit()

    def snapshot(self) -> dict:
        with self._lock:
            shards = [dict(entry) for entry in self._shards]
        return {
            "backend": self.backend,
            "experiments_done": sum(entry["done"] for entry in shards),
            "experiments_total": sum(entry["total"] for entry in shards),
            "shards": shards,
        }

    def emit(self) -> None:
        """Push the current snapshot to the sink, skipping no-op emits
        (poll loops tick whether or not anything advanced).  Serialized:
        snapshot, compare, and sink happen under one lock, so the sink
        always observes monotone progress."""
        if self.sink is None:
            return
        with self._emit_lock:
            snapshot = self.snapshot()
            if snapshot == self._last:
                return
            self._last = snapshot
            self.sink(snapshot)


# -- shared execution plumbing -----------------------------------------------------


def harness_error_result(planned: PlannedExperiment,
                         error: str) -> ExperimentResult:
    """The ``harness_error`` record for an experiment the harness lost
    (pool failure, dead shard worker) — retried on resume."""
    return ExperimentResult(
        experiment_id=planned.experiment_id,
        point=planned.point.to_dict(),
        fault_id=planned.point.point_id,
        spec_name=planned.point.spec_name,
        status=STATUS_HARNESS_ERROR,
        error=error,
    )


def record_outcome(stream: ExperimentStream, planned: PlannedExperiment,
                   outcome: JobOutcome) -> bool:
    """Append one pool outcome to the stream; harness failures become
    ``harness_error`` records (retried on resume).  Returns whether a
    record landed — a ``None`` result (an experiment declined after a
    cancellation request) records nothing, so resume re-plans it."""
    if outcome.error is None:
        if outcome.result is None:
            return False
        stream.append(outcome.result)
    else:
        stream.append(harness_error_result(
            planned, outcome.error or "unknown pool failure"
        ))
    return True


def _partition(pending: list[PlannedExperiment],
               shards: int) -> list[list[PlannedExperiment]]:
    parts: list[list[PlannedExperiment]] = [[] for _ in range(shards)]
    for planned in pending:
        parts[shard_index(planned.experiment_id, shards)].append(planned)
    return parts


def _run_pipelined(executor: ExperimentExecutor,
                   pending: list[PlannedExperiment],
                   stream: ExperimentStream,
                   parallelism: int | None,
                   cancel: Callable[[], bool] | None,
                   progress: ShardProgress | None,
                   shard_for: Callable[[PlannedExperiment], int]) -> bool:
    """One pool pass over ``pending`` with pipelined mutant generation.

    The single generator thread produces mutants per ``(file, spec)``
    group (serial :class:`MatchMemo`, bounded memory) while the pool's
    workers execute experiments already handed out.  One pass over the
    whole list: ``shard_for`` maps each experiment to its shard for
    progress accounting only, so shard count never multiplies the
    parse/match work.  Returns whether a cancellation request stopped
    the run early.

    The pool captures ``on_result`` exceptions per outcome so one failed
    stream append cannot kill the campaign mid-flight — but a failed
    append means that experiment was *never recorded*.  After the pool
    drains, any such sink failures are raised as one loud error: the
    stream keeps everything that did land, and a resume re-runs exactly
    the unrecorded experiments.
    """
    jobs_seen: list[PlannedExperiment] = []
    shard_of: dict[str, int] = {}
    started_shards: set[int] = set()
    cancelled = False

    def jobs():
        nonlocal cancelled
        for planned, mutation in executor.iter_mutations(pending):
            # The cooperative cancellation point between experiments:
            # jobs are pulled lazily, so once the hook fires nothing
            # further is handed out.
            if cancel is not None and cancel():
                cancelled = True
                return
            shard = shard_for(planned)
            if progress is not None and shard not in started_shards:
                started_shards.add(shard)
                progress.start(shard)
            shard_of[planned.experiment_id] = shard
            jobs_seen.append(planned)
            yield _job_for(executor, planned, mutation)

    def on_result(outcome: JobOutcome) -> None:
        planned = jobs_seen[outcome.index]
        if record_outcome(stream, planned, outcome) and progress is not None:
            progress.record(shard_of[planned.experiment_id])

    pool = ExperimentPool(parallelism=parallelism)
    outcomes = pool.run(jobs(), on_result=on_result, retain_results=False)
    sink_failures = [outcome for outcome in outcomes
                     if outcome.sink_error is not None]
    if sink_failures:
        raise RuntimeError(
            f"{len(sink_failures)} experiment result(s) could not be "
            f"appended to {stream.path} (the campaign kept draining; "
            "resuming will re-run the unrecorded experiments); first "
            f"failure:\n{sink_failures[0].sink_error}"
        )
    return cancelled or (cancel is not None and cancel())


def _job_for(executor: ExperimentExecutor, planned: PlannedExperiment,
             mutation):
    def job():
        return executor.run(planned, mutation=mutation)
    return job


# -- thread backend ----------------------------------------------------------------


class ThreadBackend:
    """Today's in-process engine behind the backend protocol.

    One adaptive thread pool and one generation pass execute every
    pending experiment — the shard partition affects *only* progress
    grouping, never results or the amount of parse/match work.  Results
    stream directly into the canonical stream as they complete.
    """

    name = BACKEND_THREAD

    def execute(self, context: ExecutionContext,
                pending: list[PlannedExperiment],
                stream: ExperimentStream) -> ExecutionOutcome:
        shard_count = context.shards
        shards = _partition(pending, shard_count)
        progress = ShardProgress(self.name, [len(s) for s in shards],
                                 sink=context.on_progress)
        progress.emit()
        cancelled = _run_pipelined(
            context.executor,
            pending,
            stream,
            context.parallelism,
            context.cancel,
            progress,
            lambda planned: shard_index(planned.experiment_id,
                                        shard_count),
        )
        if cancelled:
            for index, experiments in enumerate(shards):
                if experiments:
                    progress.finish(index, state="stopped")
        progress.emit()
        return ExecutionOutcome(cancelled=cancelled,
                                shards=progress.snapshot()["shards"])


# -- process backend ---------------------------------------------------------------


def _shard_parallelism(parallelism: int | None,
                       active: int) -> "list[int | None]":
    """Per-worker parallelism pins for ``active`` shard processes.

    A pinned parallelism is distributed with its remainder (4 over 3
    shards → 2+1+1, not 1+1+1), floored at one per worker — total
    in-flight work is ``max(parallelism, active shards)``; pin fewer
    shards to pin total load exactly.  Unpinned stays unpinned: each
    worker's monitor halves itself under memory pressure, which is the
    host-wide throttle the paper's per-host policy wants.
    """
    if parallelism is None or active == 0:
        # No active shards happens on a fully-resumed campaign (nothing
        # pending): there is nobody to pin.
        return [None] * active
    base, extra = divmod(parallelism, active)
    return [max(1, base + (1 if index < extra else 0))
            for index in range(active)]


def build_shard_payload(executor: ExperimentExecutor,
                        fault_model: FaultModel, shard: int,
                        experiments: list[PlannedExperiment],
                        parallelism: int | None,
                        image_manifest=None) -> dict:
    """The JSON-plain wire form of one shard's work.

    This is the single payload schema shared by every sharded backend:
    :class:`ProcessBackend` adds the local-only ``stream_path`` /
    ``cancel_flag`` keys and hands it to a spawned process, while
    :class:`RemoteBackend` ships it verbatim to ``POST /v1/shards`` —
    the worker host fills in its own stream/cancel/scratch paths.

    The image travels in one of two forms.  With ``image_manifest``
    (an :class:`~repro.service.blobs.ImageManifest`) the payload is
    fully content-addressed: no coordinator filesystem path appears in
    it, and the executing host materializes the staged tree
    byte-identically from its local blob store.  Without a manifest the
    ``image`` key carries host-local staging paths — the same-host form
    the process backend uses.
    """
    payload = {
        "shard": shard,
        "planned": [planned.to_dict() for planned in experiments],
        "fault_model": fault_model.to_dict(),
        "workload": (executor.workload.to_dict()
                     if executor.workload is not None else None),
        "trigger": executor.trigger,
        "rounds": executor.rounds,
        "campaign_seed": executor.campaign_seed,
        "parallelism": parallelism,
    }
    if image_manifest is not None:
        # Fully content-addressed: no dispatcher filesystem path rides
        # in the payload (scratch/stream/artifact paths are the
        # executing host's to choose), so the worker needs nothing
        # mounted from the coordinator.
        payload["image_manifest"] = image_manifest.to_dict()
    else:
        payload["image"] = {
            "source_dir": str(executor.image.source_dir),
            "staging_dir": str(executor.image.staging_dir),
            "env": dict(executor.image.env),
        }
        payload["base_dir"] = str(executor.base_dir)
        payload["artifacts_dir"] = (str(executor.artifacts_dir)
                                    if executor.artifacts_dir else None)
    return payload


def merge_and_backfill(stream: ExperimentStream,
                       shards: list[list[PlannedExperiment]],
                       indices, failed_shards: dict[int, str]) -> set[str]:
    """Fold every shard stream into the canonical stream, then record a
    ``harness_error`` for each experiment of a failed shard that never
    made it into a stream (retried on resume).  Shared by the process
    and remote backends so dead local workers and dead remote workers
    degrade identically.  Returns the merged experiment ids."""
    merged_ids: set[str] = set()
    for index in sorted(indices):
        merged_ids.update(merge_shard_stream(
            stream, shard_stream_path(stream.path, index)
        ))
    for index, error in sorted(failed_shards.items()):
        for planned in shards[index]:
            if planned.experiment_id in merged_ids:
                continue
            stream.append(harness_error_result(planned, error))
    return merged_ids


def _run_shard_worker(payload: dict) -> dict:
    """Run one shard's experiments in a worker process.

    The payload is JSON-plain (spawn-safe): the worker recompiles the
    fault model, reattaches to the already-built sandbox image on disk,
    and runs the same pipelined engine as the thread backend, streaming
    into its private shard stream.  Cancellation arrives through the
    cancel-flag file polled between experiments.  This is also the
    remote worker's execution core: ``POST /v1/shards`` rewrites the
    local-only paths (stream, cancel flag, sandbox scratch) into the
    worker's own workspace and runs exactly this function.
    """
    fault_model = FaultModel.from_dict(payload["fault_model"])
    models = {model.name: model for model in fault_model.compile()}
    image = SandboxImage(
        source_dir=Path(payload["image"]["source_dir"]),
        staging_dir=Path(payload["image"]["staging_dir"]),
        env=dict(payload["image"]["env"]),
    )
    workload = (WorkloadSpec.from_dict(payload["workload"])
                if payload["workload"] is not None else None)
    cancel_flag = Path(payload["cancel_flag"])
    cancel = cancel_flag.exists
    executor = ExperimentExecutor(
        image=image,
        workload=workload,
        models=models,
        base_dir=Path(payload["base_dir"]),
        trigger=payload["trigger"],
        rounds=payload["rounds"],
        campaign_seed=payload["campaign_seed"],
        artifacts_dir=(Path(payload["artifacts_dir"])
                       if payload["artifacts_dir"] else None),
        cancel_check=cancel,
    )
    planned = [PlannedExperiment.from_dict(entry)
               for entry in payload["planned"]]
    stream = ExperimentStream(payload["stream_path"])
    stream.clear()  # recovery merged any previous leftovers already
    shard = payload["shard"]
    cancelled = _run_pipelined(
        executor,
        planned,
        stream,
        payload["parallelism"],
        cancel,
        None,
        lambda _planned: shard,
    )
    return {"shard": shard, "recorded": len(stream),
            "cancelled": cancelled}


def _tail_newlines(path: Path, offset: int) -> tuple[int, int]:
    """Newlines appended to ``path`` past ``offset`` → ``(count,
    new_offset)``.  The progress poll calls this per tick, so reading
    only the appended tail keeps polling O(new results), not O(stream).
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return 0, offset
    return chunk.count(b"\n"), offset + len(chunk)


class ProcessBackend:
    """Per-shard worker processes with deterministic stream merging.

    Each shard runs the pipelined engine in its own (spawned) process —
    full isolation from the service process and true multi-core fan-out —
    streaming to ``experiments-<shard>.jsonl``.  The parent polls shard
    streams for live progress, relays cancellation via the cancel-flag
    file, and finally merges every shard stream into the canonical
    stream sorted by experiment id.  A worker that dies mid-shard loses
    nothing recorded: its partial stream still merges, and its missing
    experiments are recorded as ``harness_error`` (retried on resume).
    """

    name = BACKEND_PROCESS

    #: How often the parent polls cancellation and shard progress.
    poll_seconds = 0.5

    def execute(self, context: ExecutionContext,
                pending: list[PlannedExperiment],
                stream: ExperimentStream) -> ExecutionOutcome:
        executor = context.executor
        shards = _partition(pending, context.shards)
        progress = ShardProgress(self.name, [len(s) for s in shards],
                                 sink=context.on_progress)
        progress.emit()
        cancel_flag = stream.path.with_name(stream.path.stem + ".cancel")
        try:
            cancel_flag.unlink()
        except FileNotFoundError:
            pass
        stream.path.parent.mkdir(parents=True, exist_ok=True)

        active_indices = [index for index, experiments in enumerate(shards)
                          if experiments]
        worker_parallelism = dict(zip(
            active_indices,
            _shard_parallelism(context.parallelism, len(active_indices)),
        ))
        payloads = {}
        for index, experiments in enumerate(shards):
            if not experiments:
                continue
            payloads[index] = {
                **build_shard_payload(executor, context.fault_model,
                                      index, experiments,
                                      worker_parallelism[index]),
                "stream_path": str(shard_stream_path(stream.path, index)),
                "cancel_flag": str(cancel_flag),
            }

        cancelled = False
        failed_shards: dict[int, str] = {}
        if payloads:
            # One single-worker executor *per shard*, spawned (not
            # forked: the service scheduler runs campaigns on worker
            # threads, and forking a threaded process is undefined
            # behaviour waiting to happen).  A shared pool would turn
            # one abruptly-dead worker into BrokenProcessPool for every
            # sibling shard; separate executors contain the blast radius
            # to the shard that actually died.
            spawn = get_context("spawn")
            executors = {
                index: ProcessPoolExecutor(max_workers=1, mp_context=spawn)
                for index in payloads
            }
            try:
                futures = {
                    executors[index].submit(_run_shard_worker, payload):
                        index
                    for index, payload in payloads.items()
                }
                for index in futures.values():
                    progress.start(index)
                offsets = {index: 0 for index in payloads}
                counts = {index: 0 for index in payloads}
                waiting = set(futures)
                while waiting:
                    done, waiting = wait(waiting,
                                         timeout=self.poll_seconds,
                                         return_when=FIRST_COMPLETED)
                    if (context.cancel is not None and context.cancel()
                            and not cancel_flag.exists()):
                        cancelled = True
                        cancel_flag.touch()
                    for index in list(payloads):
                        added, offsets[index] = _tail_newlines(
                            shard_stream_path(stream.path, index),
                            offsets[index],
                        )
                        counts[index] += added
                        progress.set_done(index, counts[index])
                    for future in done:
                        index = futures[future]
                        try:
                            report = future.result()
                            cancelled = cancelled or report["cancelled"]
                            progress.set_done(index, report["recorded"])
                            progress.finish(index)
                        except Exception as error:  # noqa: BLE001
                            # A dead worker (OOM, kill) must not sink the
                            # campaign: its partial stream merges below
                            # and the remainder records harness errors.
                            failed_shards[index] = (
                                f"shard {index} worker died: "
                                f"{type(error).__name__}: {error}"
                            )
                            progress.finish(index, state="failed")
                    # One snapshot per poll tick (emit() skips no-ops).
                    progress.emit()
            finally:
                for executor in executors.values():
                    executor.shutdown(wait=True, cancel_futures=True)
        merge_and_backfill(stream, shards, payloads, failed_shards)
        try:
            cancel_flag.unlink()
        except FileNotFoundError:
            pass
        cancelled = cancelled or (context.cancel is not None
                                  and context.cancel())
        progress.emit()
        return ExecutionOutcome(cancelled=cancelled,
                                shards=progress.snapshot()["shards"])


# -- remote backend ----------------------------------------------------------------

#: Everything a lost worker connection can look like from urllib: refused
#: / reset / timed-out sockets (``URLError`` subclasses ``OSError``, and
#: the client's ``TransportError`` subclasses ``ConnectionError``) and
#: torn HTTP framing from a worker killed mid-response.
_WORKER_CONNECTION_ERRORS = (OSError, http.client.HTTPException)

#: Registry worker states the dispatcher keys placement on (string
#: literals rather than an import: the orchestrator layer must not pull
#: the service layer in at import time).
_ALIVE = "alive"
_DEAD = "dead"


class _AdaptivePoll:
    """Exponential poll backoff: fast while results flow, slow when the
    fleet is quiet.  ``record(progressed)`` resets the interval to the
    minimum on any progress and multiplies it towards the maximum
    otherwise — so an active campaign mirrors results at ``minimum``
    cadence while an idle wait (long experiments, queued shards) decays
    to ``maximum`` instead of burning a request per worker per tick."""

    def __init__(self, minimum: float, maximum: float,
                 backoff: float) -> None:
        self.minimum = minimum
        self.maximum = max(maximum, minimum)
        self.backoff = max(backoff, 1.0)
        self.interval = minimum

    def record(self, progressed: bool) -> None:
        if progressed:
            self.interval = self.minimum
        else:
            self.interval = min(self.interval * self.backoff,
                                self.maximum)


def _fleet_load(view: dict, assigned: "dict[str, int]") -> tuple:
    """Sort key for placement: normalized live load (heartbeat
    ``running + queued`` plus shards *this* dispatcher has in flight
    there, over capacity), URL as the deterministic tie-break."""
    load = view.get("load") or {}
    busy = int(load.get("running") or 0) + int(load.get("queued") or 0)
    busy += assigned.get(view["url"], 0)
    capacity = view.get("max_concurrent") or 0
    return (busy / max(capacity, 1), view["url"])


def least_loaded_worker(fleet: "dict[str, dict]",
                        assigned: "dict[str, int]",
                        excluded=()) -> dict | None:
    """The alive worker with the lowest normalized load, or ``None``.

    ``excluded`` workers (ones that already dropped or stalled this
    shard) are avoided — unless exclusion rules out *every* alive
    worker, in which case they become eligible again: a one-worker fleet
    whose worker restarted must still be able to take the shard back.
    """
    alive = [view for view in fleet.values()
             if view.get("state", _ALIVE) == _ALIVE]
    if not alive:
        return None
    preferred = [view for view in alive if view["url"] not in excluded]
    candidates = preferred or alive
    return min(candidates, key=lambda view: _fleet_load(view, assigned))


def idle_capacity(fleet: "dict[str, dict]", assigned: "dict[str, int]",
                  excluded=()) -> bool:
    """Whether some alive, non-excluded worker has a free execution
    slot — the gate for stealing a stalled shard (stealing onto a fleet
    that is saturated anyway just doubles the queue).  A worker of
    unknown capacity (a static pin that never heartbeats) counts as
    having room: without load data, stealing must stay possible."""
    for view in fleet.values():
        if view.get("state", _ALIVE) != _ALIVE or view["url"] in excluded:
            continue
        capacity = view.get("max_concurrent")
        if capacity is None:
            return True
        load = view.get("load") or {}
        busy = (int(load.get("running") or 0) + int(load.get("queued") or 0)
                + assigned.get(view["url"], 0))
        if busy < capacity:
            return True
    return False


@dataclass
class _RemoteShard:
    """Parent-side state of one shard dispatched to a remote worker."""

    index: int
    experiments: list[PlannedExperiment]
    #: Submission attempts so far (failover counts a new attempt).
    attempts: int = 0
    #: Connection failures since the last mirrored progress — the
    #: failover give-up budget.  Steals do not count: a shard stolen
    #: twice must still survive its first real connection blip.
    failures: int = 0
    #: Workers that dropped or stalled this shard (avoided on retry).
    excluded: set = field(default_factory=set)
    url: str | None = None
    remote_id: str | None = None
    #: Bytes of the *current* remote stream mirrored locally.
    offset: int = 0
    #: Result lines mirrored into the local shard stream (all attempts).
    done_count: int = 0
    cancel_relayed: bool = False
    #: Last time this shard visibly moved (submitted, mirrored bytes, or
    #: remote state transition) — the straggler detector's clock.
    last_progress: float = 0.0
    #: The remote state last observed (transitions count as progress).
    last_remote_state: str | None = None
    #: When the shard started waiting for an alive worker to appear.
    wait_since: float | None = None
    #: Times this shard's tail was stolen from a dead/stalled worker.
    stolen: int = 0


class RemoteBackend:
    """Per-shard remote workers behind the ``/v1`` service API.

    Each non-empty shard's payload (:func:`build_shard_payload`) is
    POSTed to the *least-loaded alive* worker — the fleet comes from the
    worker registry (``context.registry``) when one is configured,
    refreshed every :attr:`fleet_refresh_seconds`, with static
    ``--worker`` URLs mirrored in as unmanaged pins; without a registry
    the static URLs are the fleet, every one pinned alive.  The worker
    runs the exact :func:`_run_shard_worker` engine into its own
    workspace.  The parent polls shard status, incrementally mirrors
    each worker's shard stream into the local
    ``experiments-<shard>.jsonl`` (newline-aligned tail fetches, so the
    local copy only ever holds complete records), and finally merges the
    local shard streams into the canonical stream exactly as
    :class:`ProcessBackend` does — so a campaign killed mid-run resumes
    from everything mirrored so far, on any backend.

    Failure policy — three ways a placed shard moves, all ending in the
    same *steal*: resubmit only the experiments not already mirrored
    locally to another worker (determinism makes the re-run
    byte-identical, so stealing is free):

    * a *connection* loss (worker died, network gone) fails the shard
      over immediately;
    * a registry lease going ``dead`` steals the shard *without
      contacting the worker first* — a SIGSTOPped host's sockets hang
      until timeout, and the lease already proved it missed heartbeats;
    * a *straggler* past :attr:`stall_seconds` with no visible progress
      is stolen when (and only when) another alive worker has idle
      capacity — a best-effort cancel is sent to the old worker, and
      last-record-wins merging absorbs any overlap if it finishes its
      copy anyway.

    A worker-*reported* failure (the shard engine itself raised) is not
    retried elsewhere — the shard's unrecorded experiments become
    ``harness_error`` records, retried on resume, exactly like a dead
    local process worker.

    Cancellation is relayed as ``POST /v1/shards/{id}/cancel``; workers
    observe their cancel-flag file between experiments.
    """

    name = BACKEND_REMOTE

    #: Poll cadence bounds: the loop runs at ``poll_min_seconds`` while
    #: results flow and decays by ``poll_backoff`` per quiet tick up to
    #: ``poll_max_seconds`` — long experiments stop costing a status
    #: request per worker per quarter second.
    poll_min_seconds = 0.25
    poll_max_seconds = 2.0
    poll_backoff = 1.6
    #: Per-request timeout towards workers (a stalled worker counts as a
    #: lost connection once this expires).  The poll loop is sequential,
    #: so this also bounds how long one hung worker can delay mirroring
    #: and cancel relay for its siblings — keep it short.
    request_timeout = 10.0
    #: No visible progress on a placed shard for this long (while idle
    #: capacity exists elsewhere) → steal its unmirrored tail.
    stall_seconds = 30.0
    #: How long a shard may wait for an alive worker to appear before
    #: the campaign gives it up as unplaceable (its experiments become
    #: ``harness_error`` records, retried on resume).
    placement_timeout = 60.0
    #: Registry fleet-view refresh cadence.
    fleet_refresh_seconds = 1.0

    def execute(self, context: ExecutionContext,
                pending: list[PlannedExperiment],
                stream: ExperimentStream) -> ExecutionOutcome:
        # Imported lazily: the client module imports the campaign layer,
        # which imports this module at import time.
        from repro.common.retry import RetryPolicy
        from repro.service.api import APIError
        from repro.service.client import ProFIPyClient

        # A worker answering 500s (disk full, handler bug) is as lost as
        # one refusing connections: the client surfaces those as
        # APIError, which must fail the shard over, not kill the
        # campaign.  (invalid_request → ValueError stays loud: that is a
        # dispatcher bug, and retrying it elsewhere cannot succeed.)
        worker_errors = _WORKER_CONNECTION_ERRORS + (APIError,)

        static_workers = [url.rstrip("/")
                          for url in (context.workers or []) if url]
        registry = context.registry
        if not static_workers and registry is None:
            raise ValueError(
                "remote backend requires worker URLs "
                "(CampaignConfig.workers / --worker) or a registry "
                "(CampaignConfig.registry_url / --registry)"
            )
        shards = _partition(pending, context.shards)
        progress = ShardProgress(self.name, [len(s) for s in shards],
                                 sink=context.on_progress)
        progress.emit()
        stream.path.parent.mkdir(parents=True, exist_ok=True)

        # Status/tail polls are idempotent GETs: a couple of quick
        # retries (bounded well under one poll tick's worth of damage)
        # absorb connection blips without masking a dead worker.
        poll_retry = RetryPolicy(attempts=2, base_delay=0.05,
                                 max_delay=0.25,
                                 deadline=self.request_timeout * 1.5,
                                 attempt_timeout=self.request_timeout)
        clients: dict[str, ProFIPyClient] = {}

        def client_for(url: str) -> ProFIPyClient:
            if url not in clients:
                clients[url] = ProFIPyClient(url,
                                             timeout=self.request_timeout,
                                             retry_policy=poll_retry)
            return clients[url]

        # Static URLs are *pins*: always present, never lease-expired
        # (nobody heartbeats for them).  Mirror them into the registry as
        # unmanaged peers so `profipy workers list` shows the whole
        # fleet; best-effort — placement works off the local view either
        # way.
        if registry is not None:
            for url in static_workers:
                try:
                    registry.register_worker({"url": url,
                                              "managed": False})
                except Exception:  # noqa: BLE001 - visibility only
                    pass

        fleet: dict[str, dict] = {
            url: {"url": url, "state": _ALIVE, "managed": False,
                  "load": None, "max_concurrent": None}
            for url in static_workers
        }
        static_set = set(static_workers)
        last_refresh: float | None = None

        def refresh_fleet(now: float, force: bool = False) -> None:
            nonlocal last_refresh
            if registry is None:
                return
            if (not force and last_refresh is not None
                    and now - last_refresh < self.fleet_refresh_seconds):
                return
            last_refresh = now
            try:
                views = registry.list_workers()
            except Exception:  # noqa: BLE001 - keep the last view
                # A registry blip must not strand the campaign: the
                # previous fleet view stays in force until the next
                # successful refresh.
                return
            seen = set()
            for view in views:
                url = str(view.get("url", "")).rstrip("/")
                if not url:
                    continue
                seen.add(url)
                fleet[url] = {
                    "url": url,
                    "state": view.get("state", _ALIVE),
                    "managed": bool(view.get("managed", True)),
                    "load": view.get("load"),
                    "max_concurrent": view.get("max_concurrent"),
                }
            for url in list(fleet):
                if url not in seen and url not in static_set:
                    # Pruned from the registry entirely: dead.
                    fleet[url]["state"] = _DEAD

        active = {
            index: _RemoteShard(index=index, experiments=experiments)
            for index, experiments in enumerate(shards) if experiments
        }
        worker_parallelism = dict(zip(
            sorted(active),
            _shard_parallelism(context.parallelism, len(active)),
        ))
        #: Shards this dispatcher currently has placed per worker URL —
        #: folded into placement scores so N same-tick placements do not
        #: all pile onto the worker whose heartbeat looked idlest.
        assigned: dict[str, int] = {}
        cancelled = False
        failed_shards: dict[int, str] = {}
        unfinished = set(active)

        def max_attempts() -> int:
            """One initial try plus a failover to every other non-dead
            worker — recomputed live, since the registry fleet grows and
            shrinks mid-campaign."""
            not_dead = sum(1 for view in fleet.values()
                           if view["state"] != _DEAD)
            return max(2, not_dead + 1)

        def local_recorded_ids(index: int) -> set[str]:
            return set(ExperimentStream(
                shard_stream_path(stream.path, index)
            )._latest_entries())

        def detach(state: _RemoteShard, exclude: bool = True) -> None:
            """Unbind the shard from its worker, releasing the
            placement slot (and excluding the worker from its retry)."""
            if state.url is not None:
                assigned[state.url] = max(
                    0, assigned.get(state.url, 1) - 1
                )
                if exclude:
                    state.excluded.add(state.url)
            state.url = None
            state.remote_id = None
            state.offset = 0
            state.cancel_relayed = False
            state.last_remote_state = None

        def lose_connection(state: _RemoteShard, error: Exception) -> None:
            """Handle a dropped worker: fail over or give the shard up."""
            detach(state)
            state.failures += 1
            if state.failures >= max_attempts():
                failed_shards[state.index] = (
                    f"shard {state.index} remote worker unreachable after "
                    f"{state.failures} failure(s): "
                    f"{type(error).__name__}: {error}"
                )
                unfinished.discard(state.index)
                progress.finish(state.index, state="failed")

        def steal(state: _RemoteShard, now: float, reason: str,
                  cancel_old: bool) -> None:
            """Take the shard's unmirrored tail away from its worker;
            the next tick re-places it by least load.  ``cancel_old``
            sends a best-effort cancel (stalled-but-alive workers should
            stop burning sandboxes on work that now runs elsewhere);
            lease-dead workers are never contacted — their sockets hang.
            Everything already mirrored stays mirrored, and determinism
            plus last-record-wins merging make the re-run byte-identical
            even if the old worker finishes its copy anyway."""
            old_url, old_id = state.url, state.remote_id
            if cancel_old and old_url is not None and old_id is not None:
                try:
                    ProFIPyClient(old_url, timeout=3.0,
                                  retry_policy=None).cancel_shard(old_id)
                except Exception:  # noqa: BLE001 - best effort
                    pass
            detach(state)
            state.stolen += 1
            state.last_progress = now

        def place(state: _RemoteShard, now: float) -> bool:
            """Dispatch the shard's unmirrored remainder to the
            least-loaded alive worker; returns whether it was placed.
            No alive worker → wait (give up past placement_timeout)."""
            refresh_fleet(now)
            choice = least_loaded_worker(fleet, assigned, state.excluded)
            if choice is None:
                if state.wait_since is None:
                    state.wait_since = now
                elif now - state.wait_since > self.placement_timeout:
                    failed_shards[state.index] = (
                        f"shard {state.index} unplaceable: no alive "
                        f"worker for {self.placement_timeout:g}s"
                    )
                    unfinished.discard(state.index)
                    progress.finish(state.index, state="failed")
                return False
            state.wait_since = None
            url = choice["url"]
            state.attempts += 1
            # Failover/steal resubmits only what was never mirrored:
            # everything already fetched is recorded locally.
            recorded = (local_recorded_ids(state.index)
                        if state.attempts > 1 else set())
            remaining = [planned for planned in state.experiments
                         if planned.experiment_id not in recorded]
            payload = build_shard_payload(
                context.executor, context.fault_model, state.index,
                remaining, worker_parallelism[state.index],
                image_manifest=context.image_manifest,
            )
            try:
                if (context.image_manifest is not None
                        and context.blob_store is not None):
                    # Content-addressed shipping: ask the worker which
                    # blobs it lacks and upload exactly those.  The
                    # probe runs per placement (not once per worker):
                    # a worker that restarted mid-campaign lost its
                    # in-memory shards but usually not its blob cache,
                    # and a cold one reports everything missing.
                    # Dedup across shards and campaigns falls out — an
                    # unchanged tree re-ships nothing but digests.
                    sync = client_for(url)
                    for digest in sync.missing_blobs(
                            context.image_manifest.digests()):
                        sync.put_blob(
                            digest, context.blob_store.get_bytes(digest)
                        )
                view = client_for(url).submit_shard(payload)
            except worker_errors as error:
                state.excluded.add(url)
                lose_connection(state, error)
                return False
            state.url = url
            assigned[url] = assigned.get(url, 0) + 1
            state.remote_id = view["shard_id"]
            state.offset = 0
            state.cancel_relayed = False
            state.last_remote_state = view.get("state")
            state.last_progress = now
            progress.start(state.index)
            return True

        def sync_tail(state: _RemoteShard) -> bool:
            """Mirror the worker stream's newline-aligned tail locally;
            returns whether any bytes arrived."""
            raw = client_for(state.url).shard_stream(state.remote_id,
                                                     offset=state.offset)
            if not raw:
                return False
            path = shard_stream_path(stream.path, state.index)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "ab") as handle:
                handle.write(raw)
            state.offset += len(raw)
            state.done_count += raw.count(b"\n")
            return True

        poll = _AdaptivePoll(self.poll_min_seconds, self.poll_max_seconds,
                             self.poll_backoff)
        while unfinished:
            now = time.monotonic()
            refresh_fleet(now)
            progressed = False
            if (context.cancel is not None and context.cancel()
                    and not cancelled):
                cancelled = True
            for index in sorted(unfinished):
                state = active[index]
                now = time.monotonic()
                if state.remote_id is None:
                    if cancelled:
                        # Nothing dispatched and the campaign is
                        # stopping: leave the shard for the resume.
                        unfinished.discard(index)
                        progress.finish(index, state="stopped")
                        continue
                    progressed = place(state, now) or progressed
                    continue
                view = fleet.get(state.url)
                if view is not None and view["state"] == _DEAD:
                    # The lease already proved this worker missed its
                    # heartbeats — steal without touching its sockets
                    # (a SIGSTOPped host would stall us until timeout).
                    steal(state, now, reason="lease expired",
                          cancel_old=False)
                    progressed = True
                    continue
                client = client_for(state.url)
                if cancelled and not state.cancel_relayed:
                    try:
                        client.cancel_shard(state.remote_id)
                        state.cancel_relayed = True
                    except (KeyError, *worker_errors):
                        pass  # retried next tick; the status poll below
                        # handles a worker that is actually gone (or one
                        # that restarted and answers unknown_shard)
                try:
                    status = client.shard_status(state.remote_id)
                    if sync_tail(state):
                        state.last_progress = now
                        state.failures = 0
                        progressed = True
                except (KeyError, *worker_errors) as error:
                    # KeyError: the worker restarted and forgot the
                    # shard — its stream is gone with it.  Either way,
                    # a lost worker: fail the shard over.
                    lose_connection(state, error)
                    progressed = True
                    continue
                if status["state"] != state.last_remote_state:
                    state.last_remote_state = status["state"]
                    state.last_progress = now
                progress.set_done(index, state.done_count)
                if status["state"] == "failed":
                    failed_shards[index] = (
                        f"shard {index} remote worker failed: "
                        f"{status.get('error') or 'unknown failure'}"
                    )
                    detach(state, exclude=False)
                    unfinished.discard(index)
                    progress.finish(index, state="failed")
                    progressed = True
                elif status["state"] in ("completed", "cancelled"):
                    cancelled = cancelled or status["state"] == "cancelled"
                    detach(state, exclude=False)
                    unfinished.discard(index)
                    progress.finish(index)
                    progressed = True
                elif (not cancelled
                      and now - state.last_progress > self.stall_seconds
                      and idle_capacity(fleet, assigned,
                                        state.excluded | {state.url})):
                    # A straggler with idle capacity elsewhere: steal
                    # its unmirrored tail rather than wait it out.
                    steal(state, now, reason="stalled", cancel_old=True)
                    progressed = True
            progress.emit()
            if unfinished:
                poll.record(progressed)
                time.sleep(poll.interval)

        merge_and_backfill(stream, shards, active, failed_shards)
        cancelled = cancelled or (context.cancel is not None
                                  and context.cancel())
        progress.emit()
        return ExecutionOutcome(cancelled=cancelled,
                                shards=progress.snapshot()["shards"])


__all__ = [
    "BACKEND_NAMES",
    "BACKEND_PROCESS",
    "BACKEND_REMOTE",
    "BACKEND_THREAD",
    "ExecutionBackend",
    "ExecutionContext",
    "ExecutionOutcome",
    "ProcessBackend",
    "RemoteBackend",
    "ShardProgress",
    "ThreadBackend",
    "build_shard_payload",
    "create_backend",
    "discard_shard_streams",
    "harness_error_result",
    "idle_capacity",
    "least_loaded_worker",
    "leftover_shard_streams",
    "merge_and_backfill",
    "merge_shard_stream",
    "record_outcome",
    "recover_shard_streams",
    "shard_stream_path",
    "validate_backend_name",
]
