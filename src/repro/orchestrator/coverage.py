"""Coverage analysis: skip faults the workload never reaches (§IV-D).

Before executing experiments, ProFIPy runs the workload once against an
*instrumented* build in which every injection point carries a logging
probe and no fault.  Points whose probe never fires are dropped from the
plan — "injecting into non-covered paths causes a waste of time since the
fault would not cause any effect".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.dsl.metamodel import MetaModel
from repro.mutator.mutate import Mutator
from repro.scanner.cache import MatchMemo
from repro.mutator.runtime import COVERAGE_ENV
from repro.orchestrator.plan import Plan
from repro.sandbox.image import SandboxImage
from repro.sandbox.sandbox import Sandbox
from repro.scanner.points import InjectionPoint
from repro.workload.runner import ServiceStartError, run_round, start_services
from repro.workload.spec import WorkloadSpec

COVERAGE_FILE = ".pfp_coverage"


@dataclass
class CoverageReport:
    """Which injection points the fault-free workload run reached."""

    covered: set[str] = field(default_factory=set)
    total: int = 0
    workload_failed: bool = False
    error: str = ""

    @property
    def covered_count(self) -> int:
        return len(self.covered)

    @property
    def ratio(self) -> float:
        return self.covered_count / self.total if self.total else 0.0


def run_coverage(
    image: SandboxImage,
    workload: WorkloadSpec,
    points: list[InjectionPoint],
    models: dict[str, MetaModel],
    base_dir: str | Path,
    name: str = "coverage",
) -> CoverageReport:
    """Instrument every point, run the workload once, read the probes."""
    report = CoverageReport(total=len(points))
    if not points:
        return report
    by_file: dict[str, list[InjectionPoint]] = {}
    for point in points:
        by_file.setdefault(point.file, []).append(point)

    # The memo shares one parse + one matcher run per (file, spec) across
    # every point in the file, instead of re-matching per target list.
    mutator = Mutator(trigger=False, match_memo=MatchMemo())
    instrumented: dict[str, str] = {}
    for rel_file, file_points in by_file.items():
        source = image.read_file(rel_file)
        targets = [
            (models[point.spec_name], point.ordinal, point.point_id)
            for point in file_points
        ]
        instrumented[rel_file] = mutator.instrument_source(
            source, targets, file=rel_file
        )

    with Sandbox.create(image, base_dir, name) as sandbox:
        coverage_path = sandbox.path(COVERAGE_FILE)
        sandbox.env[COVERAGE_ENV] = str(coverage_path)
        for rel_file, source in instrumented.items():
            sandbox.write_file(rel_file, source)
        try:
            start_services(sandbox, workload)
        except ServiceStartError as error:
            report.error = str(error)
            return report
        round_result = run_round(sandbox, workload, 1, fault_enabled=False)
        report.workload_failed = round_result.failed
        try:
            content = coverage_path.read_text(encoding="utf-8")
        except OSError:
            content = ""
    known = {point.point_id for point in points}
    report.covered = {
        line.strip() for line in content.splitlines() if line.strip()
    } & known
    return report


def reduce_plan(plan: Plan, report: CoverageReport) -> Plan:
    """Keep only covered injection points (the reduced plan of §IV-D)."""
    return plan.restrict_to(report.covered)
