"""Fault injection plans: configuration and sampling (paper §IV-A).

After the scan, "the user can select a subset of such locations according
to their needs": filter by component/file/fault type, sample randomly to
cap the number of experiments, or keep everything.  The resulting
:class:`Plan` is the input of the execution phase and can be saved and
re-imported as JSON.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import read_json, write_json
from repro.common.rng import SeededRandom
from repro.common.textutil import glob_match
from repro.scanner.points import InjectionPoint


def shard_index(experiment_id: str, shard_count: int) -> int:
    """Deterministic shard assignment for one experiment id.

    Derived from ``sha256(experiment_id)`` — never ``hash()``, which is
    salted per process (``PYTHONHASHSEED``) and would scatter the same
    plan differently on every run.  The assignment depends only on the
    id and the shard count, so re-planning after a crash partitions
    identically, and a resumed campaign may even change the shard count:
    experiment ids (and therefore seeds and mutants) are independent of
    which shard executes them.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    if shard_count == 1:
        return 0
    digest = hashlib.sha256(experiment_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


@dataclass(frozen=True)
class PlannedExperiment:
    """One experiment of the plan: a unique id plus its injection point."""

    experiment_id: str
    point: InjectionPoint

    def to_dict(self) -> dict:
        return {"experiment_id": self.experiment_id,
                "point": self.point.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "PlannedExperiment":
        return cls(
            experiment_id=data["experiment_id"],
            point=InjectionPoint.from_dict(data["point"]),
        )


@dataclass
class Plan:
    """An ordered set of fault injection experiments."""

    experiments: list[PlannedExperiment] = field(default_factory=list)

    @classmethod
    def from_points(cls, points: list[InjectionPoint],
                    prefix: str = "exp") -> "Plan":
        width = max(4, len(str(len(points))))
        return cls(experiments=[
            PlannedExperiment(
                experiment_id=f"{prefix}-{index:0{width}d}", point=point
            )
            for index, point in enumerate(points, start=1)
        ])

    def __len__(self) -> int:
        return len(self.experiments)

    def __iter__(self):
        return iter(self.experiments)

    @property
    def points(self) -> list[InjectionPoint]:
        return [experiment.point for experiment in self.experiments]

    def point_ids(self) -> list[str]:
        return [experiment.point.point_id for experiment in self.experiments]

    # -- selection -------------------------------------------------------------

    def filter(
        self,
        spec_names: list[str] | None = None,
        files: list[str] | None = None,
        components: list[str] | None = None,
    ) -> "Plan":
        """Keep experiments matching every provided criterion.

        ``files`` entries are glob patterns over the relative path, so a
        user can restrict injection to a specific component, class, or
        file as §IV-A describes.
        """

        def keep(experiment: PlannedExperiment) -> bool:
            point = experiment.point
            if spec_names is not None and point.spec_name not in spec_names:
                return False
            if files is not None and not any(
                glob_match(pattern, point.file) for pattern in files
            ):
                return False
            if components is not None and point.component not in components:
                return False
            return True

        return Plan(experiments=[e for e in self.experiments if keep(e)])

    def sample(self, count: int, rng: SeededRandom | None = None) -> "Plan":
        """Random sample of at most ``count`` experiments (stable order).

        Clamps at the population: ``count >= len(self)`` returns a copy
        of the whole plan.  The draw is deterministic for a fixed
        ``rng`` (two calls with ``SeededRandom(s)`` pick the same ids),
        and the chosen experiments keep their original plan order.

        .. deprecated::
            Internally superseded by
            :func:`repro.stats.sampler.monotone_sample`, whose draws
            are prefix-stable in ``count`` (``sample_n(k)`` is a subset
            of ``sample_n(k + m)``) so a sampled campaign can later
            extend toward exhaustive via resume.  This method's draws
            are *not* monotone in ``count``; ``CampaignConfig.sample``
            now routes through the monotone sampler.  Kept for direct
            API users.
        """
        if count >= len(self.experiments):
            return Plan(experiments=list(self.experiments))
        rng = rng or SeededRandom(0)
        chosen = rng.sample(range(len(self.experiments)), count)
        return Plan(experiments=[self.experiments[i] for i in sorted(chosen)])

    def excluding(self, experiment_ids: set[str]) -> "Plan":
        """Drop experiments whose id is already recorded (crash-resume).

        Experiment ids are stable for a given scan + selection, so a
        restarted campaign re-plans identically and this subtraction
        yields exactly the not-yet-executed remainder.
        """
        if not experiment_ids:
            return Plan(experiments=list(self.experiments))
        return Plan(experiments=[
            experiment for experiment in self.experiments
            if experiment.experiment_id not in experiment_ids
        ])

    def shards(self, shard_count: int) -> "list[Plan]":
        """Partition into ``shard_count`` disjoint sub-plans (stable).

        Experiments keep their plan order within each shard; the union of
        the shards is exactly this plan.  Empty shards are returned as
        empty plans so callers can index shards positionally.
        """
        parts: list[Plan] = [Plan() for _ in range(shard_count)]
        for experiment in self.experiments:
            parts[shard_index(experiment.experiment_id,
                              shard_count)].experiments.append(experiment)
        return parts

    def restrict_to(self, point_ids: set[str]) -> "Plan":
        """Keep only experiments whose point id is in ``point_ids``
        (coverage reduction, §IV-D)."""
        return Plan(experiments=[
            experiment for experiment in self.experiments
            if experiment.point.point_id in point_ids
        ])

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {"experiments": [e.to_dict() for e in self.experiments]}

    def save(self, path: str | Path) -> None:
        write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "Plan":
        data = read_json(path)
        return cls(experiments=[
            PlannedExperiment.from_dict(item)
            for item in data.get("experiments", [])
        ])
