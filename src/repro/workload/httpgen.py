"""Simple HTTP traffic generator (paper §IV-B: "workload generator tools,
such as HTTP and RPC traffic generators").

Usable both as a library (:class:`HttpTrafficGenerator`) and as a
command-line directive inside a sandbox::

    {python} -m repro.workload.httpgen --url http://127.0.0.1:PORT/v2/keys/x \
        --requests 50 --concurrency 4
"""

from __future__ import annotations

import argparse
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Aggregated outcome of a traffic run."""

    requests: int = 0
    successes: int = 0
    failures: int = 0
    total_seconds: float = 0.0
    status_counts: dict[int, int] = field(default_factory=dict)

    @property
    def failure_ratio(self) -> float:
        return self.failures / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.requests / self.total_seconds


class HttpTrafficGenerator:
    """Fire ``requests`` GETs at ``url`` from ``concurrency`` threads."""

    def __init__(self, url: str, requests: int = 50, concurrency: int = 2,
                 timeout: float = 5.0) -> None:
        if requests <= 0 or concurrency <= 0:
            raise ValueError("requests and concurrency must be positive")
        self.url = url
        self.requests = requests
        self.concurrency = concurrency
        self.timeout = timeout

    def run(self) -> TrafficStats:
        stats = TrafficStats()
        lock = threading.Lock()
        counter = iter(range(self.requests))

        def worker() -> None:
            while True:
                with lock:
                    try:
                        next(counter)
                    except StopIteration:
                        return
                status: int | None = None
                try:
                    response = urllib.request.urlopen(
                        self.url, timeout=self.timeout
                    )
                    response.read()
                    status = response.status
                    ok = 200 <= status < 400
                except urllib.error.HTTPError as error:
                    status = error.code
                    ok = False
                except Exception:  # noqa: BLE001 - network errors count
                    ok = False
                with lock:
                    stats.requests += 1
                    if ok:
                        stats.successes += 1
                    else:
                        stats.failures += 1
                    if status is not None:
                        stats.status_counts[status] = (
                            stats.status_counts.get(status, 0) + 1
                        )

        started = time.monotonic()
        threads = [threading.Thread(target=worker)
                   for _ in range(self.concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats.total_seconds = time.monotonic() - started
        return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="HTTP traffic generator")
    parser.add_argument("--url", required=True)
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.add_argument("--max-failure-ratio", type=float, default=0.0,
                        help="exit non-zero above this failure ratio")
    args = parser.parse_args(argv)
    generator = HttpTrafficGenerator(
        url=args.url, requests=args.requests,
        concurrency=args.concurrency, timeout=args.timeout,
    )
    stats = generator.run()
    print(
        f"httpgen: {stats.requests} requests, {stats.failures} failures, "
        f"{stats.throughput:.1f} req/s, statuses={stats.status_counts}"
    )
    return 1 if stats.failure_ratio > args.max_failure_ratio else 0


if __name__ == "__main__":
    raise SystemExit(main())
