"""Round execution: run the workload inside a sandbox and observe it.

A *round* runs every workload command once.  The runner records exit
statuses, timeouts ("stalled service calls"), captured output, and whether
the service processes survived — the raw material for failure-mode
classification (§IV-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.procutil import CommandResult
from repro.sandbox.sandbox import Sandbox
from repro.workload.spec import WorkloadSpec


class ServiceStartError(Exception):
    """The target services never became ready."""


@dataclass
class RoundResult:
    """Observed outcome of one workload round."""

    round_no: int
    fault_enabled: bool
    commands: list[CommandResult] = field(default_factory=list)
    duration: float = 0.0
    services_alive: bool = True

    @property
    def timed_out(self) -> bool:
        return any(command.timed_out for command in self.commands)

    @property
    def failed(self) -> bool:
        """True when any command failed/timed out or a service died."""
        return (
            not self.services_alive
            or any(not command.ok for command in self.commands)
        )

    @property
    def output(self) -> str:
        """Concatenated stdout+stderr of every command in the round."""
        chunks: list[str] = []
        for command in self.commands:
            chunks.append(command.stdout)
            chunks.append(command.stderr)
        return "\n".join(chunk for chunk in chunks if chunk)

    def to_dict(self) -> dict:
        return {
            "round_no": self.round_no,
            "fault_enabled": self.fault_enabled,
            "duration": self.duration,
            "services_alive": self.services_alive,
            "timed_out": self.timed_out,
            "failed": self.failed,
            "commands": [
                {
                    "command": command.command,
                    "returncode": command.returncode,
                    "timed_out": command.timed_out,
                    "duration": command.duration,
                    "stdout": command.stdout,
                    "stderr": command.stderr,
                }
                for command in self.commands
            ],
        }


def start_services(sandbox: Sandbox, spec: WorkloadSpec) -> None:
    """Launch service commands and wait for readiness."""
    if not spec.service_commands:
        return
    for command in spec.service_commands:
        sandbox.start_service(command)
    if spec.ready_file is not None:
        if not sandbox.wait_for_file(spec.ready_file, spec.ready_timeout):
            raise ServiceStartError(
                f"service never produced {spec.ready_file!r} within "
                f"{spec.ready_timeout}s"
            )
    else:
        time.sleep(spec.startup_grace)
    if not sandbox.services_alive():
        raise ServiceStartError("a service process exited during startup")


def run_round(sandbox: Sandbox, spec: WorkloadSpec, round_no: int,
              fault_enabled: bool) -> RoundResult:
    """Run every workload command once and observe the outcome."""
    result = RoundResult(round_no=round_no, fault_enabled=fault_enabled)
    started = time.monotonic()
    for command in spec.commands:
        outcome = sandbox.run(command, timeout=spec.command_timeout)
        result.commands.append(outcome)
        if outcome.timed_out:
            break  # a stalled call ends the round
    result.duration = time.monotonic() - started
    result.services_alive = sandbox.services_alive()
    return result
