"""Workload configuration and execution (paper §IV-B)."""

from repro.workload.httpgen import HttpTrafficGenerator, TrafficStats
from repro.workload.runner import (
    RoundResult,
    ServiceStartError,
    run_round,
    start_services,
)
from repro.workload.spec import WorkloadSpec, etcd_case_study_workload

__all__ = [
    "HttpTrafficGenerator",
    "RoundResult",
    "ServiceStartError",
    "TrafficStats",
    "WorkloadSpec",
    "etcd_case_study_workload",
    "run_round",
    "start_services",
]
