"""Workload configuration (paper §IV-B).

"The user defines the workload by providing command-line directives":
commands that start the target software (long-running services), commands
that exercise it (run once per round), and how to detect readiness and
collect logs.  Commands may use ``{python}`` and ``{sandbox}`` placeholders
expanded by the sandbox.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorkloadSpec:
    """Command-line directives driving one experiment."""

    #: Long-running service commands (e.g. launch a network daemon).
    #: Started once per experiment, kept alive across both rounds.
    service_commands: list[str] = field(default_factory=list)

    #: Workload commands run sequentially in each round; a non-zero exit
    #: status or timeout marks the round as failed.
    commands: list[str] = field(default_factory=list)

    #: Optional file (relative to the sandbox) that signals service
    #: readiness, e.g. a port file written by the server.
    ready_file: str | None = None

    #: Seconds to wait for ``ready_file``.
    ready_timeout: float = 10.0

    #: Without a ready file, grace period before checking that services
    #: survived startup.
    startup_grace: float = 0.3

    #: Wall-clock budget for each workload command.
    command_timeout: float = 60.0

    #: Extra log files to collect after the experiment (relative globs).
    log_files: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.commands:
            raise ValueError("a workload needs at least one command")

    def to_dict(self) -> dict:
        return {
            "service_commands": list(self.service_commands),
            "commands": list(self.commands),
            "ready_file": self.ready_file,
            "ready_timeout": self.ready_timeout,
            "startup_grace": self.startup_grace,
            "command_timeout": self.command_timeout,
            "log_files": list(self.log_files),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            service_commands=list(data.get("service_commands", [])),
            commands=list(data.get("commands", [])),
            ready_file=data.get("ready_file"),
            ready_timeout=float(data.get("ready_timeout", 10.0)),
            startup_grace=float(data.get("startup_grace", 0.3)),
            command_timeout=float(data.get("command_timeout", 60.0)),
            log_files=list(data.get("log_files", [])),
        )


def etcd_case_study_workload(command_timeout: float = 45.0) -> WorkloadSpec:
    """The §V workload: deploy the etcd server, drive the client library."""
    return WorkloadSpec(
        service_commands=[
            "{python} run_server.py --port 0 --port-file port.txt",
        ],
        commands=[
            "{python} run_workload.py --port-file port.txt",
        ],
        ready_file="port.txt",
        ready_timeout=10.0,
        command_timeout=command_timeout,
        log_files=["*.log"],
    )
