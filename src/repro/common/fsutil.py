"""Filesystem helpers for staging source trees and experiment artifacts."""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Iterable, Iterator

#: Directory names never copied into sandboxes or scanned for sources.
IGNORED_DIRS = {
    "__pycache__",
    ".git",
    ".hg",
    ".svn",
    ".tox",
    ".venv",
    "venv",
    ".mypy_cache",
    ".pytest_cache",
    "node_modules",
}


def iter_python_files(root: str | Path) -> Iterator[Path]:
    """Yield every ``.py`` file under ``root``, skipping tool directories.

    A single-file ``root`` is yielded as-is so callers can scan either a
    project tree or one module with the same API.
    """
    root = Path(root)
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in IGNORED_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield Path(dirpath) / name


def copy_tree(src: str | Path, dst: str | Path) -> Path:
    """Copy a source tree into ``dst``, skipping :data:`IGNORED_DIRS`."""
    src, dst = Path(src), Path(dst)
    if src.is_file():
        dst.mkdir(parents=True, exist_ok=True)
        shutil.copy2(src, dst / src.name)
        return dst

    def _ignore(_dir: str, names: list[str]) -> set[str]:
        return {n for n in names if n in IGNORED_DIRS}

    shutil.copytree(src, dst, ignore=_ignore, dirs_exist_ok=True)
    return dst


def atomic_write(path: str | Path, data: str) -> None:
    """Write ``data`` to ``path`` atomically (write temp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(data, encoding="utf-8")
    os.replace(tmp, path)


def write_json(path: str | Path, obj) -> None:
    """Serialize ``obj`` as pretty-printed JSON at ``path`` atomically."""
    atomic_write(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def read_json(path: str | Path):
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def remove_tree(path: str | Path) -> None:
    """Best-effort recursive removal; missing paths are fine."""
    shutil.rmtree(path, ignore_errors=True)


def count_lines(paths: Iterable[str | Path]) -> int:
    """Total line count across ``paths`` (used by the performance benches)."""
    total = 0
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            total += sum(1 for _ in handle)
    return total
