"""Filesystem helpers for staging source trees and experiment artifacts."""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

#: Directory names never copied into sandboxes or scanned for sources.
IGNORED_DIRS = {
    "__pycache__",
    ".git",
    ".hg",
    ".svn",
    ".tox",
    ".venv",
    "venv",
    ".mypy_cache",
    ".pytest_cache",
    "node_modules",
}


def iter_python_files(root: str | Path) -> Iterator[Path]:
    """Yield every ``.py`` file under ``root``, skipping tool directories.

    A single-file ``root`` is yielded as-is so callers can scan either a
    project tree or one module with the same API.
    """
    root = Path(root)
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in IGNORED_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield Path(dirpath) / name


def copy_tree(src: str | Path, dst: str | Path) -> Path:
    """Copy a source tree into ``dst``, skipping :data:`IGNORED_DIRS`."""
    src, dst = Path(src), Path(dst)
    if src.is_file():
        dst.mkdir(parents=True, exist_ok=True)
        shutil.copy2(src, dst / src.name)
        return dst

    def _ignore(_dir: str, names: list[str]) -> set[str]:
        return {n for n in names if n in IGNORED_DIRS}

    shutil.copytree(src, dst, ignore=_ignore, dirs_exist_ok=True)
    return dst


def atomic_write_bytes(path: str | Path, data: bytes,
                       mode: int | None = None) -> None:
    """Write ``data`` to ``path`` atomically (unique temp + fsync + rename).

    A reader never observes a partial file: the data is flushed to a
    uniquely-named temporary sibling first and renamed over ``path`` only
    once it is durably on disk, so a process killed mid-write leaves the
    previous version intact.  The unique temporary name also makes
    concurrent writers of the same path safe (last rename wins); a fixed
    ``.tmp`` name raced when two threads persisted the same file.

    ``mode`` pins the permission bits of the written file (e.g. ``0o755``
    for an executable workload script); ``None`` uses the umask-honoring
    default a plain ``open()`` would have produced.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".",
                                    suffix=".tmp", dir=path.parent)
    try:
        if mode is None:
            # mkstemp creates 0600; widen to the umask-honoring mode a
            # plain open() would have used, so the rename does not
            # silently flip shared-workspace files to owner-only.
            umask = os.umask(0)
            os.umask(umask)
            mode = 0o666 & ~umask
        os.fchmod(fd, mode)
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write(path: str | Path, data: str) -> None:
    """Text variant of :func:`atomic_write_bytes` (UTF-8)."""
    atomic_write_bytes(path, data.encode("utf-8"))


def write_json(path: str | Path, obj) -> None:
    """Serialize ``obj`` as pretty-printed JSON at ``path`` atomically."""
    atomic_write(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def read_json(path: str | Path):
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def remove_tree(path: str | Path) -> None:
    """Best-effort recursive removal; missing paths are fine."""
    shutil.rmtree(path, ignore_errors=True)


def count_lines(paths: Iterable[str | Path]) -> int:
    """Total line count across ``paths`` (used by the performance benches)."""
    total = 0
    for path in paths:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            total += sum(1 for _ in handle)
    return total
