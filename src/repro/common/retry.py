"""Unified retry policy: jittered exponential backoff under a deadline.

One :class:`RetryPolicy` + :func:`retry_call` pair replaces the ad-hoc
single-timeout calls the service stack grew separately — the client's
idempotent GETs (:meth:`repro.service.client.ProFIPyClient._request`),
the remote dispatcher's poll/mirror loops, and worker heartbeats
(:class:`repro.service.registry.WorkerAgent`) all retry through here.

Semantics:

* **attempts** bound how many times the call runs; the last matching
  failure is re-raised once they are spent.
* **backoff** between attempts is exponential
  (``base_delay * multiplier**n``, capped at ``max_delay``) with a
  ``jitter`` fraction randomized away, so a fleet of dispatchers and
  heartbeating workers never retries in lockstep against one coordinator.
* **deadline** is an overall budget across all attempts *and* sleeps —
  a call that must answer within 15s gets 15s total, not
  ``attempts × timeout``.
* **attempt_timeout** is the per-attempt budget handed to the call,
  clipped to whatever remains of the deadline.

Everything time-related is injectable (``clock``/``sleep``/``rng``), so
policies are testable without real sleeps.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) a transient-failure-prone call is retried."""

    #: Total tries, including the first (1 = no retries).
    attempts: int = 3
    #: Backoff before the first retry.
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: Fraction of each backoff randomized away (0.25 → ±25%).
    jitter: float = 0.25
    #: Overall budget in seconds across attempts and sleeps (None = only
    #: ``attempts`` bounds the call).
    deadline: float | None = None
    #: Per-attempt budget handed to the call (None = the call's own
    #: default timeout applies).
    attempt_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay before retry number ``attempt`` (1-based:
        the sleep after the first failed try is ``backoff(1, ...)``)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1),
                    self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


def retry_call(call: Callable, *, policy: RetryPolicy,
               retry_on: tuple = (ConnectionError,),
               clock: Callable[[], float] = time.monotonic,
               sleep: Callable[[float], None] = time.sleep,
               rng: random.Random | None = None):
    """Run ``call(attempt_timeout)`` under ``policy`` and return its value.

    ``call`` receives the per-attempt timeout — ``policy.attempt_timeout``
    clipped to what remains of the overall deadline, or ``None`` when
    neither bounds it (the call then applies its own default).  Failures
    matching ``retry_on`` are retried with jittered exponential backoff
    until attempts or the deadline run out, then the last failure is
    re-raised.  Any other exception propagates immediately: an
    authoritative error (an HTTP-level rejection, a domain error) must
    not be hammered into a server that already answered.
    """
    rng = rng if rng is not None else random.Random()
    started = clock()
    last_error: BaseException | None = None
    for attempt in range(1, policy.attempts + 1):
        remaining = None
        if policy.deadline is not None:
            remaining = policy.deadline - (clock() - started)
            if remaining <= 0:
                break
        attempt_timeout = policy.attempt_timeout
        if remaining is not None:
            attempt_timeout = (remaining if attempt_timeout is None
                               else min(attempt_timeout, remaining))
        try:
            return call(attempt_timeout)
        except retry_on as error:  # noqa: PERF203 - the whole point
            last_error = error
            if attempt >= policy.attempts:
                break
            delay = policy.backoff(attempt, rng)
            if policy.deadline is not None:
                room = policy.deadline - (clock() - started)
                if room <= 0:
                    break
                delay = min(delay, room)
            if delay > 0:
                sleep(delay)
    if last_error is None:
        raise TimeoutError(
            f"retry deadline of {policy.deadline:g}s expired before the "
            "first attempt"
        )
    raise last_error


__all__ = ["RetryPolicy", "retry_call"]
