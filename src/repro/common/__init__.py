"""Shared low-level helpers used across the repro packages.

These modules deliberately contain no fault-injection logic: they provide
filesystem, process, text, JSON, and randomness utilities so that the
higher-level packages (``repro.dsl``, ``repro.scanner``, ``repro.sandbox``,
...) stay focused on the paper's concepts.
"""

from repro.common.rng import SeededRandom
from repro.common.textutil import glob_match, dedent_block, truncate

__all__ = ["SeededRandom", "glob_match", "dedent_block", "truncate"]
