"""Process execution helpers used by the sandbox and workload runner.

Commands run in their own *process group* so that a timeout can reliably
kill the whole tree (servers fork helpers; ``proc.kill()`` alone leaks
them — the paper's container teardown is what guarantees cleanup, and the
process group is our equivalent).
"""

from __future__ import annotations

import os
import signal
import subprocess
import time
from dataclasses import dataclass, field


@dataclass
class CommandResult:
    """Outcome of one command run inside a sandbox."""

    command: str
    returncode: int | None
    stdout: str
    stderr: str
    duration: float
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """True when the command exited zero without timing out."""
        return not self.timed_out and self.returncode == 0


@dataclass
class BackgroundProcess:
    """A long-running service command (e.g. the etcd server under test)."""

    command: str
    popen: subprocess.Popen
    stdout_path: str
    stderr_path: str
    started_at: float = field(default_factory=time.monotonic)

    def alive(self) -> bool:
        return self.popen.poll() is None

    def terminate(self, grace: float = 2.0) -> None:
        """SIGTERM the process group, then SIGKILL after ``grace`` seconds."""
        kill_process_group(self.popen, grace=grace)


def run_command(
    command: str,
    cwd: str,
    env: dict[str, str],
    timeout: float,
    stdin_text: str | None = None,
) -> CommandResult:
    """Run a shell command, capturing output, with group-wide timeout kill."""
    start = time.monotonic()
    proc = subprocess.Popen(
        command,
        shell=True,
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        stdin=subprocess.PIPE if stdin_text is not None else subprocess.DEVNULL,
        start_new_session=True,
        text=True,
    )
    try:
        stdout, stderr = proc.communicate(input=stdin_text, timeout=timeout)
        timed_out = False
    except subprocess.TimeoutExpired:
        kill_process_group(proc)
        stdout, stderr = proc.communicate()
        timed_out = True
    duration = time.monotonic() - start
    return CommandResult(
        command=command,
        returncode=proc.returncode,
        stdout=stdout or "",
        stderr=stderr or "",
        duration=duration,
        timed_out=timed_out,
    )


def spawn_background(
    command: str,
    cwd: str,
    env: dict[str, str],
    stdout_path: str,
    stderr_path: str,
) -> BackgroundProcess:
    """Start a service command detached into its own process group."""
    out = open(stdout_path, "w", encoding="utf-8")
    err = open(stderr_path, "w", encoding="utf-8")
    popen = subprocess.Popen(
        command,
        shell=True,
        cwd=cwd,
        env=env,
        stdout=out,
        stderr=err,
        stdin=subprocess.DEVNULL,
        start_new_session=True,
    )
    # The Popen holds the fds; close our copies so teardown can unlink.
    out.close()
    err.close()
    return BackgroundProcess(
        command=command, popen=popen, stdout_path=stdout_path, stderr_path=stderr_path
    )


def kill_process_group(proc: subprocess.Popen, grace: float = 2.0) -> None:
    """Terminate ``proc``'s whole process group, escalating to SIGKILL."""
    if proc.poll() is not None:
        return
    try:
        pgid = os.getpgid(proc.pid)
    except (ProcessLookupError, PermissionError):
        return
    try:
        os.killpg(pgid, signal.SIGTERM)
    except (ProcessLookupError, PermissionError):
        return
    deadline = time.monotonic() + grace
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return
        time.sleep(0.05)
    try:
        os.killpg(pgid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass
    proc.wait()


def wait_for(predicate, timeout: float, interval: float = 0.05) -> bool:
    """Poll ``predicate`` until it returns True or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())
