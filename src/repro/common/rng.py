"""Deterministic randomness for reproducible fault injection campaigns.

Every stochastic decision in the tool (sampling injection points, corrupting
strings, picking an exception from a list) flows through a
:class:`SeededRandom` so that a campaign re-run with the same seed produces
the same faultload and the same corruptions.
"""

from __future__ import annotations

import hashlib
import random


def experiment_seed(campaign_seed: int | str, experiment_id: str,
                    bits: int = 31) -> int:
    """Stable per-experiment seed from ``(campaign_seed, experiment_id)``.

    Built on sha256, so the value is identical across processes, hosts,
    and ``PYTHONHASHSEED`` values — unlike ``hash()``, which is salted
    per-process and broke campaign replay.  The same derivation feeds the
    sandbox ``SEED_ENV`` and the per-experiment mutation streams.
    """
    material = f"{campaign_seed}::{experiment_id}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** bits)


class SeededRandom:
    """A :class:`random.Random` wrapper with stable sub-stream derivation.

    ``derive(label)`` returns an independent generator whose seed is a hash
    of the parent seed and the label.  This lets each experiment own its own
    stream: experiment 17 corrupts strings the same way regardless of how
    many experiments ran before it.
    """

    def __init__(self, seed: int | str = 0) -> None:
        self.seed = seed
        self._random = random.Random(self._numeric_seed(seed))

    @staticmethod
    def _numeric_seed(seed: int | str) -> int:
        if isinstance(seed, int):
            return seed
        digest = hashlib.sha256(str(seed).encode("utf-8")).hexdigest()
        return int(digest[:16], 16)

    def derive(self, label: str) -> "SeededRandom":
        """Return an independent stream keyed by ``label``."""
        material = f"{self.seed}::{label}"
        return SeededRandom(material)

    # -- thin delegation over the operations the tool actually uses --------

    def random(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def sample(self, population, k: int):
        return self._random.sample(population, k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def corrupt_string(self, value: str, ratio: float = 0.5) -> str:
        """Randomly replace characters of ``value`` (the ``$CORRUPT`` core).

        At least one character is replaced for any non-empty input, so the
        corruption is guaranteed to change the value.
        """
        if not value:
            return "\x00"
        chars = list(value)
        count = max(1, int(len(chars) * ratio))
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789#@!?~"
        for index in self.sample(range(len(chars)), min(count, len(chars))):
            original = chars[index]
            replacement = self.choice(alphabet)
            while replacement == original:
                replacement = self.choice(alphabet)
            chars[index] = replacement
        return "".join(chars)

    def corrupt_int(self, value: int) -> int:
        """Corrupt an integer (negate, zero, off-by-one, or extreme)."""
        candidates = [-value, 0, value + 1, value - 1, -1, 2**31 - 1]
        candidates = [c for c in candidates if c != value] or [value - 1]
        return self.choice(candidates)
