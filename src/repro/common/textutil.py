"""Text helpers: glob matching for DSL name patterns, dedenting, truncation."""

from __future__ import annotations

import fnmatch
import re
import textwrap


def glob_match(pattern: str, value: str) -> bool:
    """Match ``value`` against a DSL name pattern.

    Patterns follow ``fnmatch`` semantics (``*``, ``?``, ``[seq]``).  A
    pattern wrapped in slashes (``/regex/``) is treated as a regular
    expression, which the paper's DSL supports for "more complex fault
    types".  Matching is case-sensitive, as Python identifiers are.
    """
    if pattern.startswith("/") and pattern.endswith("/") and len(pattern) > 1:
        return re.search(pattern[1:-1], value) is not None
    # fnmatch.fnmatch lowercases on some platforms; fnmatchcase never does.
    return fnmatch.fnmatchcase(value, pattern)


def dedent_block(text: str) -> str:
    """Dedent a brace-delimited DSL block to column zero.

    Blank leading/trailing lines are dropped so that patterns written
    inline inside ``change { ... }`` parse as top-level Python.
    """
    head, newline, tail = text.partition("\n")
    if newline and head.strip():
        return _dedent_inline_start(head.strip(), tail)
    return _dedent_lines(text)


def _dedent_inline_start(first: str, tail: str) -> str:
    """Dedent a block whose content starts right after the opening brace.

    ``change { foo()`` puts the first statement at column zero; the
    remaining lines lose their common indentation — except that when the
    first line opens a suite (ends with ``:``), one indentation level is
    preserved so the suite stays nested under it.  Specs should use spaces
    for indentation.
    """
    lines = [line.rstrip() for line in tail.splitlines()]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    if not lines:
        return first
    common = min(
        len(line) - len(line.lstrip(" ")) for line in lines if line.strip()
    )
    reduce_by = max(common - 4, 0) if first.endswith(":") else common
    rest = "\n".join(line[reduce_by:] if line.strip() else "" for line in lines)
    return first + "\n" + rest


def _dedent_lines(text: str) -> str:
    lines = [line.rstrip() for line in text.splitlines()]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return textwrap.dedent("\n".join(lines))


def truncate(text: str, limit: int = 200) -> str:
    """Shorten ``text`` to ``limit`` characters with an ellipsis marker."""
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def indent_lines(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of ``text`` by ``prefix``."""
    return textwrap.indent(text, prefix, lambda line: bool(line.strip()))
