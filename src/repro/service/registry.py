"""Worker fleet membership with heartbeat leases (``/v1/workers``).

The step from "remote backend with static ``--worker`` URLs" to a real
fleet: workers announce themselves to a coordinator and keep a *lease*
alive by heartbeating; the dispatcher resolves its worker set from the
registry instead of (or in addition to) a static list, and detects death
by missed leases rather than per-request connection errors.

* :class:`WorkerRegistry` — the coordinator side.  ``register`` grants a
  lease and a ``worker_id``; ``heartbeat`` refreshes it, carrying the
  worker's live load (``running``/``queued``/``max_concurrent``); a
  worker past its lease is marked ``suspect``, past
  :data:`DEAD_AFTER_LEASES` leases ``dead`` and evicted from placement
  (dead entries linger briefly in listings for operators, then prune).
  Time is injectable (``clock``), so the alive→suspect→dead transitions
  are deterministic under a fake clock in tests.  Sweeping happens
  lazily on every access — no monitor thread, so the in-process and
  HTTP-served registries behave identically.
* :class:`WorkerAgent` — the worker side.  ``profipy worker --join URL``
  starts one: it registers the worker's advertised URL and heartbeats on
  a daemon thread every third of the lease, through the unified retry
  policy.  A heartbeat answered with ``unknown_worker`` /
  ``lease_expired`` (the coordinator restarted, or this worker was
  evicted while unreachable) re-registers under a *fresh* id — the old
  id stays fenced, so anything the dead incarnation still answers for
  is ignored by dispatchers.

Stale-lease fencing: a re-registration for the same URL replaces the
previous entry, and the replaced ``worker_id`` immediately raises
:class:`LeaseExpiredError` on heartbeat.  Dispatchers key their fleet
view on the registry listing, so a stolen shard's old worker instance
answering late is simply no longer consulted.

The registry is in-memory, like the shard host: a restarted coordinator
starts empty and workers re-register on their next heartbeat failure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.common.retry import RetryPolicy, retry_call

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Seconds a heartbeat keeps a worker's lease alive.
DEFAULT_LEASE_SECONDS = 15.0
#: Missed leases before a suspect worker is declared dead and evicted
#: from placement (1 missed lease = suspect).
DEAD_AFTER_LEASES = 2
#: Leases a dead entry lingers in listings before it is pruned.
PRUNE_AFTER_LEASES = 10


class LeaseExpiredError(Exception):
    """The worker's lease is gone (evicted or replaced); it must
    re-register for a fresh id before heartbeating again."""


def _normalized_load(load) -> dict | None:
    if load is None:
        return None
    if not isinstance(load, dict):
        raise ValueError("worker load must be a JSON object")
    normalized = {}
    for key in ("running", "queued", "max_concurrent"):
        value = load.get(key)
        if value is None:
            continue
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"worker load {key!r} must be an integer, got {value!r}"
            ) from None
        if value < 0:
            raise ValueError(f"worker load {key!r} must be >= 0")
        normalized[key] = value
    return normalized


@dataclass
class WorkerEntry:
    """One registered worker and its lease state."""

    worker_id: str
    url: str
    managed: bool = True
    max_concurrent: int | None = None
    state: str = ALIVE
    #: Permanently dead: replaced by a newer registration for the same
    #: URL.  The sweep must never resurrect a fenced lease.
    fenced: bool = False
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    load: dict | None = field(default=None)


class WorkerRegistry:
    """Coordinator-side fleet membership with heartbeat leases."""

    def __init__(self, lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 clock=time.monotonic) -> None:
        if lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0, got {lease_seconds}"
            )
        self.lease_seconds = lease_seconds
        self.clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerEntry] = {}
        self._counter = 0

    # -- facade / wire forms -----------------------------------------------------

    def register_worker(self, payload: dict) -> dict:
        """Wire-form registration (``POST /v1/workers/register``); the
        same signature :class:`ProFIPyService` and the HTTP client
        expose.  Raises ``ValueError`` for a malformed payload."""
        if not isinstance(payload, dict):
            raise ValueError("worker registration must be a JSON object")
        url = payload.get("url")
        if not isinstance(url, str) or not url.strip():
            raise ValueError(
                "worker registration requires a non-empty 'url'"
            )
        max_concurrent = payload.get("max_concurrent")
        if max_concurrent is not None:
            try:
                max_concurrent = int(max_concurrent)
            except (TypeError, ValueError):
                raise ValueError(
                    "worker 'max_concurrent' must be an integer"
                ) from None
            if max_concurrent < 1:
                raise ValueError("worker 'max_concurrent' must be >= 1")
        return self.register(url, max_concurrent=max_concurrent,
                             managed=bool(payload.get("managed", True)))

    def worker_heartbeat(self, worker_id: str, load: dict | None = None) -> dict:
        """Facade alias of :meth:`heartbeat` (1:1 with the client)."""
        return self.heartbeat(worker_id, load)

    # -- lifecycle ---------------------------------------------------------------

    def register(self, url: str, max_concurrent: int | None = None,
                 managed: bool = True) -> dict:
        """Grant a lease for the worker at ``url``; returns its view.

        A managed registration for an already-known URL *replaces* the
        previous entry under a fresh ``worker_id`` — the old lease is
        fenced (its heartbeats answer ``lease_expired``), which is what
        makes a restarted worker safe: dispatchers only ever see the
        live incarnation.  Unmanaged peers (static ``--worker`` URLs a
        dispatcher mirrors into the registry for visibility) are
        idempotent instead: re-registering one refreshes the existing
        entry, and the sweep never expires them — nobody heartbeats on
        their behalf.
        """
        url = url.strip().rstrip("/")
        now = self.clock()
        with self._lock:
            previous = [wid for wid, entry in self._workers.items()
                        if entry.url == url]
            if not managed:
                for wid in previous:
                    entry = self._workers[wid]
                    if not entry.managed:
                        entry.last_heartbeat = now
                        if max_concurrent is not None:
                            entry.max_concurrent = max_concurrent
                        return self._view(entry)
            for wid in previous:
                old = self._workers[wid]
                if old.managed:
                    # Tombstone, don't delete: the replaced incarnation's
                    # late heartbeats must answer ``lease_expired`` (the
                    # fence), not ``unknown_worker``.  The sweep prunes
                    # the tombstone eventually.
                    old.state = DEAD
                    old.fenced = True
                else:
                    del self._workers[wid]
            self._counter += 1
            entry = WorkerEntry(
                worker_id=f"worker-{self._counter:04d}",
                url=url,
                managed=managed,
                max_concurrent=max_concurrent,
                registered_at=now,
                last_heartbeat=now,
            )
            self._workers[entry.worker_id] = entry
            return self._view(entry)

    def heartbeat(self, worker_id: str, load: dict | None = None) -> dict:
        """Refresh the worker's lease, updating its live load.

        Raises ``KeyError`` for an id the registry never knew (or
        already pruned) and :class:`LeaseExpiredError` for a dead or
        replaced lease — either way the worker must re-register.
        """
        load = _normalized_load(load)
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            entry = self._workers.get(worker_id)
            if entry is None:
                raise KeyError(f"unknown worker {worker_id!r}")
            if entry.state == DEAD:
                raise LeaseExpiredError(
                    f"worker {worker_id} lease expired "
                    f"({self.lease_seconds:g}s × {DEAD_AFTER_LEASES} missed); "
                    "re-register for a fresh id"
                )
            entry.last_heartbeat = now
            entry.state = ALIVE
            if load is not None:
                entry.load = load
                if "max_concurrent" in load:
                    entry.max_concurrent = load["max_concurrent"]
            return self._view(entry)

    def list_workers(self) -> list[dict]:
        """Every worker's view, sorted by id (``GET /v1/workers``)."""
        now = self.clock()
        with self._lock:
            self._sweep_locked(now)
            return [self._view(entry)
                    for _wid, entry in sorted(self._workers.items())]

    def alive(self) -> list[dict]:
        """Placeable workers only (``alive``; suspects are skipped for
        *new* placements, dead ones are evicted entirely)."""
        return [view for view in self.list_workers()
                if view["state"] == ALIVE]

    # -- internals ---------------------------------------------------------------

    def _sweep_locked(self, now: float) -> None:
        for worker_id, entry in list(self._workers.items()):
            if not entry.managed:
                continue
            age = now - entry.last_heartbeat
            if entry.fenced:
                if age > self.lease_seconds * PRUNE_AFTER_LEASES:
                    del self._workers[worker_id]
                continue
            if age > self.lease_seconds * PRUNE_AFTER_LEASES:
                del self._workers[worker_id]
            elif age > self.lease_seconds * DEAD_AFTER_LEASES:
                entry.state = DEAD
            elif age > self.lease_seconds:
                if entry.state == ALIVE:
                    entry.state = SUSPECT
            else:
                entry.state = ALIVE

    def _view(self, entry: WorkerEntry) -> dict:
        return {
            "worker_id": entry.worker_id,
            "url": entry.url,
            "state": entry.state,
            "managed": entry.managed,
            "max_concurrent": entry.max_concurrent,
            "load": dict(entry.load) if entry.load is not None else None,
            "lease_seconds": self.lease_seconds,
            "seconds_since_heartbeat": round(
                max(0.0, self.clock() - entry.last_heartbeat), 3
            ),
        }


#: Heartbeats/registrations retry briefly and give up until the next
#: tick — a coordinator blip must neither kill the agent thread nor
#: pile up concurrent retries past the heartbeat interval.
AGENT_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=1.0,
                          deadline=5.0)


class WorkerAgent:
    """The worker side of the lease: register, then heartbeat forever.

    ``client`` is anything exposing the registry facade
    (``register_worker`` / ``worker_heartbeat``) — the HTTP client for a
    real coordinator, or a :class:`WorkerRegistry` /
    :class:`ProFIPyService` directly in tests.  ``shard_host`` supplies
    the live load each heartbeat carries.
    """

    def __init__(self, coordinator_url: str, worker_url: str,
                 shard_host=None, *, interval: float | None = None,
                 client=None, retry: RetryPolicy = AGENT_RETRY) -> None:
        if client is None:
            from repro.service.client import ProFIPyClient

            client = ProFIPyClient(coordinator_url, timeout=10.0)
        self.client = client
        self.coordinator_url = coordinator_url
        self.worker_url = worker_url
        self.shard_host = shard_host
        self.interval = interval
        self.retry = retry
        self.worker_id: str | None = None
        self.lease_seconds: float = DEFAULT_LEASE_SECONDS
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _load(self) -> dict | None:
        return self.shard_host.load() if self.shard_host is not None else None

    def register(self) -> dict:
        payload = {"url": self.worker_url}
        if self.shard_host is not None:
            payload["max_concurrent"] = self.shard_host.max_concurrent
        view = retry_call(
            lambda _timeout: self.client.register_worker(payload),
            policy=self.retry, retry_on=(ConnectionError,),
        )
        self.worker_id = view["worker_id"]
        self.lease_seconds = float(
            view.get("lease_seconds") or DEFAULT_LEASE_SECONDS
        )
        return view

    def heartbeat(self) -> dict:
        """One heartbeat; an evicted/replaced lease re-registers under a
        fresh id (the coordinator fenced the old one)."""
        try:
            return retry_call(
                lambda _timeout: self.client.worker_heartbeat(
                    self.worker_id, self._load()
                ),
                policy=self.retry, retry_on=(ConnectionError,),
            )
        except (KeyError, LeaseExpiredError):
            return self.register()

    def start(self) -> None:
        """Register and start the heartbeat thread (daemon)."""
        self.register()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="profipy-worker-agent")
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval
                                  or self.lease_seconds / 3.0):
            try:
                self.heartbeat()
            except Exception:  # noqa: BLE001 - next tick retries
                # The coordinator is unreachable beyond the retry
                # budget: the lease decays to suspect/dead on its side,
                # and the next successful heartbeat (or re-register)
                # revives it.  The agent thread must survive regardless.
                pass

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)


__all__ = [
    "ALIVE",
    "AGENT_RETRY",
    "DEAD",
    "DEAD_AFTER_LEASES",
    "DEFAULT_LEASE_SECONDS",
    "LeaseExpiredError",
    "PRUNE_AFTER_LEASES",
    "SUSPECT",
    "WorkerAgent",
    "WorkerEntry",
    "WorkerRegistry",
]
