"""Transport-agnostic, versioned service API core (``/v1``).

This module is the single definition of the service wire contract shared
by the HTTP server (:mod:`repro.service.http`) and the client SDK
(:mod:`repro.service.client`):

* **versioned request/response schemas** — dataclasses with explicit
  ``to_dict``/``from_dict`` JSON round-trips (:class:`JobView`,
  :class:`ExperimentPage`, :class:`RegressionTests`), plus lossless
  converters for :class:`CampaignConfig`, classification rules, and
  component specs, so a campaign submitted over HTTP is byte-identical
  to one submitted in-process;
* **explicit error codes** (:data:`ERROR_STATUS`) — every domain failure
  maps to one :class:`APIError` code with a fixed HTTP status, and the
  client maps each code back to the exception type the in-process
  :class:`~repro.service.service.ProFIPyService` raises;
* :class:`ServiceAPI` — the ``/v1`` operations expressed in JSON space
  over a ``ProFIPyService`` core.  Both transports execute the exact
  same core methods, which is what keeps them behaviourally identical.

The wire format is versioned: every endpoint lives under ``/v1`` and
responses carry ``api_version``.  Breaking schema changes get a ``/v2``
mount next to (not instead of) this one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.classify import ClassificationRule
from repro.analysis.metrics import ComponentSpec
from repro.faultmodel.model import FaultModel
from repro.orchestrator.campaign import CampaignConfig
from repro.service.jobs import Job
from repro.service.tenants import (
    AuthenticationError,
    QuotaExceededError,
    TenantForbiddenError,
)
from repro.workload.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import ProFIPyService

API_VERSION = "v1"

# -- error codes -----------------------------------------------------------------

#: Every error the API can return, with its fixed HTTP status.  The
#: client maps codes back to in-process exception types (see
#: :func:`exception_for`): unknown_* → KeyError, missing_artifact →
#: FileNotFoundError, invalid_request → ValueError, timeout →
#: TimeoutError, unauthorized/forbidden → PermissionError subclasses,
#: quota_exceeded → QuotaExceededError.
ERROR_STATUS = {
    "invalid_request": 400,
    "unauthorized": 401,
    "forbidden": 403,
    "unknown_job": 404,
    "unknown_model": 404,
    "unknown_shard": 404,
    "unknown_worker": 404,
    "unknown_blob": 404,
    "missing_artifact": 404,
    "not_found": 404,
    "method_not_allowed": 405,
    "lease_expired": 409,
    "timeout": 408,
    "quota_exceeded": 429,
    "internal": 500,
}


class APIError(Exception):
    """A service error with a wire-level code and HTTP status."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown API error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = ERROR_STATUS[code]

    def to_dict(self) -> dict:
        return {"error": {"code": self.code, "message": self.message},
                "api_version": API_VERSION}

    @classmethod
    def from_dict(cls, data: dict, http_status: int = 500) -> "APIError":
        error = data.get("error", {}) if isinstance(data, dict) else {}
        code = error.get("code")
        if code not in ERROR_STATUS:
            code = "internal" if http_status >= 500 else "invalid_request"
        return cls(code, error.get("message", "unrecognized server error"))


def exception_for(error: APIError) -> Exception:
    """The in-process exception equivalent of a wire error (what the
    client raises so it mirrors ``ProFIPyService`` exactly)."""
    if error.code in ("unknown_job", "unknown_model", "unknown_shard",
                      "unknown_worker", "unknown_blob"):
        return KeyError(error.message)
    if error.code in ("missing_artifact", "not_found"):
        return FileNotFoundError(error.message)
    if error.code == "timeout":
        return TimeoutError(error.message)
    if error.code == "invalid_request":
        return ValueError(error.message)
    if error.code == "lease_expired":
        from repro.service.registry import LeaseExpiredError

        return LeaseExpiredError(error.message)
    if error.code == "unauthorized":
        return AuthenticationError(error.message)
    if error.code == "forbidden":
        return TenantForbiddenError(error.message)
    if error.code == "quota_exceeded":
        return QuotaExceededError(error.message)
    return error


# -- schemas ---------------------------------------------------------------------


@dataclass(frozen=True)
class JobView:
    """Wire projection of one job's lifecycle.

    ``progress`` is the shard-aware execution progress snapshot
    (``experiments_done``/``experiments_total``, ``backend``, per-shard
    ``{shard, total, done, state}`` rows) while the campaign runs —
    ``None`` before execution starts or for jobs submitted by older
    services.
    """

    job_id: str
    name: str
    status: str
    submitted_at: float
    started_at: float | None
    finished_at: float | None
    error: str
    directory: str | None
    progress: dict | None = None

    @classmethod
    def from_job(cls, job: Job) -> "JobView":
        return cls(
            job_id=job.job_id,
            name=job.name,
            status=job.status,
            submitted_at=job.submitted_at,
            started_at=job.started_at,
            finished_at=job.finished_at,
            error=job.error,
            directory=str(job.directory) if job.directory else None,
            progress=job.progress,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobView":
        return cls(
            job_id=data["job_id"],
            name=data.get("name", data["job_id"]),
            status=data["status"],
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error", ""),
            directory=data.get("directory"),
            progress=data.get("progress"),
        )

    def to_job(self) -> Job:
        """A :class:`Job` the client hands back to callers (the
        ``directory`` is a *server-side* path, kept for workflows where
        client and server share a filesystem)."""
        return Job(
            job_id=self.job_id,
            name=self.name,
            status=self.status,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            error=self.error,
            directory=Path(self.directory) if self.directory else None,
            progress=self.progress,
        )


@dataclass(frozen=True)
class ExperimentPage:
    """One page of a job's recorded experiments, sorted by id."""

    experiments: list
    total: int
    offset: int
    limit: int

    @property
    def next_offset(self) -> int | None:
        end = self.offset + len(self.experiments)
        return end if end < self.total else None

    def to_dict(self) -> dict:
        return {
            "experiments": list(self.experiments),
            "total": self.total,
            "offset": self.offset,
            "limit": self.limit,
            "next_offset": self.next_offset,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentPage":
        return cls(
            experiments=list(data.get("experiments", [])),
            total=data["total"],
            offset=data.get("offset", 0),
            limit=data.get("limit", 0),
        )


# -- lossless config round-trips --------------------------------------------------


def campaign_config_to_dict(config: CampaignConfig) -> dict:
    """Serialize every field of a campaign config (paths as strings)."""

    def opt_path(value: Path | None) -> str | None:
        return str(value) if value is not None else None

    return {
        "name": config.name,
        "target_dir": str(config.target_dir),
        "fault_model": config.fault_model.to_dict(),
        "workload": config.workload.to_dict(),
        "injectable_files": (list(config.injectable_files)
                             if config.injectable_files is not None else None),
        "containerfile": config.containerfile,
        "trigger": config.trigger,
        "rounds": config.rounds,
        "coverage": config.coverage,
        "sample": config.sample,
        "spec_filter": (list(config.spec_filter)
                        if config.spec_filter is not None else None),
        "file_filter": (list(config.file_filter)
                        if config.file_filter is not None else None),
        "parallelism": config.parallelism,
        "backend": config.backend,
        "shards": config.shards,
        "workers": (list(config.workers)
                    if config.workers is not None else None),
        "registry_url": config.registry_url,
        "scan_jobs": config.scan_jobs,
        "scan_cache_dir": opt_path(config.scan_cache_dir),
        "scan_incremental": config.scan_incremental,
        "image_manifest": (dict(config.image_manifest)
                           if config.image_manifest is not None else None),
        "blob_cache_dir": opt_path(config.blob_cache_dir),
        "seed": config.seed,
        "workspace": opt_path(config.workspace),
        "keep_artifacts": config.keep_artifacts,
        "results_path": opt_path(config.results_path),
        "resume": config.resume,
        "sampling": (config.sampling.to_dict()
                     if config.sampling is not None else None),
    }


def campaign_config_from_dict(data: dict) -> CampaignConfig:
    """Rebuild a campaign config from its wire form (raises ``KeyError``
    / ``ValueError`` for malformed payloads — the API layer maps them to
    ``invalid_request``).  A ``target_dir`` that does not exist on this
    host is *not* rejected here: it is validated at scan/build time, so
    a config (possibly carrying an ``image_manifest``) round-trips on
    hosts whose filesystem lacks the path."""

    def opt_path(value) -> Path | None:
        return Path(value) if value is not None else None

    return CampaignConfig(
        name=data["name"],
        target_dir=Path(data["target_dir"]),
        fault_model=FaultModel.from_dict(data["fault_model"]),
        workload=WorkloadSpec.from_dict(data["workload"]),
        injectable_files=data.get("injectable_files"),
        containerfile=data.get("containerfile"),
        trigger=data.get("trigger", True),
        rounds=int(data.get("rounds", 2)),
        coverage=data.get("coverage", True),
        sample=data.get("sample"),
        spec_filter=data.get("spec_filter"),
        file_filter=data.get("file_filter"),
        parallelism=data.get("parallelism"),
        backend=data.get("backend", "thread"),
        shards=int(data.get("shards", 1)),
        workers=data.get("workers"),
        registry_url=data.get("registry_url"),
        scan_jobs=data.get("scan_jobs"),
        scan_cache_dir=opt_path(data.get("scan_cache_dir")),
        scan_incremental=bool(data.get("scan_incremental", True)),
        image_manifest=data.get("image_manifest"),
        blob_cache_dir=opt_path(data.get("blob_cache_dir")),
        seed=data.get("seed", 0),
        workspace=opt_path(data.get("workspace")),
        keep_artifacts=data.get("keep_artifacts", False),
        results_path=opt_path(data.get("results_path")),
        resume=data.get("resume", True),
        # CampaignConfig normalizes the wire dict to a SamplingConfig
        # (and validates it) in __post_init__.
        sampling=data.get("sampling"),
    )


def rule_to_dict(rule: ClassificationRule) -> dict:
    return {"mode": rule.mode, "pattern": rule.pattern,
            "scope": rule.scope, "description": rule.description}


def rule_from_dict(data: dict) -> ClassificationRule:
    return ClassificationRule(
        mode=data["mode"], pattern=data["pattern"],
        scope=data.get("scope", "any"),
        description=data.get("description", ""),
    )


def component_to_dict(component: ComponentSpec) -> dict:
    return {"name": component.name,
            "log_globs": list(component.log_globs),
            "error_pattern": component.error_pattern}


def component_from_dict(data: dict) -> ComponentSpec:
    return ComponentSpec(
        name=data["name"],
        log_globs=tuple(data["log_globs"]),
        error_pattern=data.get("error_pattern",
                               ComponentSpec.error_pattern),
    )


# -- the /v1 operations ------------------------------------------------------------

#: Page-size bounds for experiment retrieval.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: Longest single long-poll a server answers; clients loop to wait longer.
MAX_WAIT_SECONDS = 60.0


class ServiceAPI:
    """The ``/v1`` operations in JSON space over a ``ProFIPyService``.

    Every method takes and returns JSON-serializable values and raises
    only :class:`APIError`, so any transport (the stdlib HTTP server, a
    test harness calling it directly) exposes identical behaviour.
    """

    def __init__(self, service: "ProFIPyService") -> None:
        self.service = service

    # -- meta ------------------------------------------------------------------

    def ping(self) -> dict:
        return {"service": "profipy", "api_version": API_VERSION,
                "workspace": str(self.service.workspace)}

    # -- fault models ----------------------------------------------------------

    def list_models(self, tenant: str | None = None) -> dict:
        from repro.faultmodel.library import predefined_models

        return {
            "stored": self.service.stored_models(tenant=tenant),
            "predefined": sorted(predefined_models()),
            "models": self.service.list_models(tenant=tenant),
            "api_version": API_VERSION,
        }

    def get_model(self, name: str, tenant: str | None = None) -> dict:
        try:
            return self.service.load_model(name, tenant=tenant).to_dict()
        except KeyError as error:
            raise APIError("unknown_model", str(error.args[0])) from None

    def put_model(self, name: str, payload: dict,
                  tenant: str | None = None) -> dict:
        try:
            model = FaultModel.from_dict(payload)
        except (KeyError, TypeError, ValueError) as error:
            raise APIError(
                "invalid_request", f"malformed fault model: {error}"
            ) from None
        if model.name != name:
            raise APIError(
                "invalid_request",
                f"model name {model.name!r} does not match URL name {name!r}",
            )
        path = self.service.save_model(model, tenant=tenant)
        return {"name": model.name, "path": str(path),
                "api_version": API_VERSION}

    # -- campaigns -------------------------------------------------------------

    def submit_campaign(self, payload: dict,
                        tenant: str | None = None) -> dict:
        """Submit a campaign job from its wire form.

        Payload: ``{"config": {...}, "rules": [...], "components":
        [...], "resume_from": ..., "block": false}``.  Returns the job
        view; with ``block`` true the returned job is terminal.
        """
        if not isinstance(payload, dict) or "config" not in payload:
            raise APIError("invalid_request",
                           'payload must be an object with a "config" key')
        try:
            config = campaign_config_from_dict(payload["config"])
            rules = [rule_from_dict(r) for r in payload.get("rules", [])]
            components = [component_from_dict(c)
                          for c in payload.get("components", [])]
        except (KeyError, TypeError, ValueError, FileNotFoundError) as error:
            raise APIError("invalid_request",
                           f"malformed campaign payload: {error}") from None
        resume_from = payload.get("resume_from")
        try:
            job = self.service.submit_campaign(
                config,
                rules=rules,
                components=components,
                block=bool(payload.get("block", False)),
                resume_from=resume_from,
                tenant=tenant,
            )
        except TenantForbiddenError as error:
            raise APIError("forbidden", str(error)) from None
        except QuotaExceededError as error:
            raise APIError("quota_exceeded", str(error)) from None
        except KeyError:
            raise APIError("unknown_job",
                           f"unknown job {resume_from!r}") from None
        except FileNotFoundError as error:
            raise APIError("missing_artifact", str(error)) from None
        return JobView.from_job(job).to_dict()

    # -- jobs ------------------------------------------------------------------

    def _job(self, job_id: str, tenant: str | None = None) -> Job:
        try:
            return self.service.job(job_id, tenant=tenant)
        except TenantForbiddenError as error:
            raise APIError("forbidden", str(error)) from None
        except KeyError:
            raise APIError("unknown_job",
                           f"unknown job {job_id!r}") from None

    def get_job(self, job_id: str, tenant: str | None = None) -> dict:
        return JobView.from_job(self._job(job_id, tenant)).to_dict()

    def list_jobs(self, tenant: str | None = None) -> dict:
        return {
            "jobs": [JobView.from_job(job).to_dict()
                     for job in self.service.list_jobs(tenant=tenant)],
            "api_version": API_VERSION,
        }

    def cancel_job(self, job_id: str, tenant: str | None = None) -> dict:
        self._job(job_id, tenant)
        return JobView.from_job(
            self.service.cancel(job_id, tenant=tenant)
        ).to_dict()

    def wait_job(self, job_id: str, timeout: float | None,
                 tenant: str | None = None) -> dict:
        """Long-poll until the job is terminal (bounded per request)."""
        self._job(job_id, tenant)
        if timeout is None or timeout > MAX_WAIT_SECONDS:
            timeout = MAX_WAIT_SECONDS
        try:
            job = self.service.wait(job_id, timeout=timeout, tenant=tenant)
        except TimeoutError as error:
            raise APIError("timeout", str(error)) from None
        return JobView.from_job(job).to_dict()

    # -- results ---------------------------------------------------------------

    def job_summary(self, job_id: str, tenant: str | None = None) -> dict:
        job = self._job(job_id, tenant)
        try:
            return self.service.result_summary(job.job_id, tenant=tenant)
        except FileNotFoundError as error:
            raise APIError("missing_artifact", str(error)) from None

    def job_report(self, job_id: str, tenant: str | None = None) -> str:
        job = self._job(job_id, tenant)
        try:
            return self.service.report_text(job.job_id, tenant=tenant)
        except FileNotFoundError as error:
            raise APIError("missing_artifact", str(error)) from None

    def job_experiments(self, job_id: str, offset: int = 0,
                        limit: int = DEFAULT_PAGE_LIMIT,
                        tenant: str | None = None) -> dict:
        if offset < 0 or limit < 1:
            raise APIError("invalid_request",
                           f"offset must be >= 0 and limit >= 1 "
                           f"(got offset={offset}, limit={limit})")
        limit = min(limit, MAX_PAGE_LIMIT)
        # Serve the recorded dicts straight from the stream (sorted by
        # experiment id, like the in-process reader) — no
        # ExperimentResult materialization + re-serialization per page.
        from repro.orchestrator.stream import ExperimentStream

        entries = ExperimentStream(
            self.experiments_path(job_id, tenant)
        ).entries()
        return ExperimentPage(
            experiments=entries[offset:offset + limit],
            total=len(entries),
            offset=offset,
            limit=limit,
        ).to_dict()

    def experiments_path(self, job_id: str,
                         tenant: str | None = None) -> Path:
        """Filesystem path of the raw result stream (for NDJSON
        transports that serve the file verbatim).

        The path may not exist yet (job still queued): transports serve
        an empty stream then, matching the in-process facade's ``[]``
        for a job with no recorded experiments.
        """
        job = self._job(job_id, tenant)
        try:
            return self.service.experiments_path(job.job_id, tenant=tenant)
        except FileNotFoundError as error:
            raise APIError("missing_artifact", str(error)) from None

    # -- remote-backend worker endpoints ----------------------------------------

    def submit_shard(self, payload: dict) -> dict:
        """Accept a remote-backend shard payload (``POST /v1/shards``).

        The payload is the JSON-plain shard form built by
        :func:`repro.orchestrator.backends.build_shard_payload`; the
        worker rewrites the local-only paths into its own workspace.
        Returns the shard's status view (``queued`` until an execution
        slot frees, then ``running``).
        """
        if not isinstance(payload, dict):
            raise APIError("invalid_request",
                           "shard payload must be a JSON object")
        try:
            view = self.service.submit_shard(payload)
        except (KeyError, TypeError, ValueError) as error:
            raise APIError("invalid_request",
                           f"malformed shard payload: {error}") from None
        return {**view, "api_version": API_VERSION}

    def list_shards(self) -> dict:
        """Every shard this worker accepted (operator introspection)."""
        return {"shards": self.service.list_shards(),
                "api_version": API_VERSION}

    def get_shard(self, shard_id: str) -> dict:
        """One shard's ``{state, total, recorded, cancelled, error}``
        status view (the dispatcher's progress poll)."""
        try:
            view = self.service.shard_status(shard_id)
        except KeyError:
            raise APIError("unknown_shard",
                           f"unknown shard {shard_id!r}") from None
        return {**view, "api_version": API_VERSION}

    def cancel_shard(self, shard_id: str) -> dict:
        """Request cooperative shard cancellation (idempotent)."""
        try:
            view = self.service.cancel_shard(shard_id)
        except KeyError:
            raise APIError("unknown_shard",
                           f"unknown shard {shard_id!r}") from None
        return {**view, "api_version": API_VERSION}

    def shard_stream_path(self, shard_id: str) -> Path:
        """Filesystem path of the shard's raw result stream (for the
        NDJSON tail endpoint; may not exist yet — served as empty)."""
        try:
            return self.service.shard_stream_path(shard_id)
        except KeyError:
            raise APIError("unknown_shard",
                           f"unknown shard {shard_id!r}") from None

    # -- content-addressed blobs --------------------------------------------------

    def blob_path(self, digest: str) -> Path:
        """Filesystem path of a stored blob (the raw-bytes GET serves
        it verbatim); ``unknown_blob`` when this host lacks it."""
        try:
            return self.service.blob_path(digest)
        except ValueError as error:
            raise APIError("invalid_request", str(error)) from None
        except KeyError:
            raise APIError("unknown_blob",
                           f"unknown blob {digest!r}") from None

    def put_blob(self, digest: str, data: bytes,
                 tenant: str | None = None) -> dict:
        """Store one blob (``PUT /v1/blobs/{digest}``, raw body).

        The content is verified against the URL digest — a mismatch is
        a corrupt upload and answers ``invalid_request``.  Idempotent:
        re-putting a stored blob is a no-op (and costs no quota).
        """
        try:
            stored = self.service.put_blob(digest, data, tenant=tenant)
        except QuotaExceededError as error:
            raise APIError("quota_exceeded", str(error)) from None
        except (TypeError, ValueError) as error:
            raise APIError("invalid_request", str(error)) from None
        return {"digest": stored, "size": len(data),
                "api_version": API_VERSION}

    def missing_blobs(self, payload: dict) -> dict:
        """The batched have/have-not probe (``POST /v1/blobs/missing``):
        answers which of the asked digests this host lacks, so a
        dispatcher uploads only those."""
        if (not isinstance(payload, dict)
                or not isinstance(payload.get("digests"), list)):
            raise APIError(
                "invalid_request",
                'payload must be an object with a "digests" list',
            )
        try:
            missing = self.service.missing_blobs(payload["digests"])
        except ValueError as error:
            raise APIError("invalid_request", str(error)) from None
        return {"missing": missing, "api_version": API_VERSION}

    # -- worker fleet registry ---------------------------------------------------

    def register_worker(self, payload: dict) -> dict:
        """Grant a worker lease (``POST /v1/workers/register``)."""
        if not isinstance(payload, dict):
            raise APIError("invalid_request",
                           "worker registration must be a JSON object")
        try:
            view = self.service.register_worker(payload)
        except ValueError as error:
            raise APIError("invalid_request", str(error)) from None
        return {**view, "api_version": API_VERSION}

    def worker_heartbeat(self, worker_id: str, payload: dict) -> dict:
        """Refresh a worker lease
        (``POST /v1/workers/{id}/heartbeat``); the body optionally
        carries the worker's live ``load``."""
        from repro.service.registry import LeaseExpiredError

        load = payload.get("load") if isinstance(payload, dict) else None
        try:
            view = self.service.worker_heartbeat(worker_id, load)
        except KeyError:
            raise APIError("unknown_worker",
                           f"unknown worker {worker_id!r}") from None
        except LeaseExpiredError as error:
            raise APIError("lease_expired", str(error)) from None
        except ValueError as error:
            raise APIError("invalid_request", str(error)) from None
        return {**view, "api_version": API_VERSION}

    def list_workers(self) -> dict:
        """The fleet view (``GET /v1/workers``), lease states swept."""
        return {"workers": self.service.list_workers(),
                "api_version": API_VERSION}

    # -- cross-campaign statistics ------------------------------------------------

    def stats_campaigns(self, tenant: str | None = None) -> dict:
        """Indexed campaigns in the (tenant's) statistical result store
        (``GET /v1/stats/campaigns``)."""
        return {"campaigns": self.service.stats_campaigns(tenant=tenant),
                "api_version": API_VERSION}

    def stats_aggregate(self, campaign: str | None = None,
                        spec: str | None = None,
                        file: str | None = None,
                        component: str | None = None,
                        confidence: float | None = None,
                        tenant: str | None = None) -> dict:
        """Per-mode counts and Wilson estimates across stored campaigns
        (``GET /v1/stats/aggregate``), filterable by campaign name and
        injection-point spec/file/component."""
        try:
            report = self.service.stats_aggregate(
                campaign=campaign, spec=spec, file=file,
                component=component,
                confidence=0.95 if confidence is None else confidence,
                tenant=tenant,
            )
        except ValueError as error:
            raise APIError("invalid_request", str(error)) from None
        return {**report, "api_version": API_VERSION}

    def generate_regression_tests(self, job_id: str,
                                  tenant: str | None = None) -> dict:
        """Generate regression tests server-side and return their
        sources (the client materializes them wherever it wants)."""
        job = self._job(job_id, tenant)
        dest = self.service._job_dir(job) / "regression_tests"
        try:
            written = self.service.generate_regression_tests(
                job.job_id, dest, tenant=tenant)
        except FileNotFoundError as error:
            raise APIError("missing_artifact", str(error)) from None
        return {
            "tests": [
                {"filename": path.name,
                 "content": path.read_text(encoding="utf-8")}
                for path in written
            ],
            "api_version": API_VERSION,
        }
