"""Job scheduling for the as-a-service layer.

The hosted ProFIPy runs campaigns asynchronously on behalf of users; the
offline equivalent is a bounded job scheduler: submitted campaigns become
jobs with a lifecycle (``queued`` → ``running`` →
``completed``/``failed``/``cancelled``) drained FIFO by a fixed pool of
``max_workers`` worker threads, with metadata and results persisted under
the service workspace.

The seed implementation spawned one unbounded daemon thread per submit,
so N concurrent users meant N concurrent campaigns (each with its own
sandbox pool) thrashing the host.  The scheduler admits every submit
immediately as ``queued`` but runs at most ``max_workers`` job bodies at
a time — the paper's "container pool per host" policy applied to whole
campaigns.

Cancellation is cooperative: :meth:`JobRunner.cancel` flips a per-job
event; a queued job is retired before its body ever runs, while a
running body observes the flag through :meth:`JobRunner.cancel_requested`
(the campaign layer checks it between experiments) and raises
:class:`JobCancelled` to land the job in the ``cancelled`` state.

Job metadata (``job.json``) is persisted via a unique-temp-file +
``os.replace`` write, so a process killed mid-write can never leave a
corrupt file that would hide the job from the next service process.
"""

from __future__ import annotations

import re
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import read_json, write_json

_JOB_ID_RE = re.compile(r"job-(\d+)")

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Concurrent job bodies per scheduler (campaigns already parallelize
#: internally, so a small number of concurrent campaigns saturates a host).
DEFAULT_MAX_WORKERS = 2


class JobCancelled(Exception):
    """Raised by a job body to acknowledge a cancellation request."""


@dataclass
class Job:
    """One submitted campaign and its lifecycle."""

    job_id: str
    name: str
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    directory: Path | None = None
    #: Shard-aware execution progress (``experiments_done``/
    #: ``experiments_total`` + per-shard states), attached by the
    #: service layer from the job's ``progress.json`` — deliberately
    #: *not* part of ``to_dict``: it changes per experiment and is
    #: persisted separately from the lifecycle metadata.
    progress: dict | None = field(default=None, compare=False)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict, directory: Path | None = None) -> "Job":
        return cls(
            job_id=data["job_id"],
            name=data.get("name", data["job_id"]),
            status=data.get("status", QUEUED),
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error", ""),
            directory=directory,
        )


class JobRunner:
    """Bounded FIFO scheduler for job bodies, with persisted state.

    ``submit(..., block=True)`` still runs the body inline in the caller
    thread (the CLI's synchronous path); asynchronous submissions queue
    and are drained by at most ``max_workers`` worker threads.
    """

    def __init__(self, jobs_dir: Path,
                 max_workers: int = DEFAULT_MAX_WORKERS) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.jobs_dir = jobs_dir
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.max_workers = max_workers
        self._jobs: dict[str, Job] = {}
        self._bodies: dict[str, object] = {}
        self._queue: deque[str] = deque()
        self._cancel_events: dict[str, threading.Event] = {}
        self._finished_events: dict[str, threading.Event] = {}
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._load_existing()

    def _load_existing(self) -> None:
        for meta in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                data = read_json(meta)
                job = Job.from_dict(data, directory=meta.parent)
            except (OSError, ValueError, KeyError):
                # A corrupt job.json must not take the whole registry
                # down; the directory still blocks its id (see
                # _next_job_id) so nothing is silently overwritten.
                continue
            if job.status in (RUNNING, QUEUED):
                # A previous process died before finishing this job; its
                # body (a closure) is gone, so it cannot be resumed here.
                job.status = FAILED
                job.error = "interrupted (service restarted)"
                self._persist(job)
            self._jobs[job.job_id] = job

    def _next_job_id(self) -> str:
        """One past the highest numeric suffix seen in memory *or* on disk.

        Counting jobs (the old scheme) reused an existing id whenever a
        job directory had been deleted or its metadata failed to load —
        the new job would then overwrite the survivor's directory.
        """
        highest = 0
        names = set(self._jobs)
        try:
            names.update(path.name for path in self.jobs_dir.iterdir()
                         if path.is_dir())
        except OSError:
            pass
        for name in names:
            match = _JOB_ID_RE.fullmatch(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"job-{highest + 1:04d}"

    # -- submission --------------------------------------------------------------

    def submit(self, name: str, body, block: bool = False) -> Job:
        """Register a job; ``body(job_dir)`` does the work.

        ``block=True`` executes the body inline and returns the finished
        job; otherwise the job is queued and picked up by a worker thread
        as one frees (FIFO, at most ``max_workers`` bodies in flight).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            job_id = self._next_job_id()
            directory = self.jobs_dir / job_id
            directory.mkdir(parents=True, exist_ok=True)
            job = Job(job_id=job_id, name=name, directory=directory)
            self._jobs[job_id] = job
            self._cancel_events[job_id] = threading.Event()
            self._finished_events[job_id] = threading.Event()
            self._persist(job)
            if not block:
                self._bodies[job_id] = body
                self._queue.append(job_id)
                self._spawn_workers_locked()
                self._wake.notify()
        if block:
            self._execute(job, body)
        return job

    def _spawn_workers_locked(self) -> None:
        """Grow the worker pool (never beyond ``max_workers``)."""
        self._workers = [t for t in self._workers if t.is_alive()]
        needed = min(len(self._queue), self.max_workers - len(self._workers))
        for _ in range(max(0, needed)):
            worker = threading.Thread(target=self._worker_loop, daemon=True)
            self._workers.append(worker)
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait(timeout=1.0)
                if self._closed and not self._queue:
                    return
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                body = self._bodies.pop(job_id, None)
                if self._cancel_events[job_id].is_set():
                    # Cancelled while queued: retire without running.
                    self._finish_locked(job, CANCELLED)
                    continue
                # Claim under the lock so cancel() can no longer retire
                # this job as "queued" while the body is about to start.
                job.status = RUNNING
                job.started_at = time.time()
            self._execute(job, body)

    def _execute(self, job: Job, body) -> None:
        if job.status != RUNNING:  # inline (block=True) path
            job.status = RUNNING
            job.started_at = time.time()
        self._persist(job)
        try:
            body(job.directory)
            status = COMPLETED
        except JobCancelled:
            status = CANCELLED
        except Exception:  # noqa: BLE001 - recorded on the job
            status = FAILED
            job.error = traceback.format_exc()
        with self._lock:
            self._finish_locked(job, status)

    def _finish_locked(self, job: Job, status: str) -> None:
        job.status = status
        job.finished_at = time.time()
        self._persist(job)
        event = self._finished_events.get(job.job_id)
        if event is not None:
            event.set()

    # -- lifecycle ---------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda job: job.job_id)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent, returns the job.

        A queued job is retired to ``cancelled`` immediately; a running
        job keeps running until its body observes
        :meth:`cancel_requested` (the campaign checks between
        experiments) and raises :class:`JobCancelled`.
        """
        with self._lock:
            job = self.get(job_id)
            if job.finished:
                return job
            self._cancel_events[job_id].set()
            if job.status == QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # claimed by a worker in the same instant; its
                    # body observes cancel_requested() and stops early
                else:
                    self._bodies.pop(job_id, None)
                    self._finish_locked(job, CANCELLED)
        return job

    def cancel_requested(self, job_id: str) -> bool:
        """Whether :meth:`cancel` was called for this job (the hook a
        running body polls between units of work)."""
        event = self._cancel_events.get(job_id)
        return event is not None and event.is_set()

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state and return it.

        Raises :class:`TimeoutError` if the job is still queued/running
        after ``timeout`` seconds, so a returned job is guaranteed to be
        terminal (previously a still-RUNNING job was returned
        indistinguishably from a finished one).
        """
        job = self.get(job_id)
        if job.finished:
            return job
        event = self._finished_events.get(job_id)
        if event is None or not event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.status} after {timeout}s"
            )
        return job

    def close(self) -> None:
        """Stop accepting work and let idle workers exit (queued jobs
        already claimed keep running; daemon threads die with the
        process)."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()

    def _persist(self, job: Job) -> None:
        # write_json goes through a unique temp file + os.replace (see
        # fsutil.atomic_write), so concurrent persists of the same job
        # and kills mid-write both leave a parseable job.json behind.
        if job.directory is not None:
            write_json(job.directory / "job.json", job.to_dict())
