"""Job management for the as-a-service layer.

The hosted ProFIPy runs campaigns asynchronously on behalf of users; the
offline equivalent is a small job registry: submitted campaigns become
jobs with a lifecycle (``queued`` → ``running`` → ``completed``/``failed``)
executed on worker threads, with metadata and results persisted under the
service workspace.
"""

from __future__ import annotations

import re
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.common.fsutil import read_json, write_json

_JOB_ID_RE = re.compile(r"job-(\d+)")

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"


@dataclass
class Job:
    """One submitted campaign and its lifecycle."""

    job_id: str
    name: str
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    directory: Path | None = None

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict, directory: Path | None = None) -> "Job":
        return cls(
            job_id=data["job_id"],
            name=data.get("name", data["job_id"]),
            status=data.get("status", QUEUED),
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error", ""),
            directory=directory,
        )


class JobRunner:
    """Runs job bodies on daemon threads and persists their state."""

    def __init__(self, jobs_dir: Path) -> None:
        self.jobs_dir = jobs_dir
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._jobs: dict[str, Job] = {}
        self._threads: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._load_existing()

    def _load_existing(self) -> None:
        for meta in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                data = read_json(meta)
                job = Job.from_dict(data, directory=meta.parent)
            except (OSError, ValueError, KeyError):
                # A corrupt job.json must not take the whole registry
                # down; the directory still blocks its id (see
                # _next_job_id) so nothing is silently overwritten.
                continue
            if job.status == RUNNING:
                # A previous process died mid-job.
                job.status = FAILED
                job.error = "interrupted (service restarted)"
                self._persist(job)
            self._jobs[job.job_id] = job

    def _next_job_id(self) -> str:
        """One past the highest numeric suffix seen in memory *or* on disk.

        Counting jobs (the old scheme) reused an existing id whenever a
        job directory had been deleted or its metadata failed to load —
        the new job would then overwrite the survivor's directory.
        """
        highest = 0
        names = set(self._jobs)
        try:
            names.update(path.name for path in self.jobs_dir.iterdir()
                         if path.is_dir())
        except OSError:
            pass
        for name in names:
            match = _JOB_ID_RE.fullmatch(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"job-{highest + 1:04d}"

    def submit(self, name: str, body, block: bool = False) -> Job:
        """Register and start a job; ``body(job_dir)`` does the work."""
        with self._lock:
            job_id = self._next_job_id()
            directory = self.jobs_dir / job_id
            directory.mkdir(parents=True, exist_ok=True)
            job = Job(job_id=job_id, name=name, directory=directory)
            self._jobs[job_id] = job
            self._persist(job)

        def run() -> None:
            job.status = RUNNING
            job.started_at = time.time()
            self._persist(job)
            try:
                body(directory)
                job.status = COMPLETED
            except Exception:  # noqa: BLE001 - recorded on the job
                job.status = FAILED
                job.error = traceback.format_exc()
            job.finished_at = time.time()
            self._persist(job)

        if block:
            run()
        else:
            thread = threading.Thread(target=run, daemon=True)
            self._threads[job_id] = thread
            thread.start()
        return job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda job: job.job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes and return it.

        Raises :class:`TimeoutError` if the job is still running after
        ``timeout`` seconds, so a returned job is guaranteed to be in a
        terminal state (previously a still-RUNNING job was returned
        indistinguishably from a finished one).
        """
        job = self.get(job_id)
        thread = self._threads.get(job_id)
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                raise TimeoutError(
                    f"job {job_id} still {job.status} after {timeout}s"
                )
        return job

    def _persist(self, job: Job) -> None:
        if job.directory is not None:
            write_json(job.directory / "job.json", job.to_dict())
