"""Job scheduling for the as-a-service layer.

The hosted ProFIPy runs campaigns asynchronously on behalf of *many*
users; the offline equivalent is a bounded, tenant-fair job scheduler:
submitted campaigns become jobs with a lifecycle (``queued`` →
``running`` → ``completed``/``failed``/``cancelled``) drained by a fixed
pool of ``max_workers`` worker threads, with metadata and results
persisted under the service workspace.

The seed implementation spawned one unbounded daemon thread per submit,
so N concurrent users meant N concurrent campaigns (each with its own
sandbox pool) thrashing the host.  The first scheduler bounded that with
a single global FIFO — which traded the thrashing for starvation: one
tenant's burst of queued campaigns blocked every other tenant's first
job.  The queue is now **per tenant**, drained round-robin:

* each tenant has its own FIFO deque; workers pick the next job by
  rotating over tenants with pending work, so a tenant's first job waits
  behind at most one job of each *other* tenant, never behind another
  tenant's backlog;
* a per-tenant ``max_running`` cap (from the tenant's
  :class:`~repro.service.tenants.TenantSpec`) bounds how many of the
  pool's workers one tenant can hold concurrently — the cap doubles as
  the tenant's fair-share weight;
* a per-tenant ``max_queued`` quota rejects runaway backlogs at submit
  time with :class:`~repro.service.tenants.QuotaExceededError` (HTTP
  429) instead of admitting unbounded queues.

Single-user deployments see no change: every job belongs to the
:data:`~repro.service.tenants.DEFAULT_TENANT`, whose queue is unlimited
and uncapped — one tenant round-robin degenerates to the old global
FIFO.

Cancellation is cooperative: :meth:`JobRunner.cancel` flips a per-job
event; a queued job is retired before its body ever runs, while a
running body observes the flag through :meth:`JobRunner.cancel_requested`
(the campaign layer checks it between experiments) and raises
:class:`JobCancelled` to land the job in the ``cancelled`` state.

Job metadata (``job.json``) is persisted via a unique-temp-file +
``os.replace`` write, so a process killed mid-write can never leave a
corrupt file that would hide the job from the next service process.
Default-tenant jobs live under the runner's ``jobs_dir`` (the
pre-tenancy layout); configured tenants' jobs live under
``<tenants_root>/<tenant>/jobs`` and are reloaded from there too.
"""

from __future__ import annotations

import re
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.common.fsutil import read_json, write_json
from repro.service.tenants import (
    DEFAULT_TENANT,
    QuotaExceededError,
    TenantSpec,
    UNLIMITED_SPEC,
    validate_tenant_name,
)

_JOB_ID_RE = re.compile(r"job-(\d+)")

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Concurrent job bodies per scheduler (campaigns already parallelize
#: internally, so a small number of concurrent campaigns saturates a host).
DEFAULT_MAX_WORKERS = 2


class JobCancelled(Exception):
    """Raised by a job body to acknowledge a cancellation request."""


@dataclass
class Job:
    """One submitted campaign and its lifecycle."""

    job_id: str
    name: str
    status: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str = ""
    directory: Path | None = None
    #: The tenant the job belongs to; every accessor of the service
    #: layer checks it before exposing the job.
    tenant: str = DEFAULT_TENANT
    #: Shard-aware execution progress (``experiments_done``/
    #: ``experiments_total`` + per-shard states), attached by the
    #: service layer from the job's ``progress.json`` — deliberately
    #: *not* part of ``to_dict``: it changes per experiment and is
    #: persisted separately from the lifecycle metadata.
    progress: dict | None = field(default=None, compare=False)

    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "tenant": self.tenant,
        }

    @classmethod
    def from_dict(cls, data: dict, directory: Path | None = None) -> "Job":
        return cls(
            job_id=data["job_id"],
            name=data.get("name", data["job_id"]),
            status=data.get("status", QUEUED),
            submitted_at=data.get("submitted_at", 0.0),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error", ""),
            directory=directory,
            tenant=data.get("tenant", DEFAULT_TENANT),
        )


class JobRunner:
    """Bounded tenant-fair scheduler for job bodies, with persisted state.

    ``submit(..., block=True)`` still runs the body inline in the caller
    thread (the CLI's synchronous path); asynchronous submissions queue
    per tenant and are drained by at most ``max_workers`` worker threads
    picking round-robin across tenants with pending work.

    ``limits`` maps a tenant name to its :class:`TenantSpec` (the
    scheduler uses ``max_running`` and ``max_queued``); the default
    grants every tenant the unlimited envelope, which preserves the
    single-user FIFO behaviour exactly.
    """

    def __init__(self, jobs_dir: Path,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 tenants_root: Path | None = None,
                 limits: Callable[[str], TenantSpec] | None = None) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.jobs_dir = jobs_dir
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.tenants_root = tenants_root
        self.max_workers = max_workers
        self._limits = limits or (lambda tenant: UNLIMITED_SPEC)
        self._jobs: dict[str, Job] = {}
        self._bodies: dict[str, object] = {}
        #: Per-tenant FIFO queues, drained round-robin by the workers.
        self._queues: dict[str, deque[str]] = {}
        #: Rotation order over tenants with pending work.
        self._rotation: deque[str] = deque()
        self._cancel_events: dict[str, threading.Event] = {}
        self._finished_events: dict[str, threading.Event] = {}
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._load_existing()

    def jobs_dir_for(self, tenant: str) -> Path:
        """Where the tenant's job directories live (the default tenant
        keeps the pre-tenancy ``jobs_dir`` layout)."""
        if tenant == DEFAULT_TENANT:
            return self.jobs_dir
        validate_tenant_name(tenant)
        if self.tenants_root is None:
            raise ValueError(
                f"tenant {tenant!r}: this scheduler has no tenants_root; "
                "only default-tenant jobs are supported"
            )
        return self.tenants_root / tenant / "jobs"

    def _metadata_files(self):
        yield from sorted(self.jobs_dir.glob("*/job.json"))
        if self.tenants_root is not None and self.tenants_root.is_dir():
            yield from sorted(self.tenants_root.glob("*/jobs/*/job.json"))

    def _load_existing(self) -> None:
        for meta in self._metadata_files():
            try:
                data = read_json(meta)
                job = Job.from_dict(data, directory=meta.parent)
            except (OSError, ValueError, KeyError):
                # A corrupt job.json must not take the whole registry
                # down; the directory still blocks its id (see
                # _next_job_id) so nothing is silently overwritten.
                continue
            if job.status in (RUNNING, QUEUED):
                # A previous process died before finishing this job; its
                # body (a closure) is gone, so it cannot be resumed here.
                job.status = FAILED
                job.error = "interrupted (service restarted)"
                self._persist(job)
            self._jobs[job.job_id] = job

    def _next_job_id(self) -> str:
        """One past the highest numeric suffix seen in memory *or* on disk.

        Counting jobs (the old scheme) reused an existing id whenever a
        job directory had been deleted or its metadata failed to load —
        the new job would then overwrite the survivor's directory.  Ids
        are global across tenants, so a job id names one job no matter
        which tenant's namespace it lives in.
        """
        highest = 0
        names = set(self._jobs)
        roots = [self.jobs_dir]
        if self.tenants_root is not None and self.tenants_root.is_dir():
            try:
                roots.extend(path / "jobs"
                             for path in self.tenants_root.iterdir()
                             if (path / "jobs").is_dir())
            except OSError:
                pass
        for root in roots:
            try:
                names.update(path.name for path in root.iterdir()
                             if path.is_dir())
            except OSError:
                pass
        for name in names:
            match = _JOB_ID_RE.fullmatch(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"job-{highest + 1:04d}"

    # -- submission --------------------------------------------------------------

    def submit(self, name: str, body, block: bool = False,
               tenant: str = DEFAULT_TENANT) -> Job:
        """Register a job for ``tenant``; ``body(job_dir)`` does the work.

        ``block=True`` executes the body inline and returns the finished
        job; otherwise the job joins the tenant's queue and is picked up
        by a worker thread as the round-robin drain reaches it.  An
        asynchronous submit that would push the tenant's backlog past
        its ``max_queued`` quota raises :class:`QuotaExceededError`
        without admitting the job.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if not block:
                spec = self._limits(tenant)
                queued = len(self._queues.get(tenant, ()))
                if (spec.max_queued is not None
                        and queued >= spec.max_queued):
                    raise QuotaExceededError(
                        f"tenant {tenant!r} already has {queued} queued "
                        f"job(s) (max_queued={spec.max_queued}); wait for "
                        "the backlog to drain"
                    )
            job_id = self._next_job_id()
            directory = self.jobs_dir_for(tenant) / job_id
            directory.mkdir(parents=True, exist_ok=True)
            job = Job(job_id=job_id, name=name, directory=directory,
                      tenant=tenant)
            self._jobs[job_id] = job
            self._cancel_events[job_id] = threading.Event()
            self._finished_events[job_id] = threading.Event()
            self._persist(job)
            if not block:
                self._bodies[job_id] = body
                queue = self._queues.get(tenant)
                if queue is None:
                    queue = self._queues[tenant] = deque()
                    self._rotation.append(tenant)
                queue.append(job_id)
                self._spawn_workers_locked()
                self._wake.notify()
        if block:
            self._execute(job, body)
        return job

    def _spawn_workers_locked(self) -> None:
        """Grow the worker pool (never beyond ``max_workers``)."""
        self._workers = [t for t in self._workers if t.is_alive()]
        pending = sum(len(queue) for queue in self._queues.values())
        needed = min(pending, self.max_workers - len(self._workers))
        for _ in range(max(0, needed)):
            worker = threading.Thread(target=self._worker_loop, daemon=True)
            self._workers.append(worker)
            worker.start()

    def _running_locked(self, tenant: str) -> int:
        """How many of the tenant's jobs hold a worker right now."""
        return sum(1 for job in self._jobs.values()
                   if job.tenant == tenant and job.status == RUNNING)

    def _pick_next_locked(self) -> str | None:
        """The next runnable job id, rotating fair-share across tenants.

        Starting from the rotation head, the first tenant with pending
        work *and* headroom under its ``max_running`` cap wins; the
        rotation then continues past it, so tenants take turns and no
        backlog monopolizes the pool.  ``None`` when nothing is
        currently runnable (all queues empty, or every pending tenant is
        at its cap).
        """
        for _ in range(len(self._rotation)):
            if not self._rotation:
                return None
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            queue = self._queues.get(tenant)
            if not queue:
                # Drained: drop the tenant from the rotation (re-added
                # on its next submit).
                self._rotation.remove(tenant)
                del self._queues[tenant]
                continue
            cap = self._limits(tenant).max_running
            if cap is not None and self._running_locked(tenant) >= cap:
                continue
            return queue.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                job_id = self._pick_next_locked()
                while job_id is None and not self._closed:
                    self._wake.wait(timeout=1.0)
                    job_id = self._pick_next_locked()
                if job_id is None:
                    return
                job = self._jobs[job_id]
                body = self._bodies.pop(job_id, None)
                if self._cancel_events[job_id].is_set():
                    # Cancelled while queued: retire without running.
                    self._finish_locked(job, CANCELLED)
                    continue
                # Claim under the lock so cancel() can no longer retire
                # this job as "queued" while the body is about to start
                # (and so _running_locked counts it against the cap).
                job.status = RUNNING
                job.started_at = time.time()
            self._execute(job, body)

    def _execute(self, job: Job, body) -> None:
        if job.status != RUNNING:  # inline (block=True) path
            job.status = RUNNING
            job.started_at = time.time()
        self._persist(job)
        try:
            body(job.directory)
            status = COMPLETED
        except JobCancelled:
            status = CANCELLED
        except Exception:  # noqa: BLE001 - recorded on the job
            status = FAILED
            job.error = traceback.format_exc()
        with self._lock:
            self._finish_locked(job, status)

    def _finish_locked(self, job: Job, status: str) -> None:
        job.status = status
        job.finished_at = time.time()
        self._persist(job)
        event = self._finished_events.get(job.job_id)
        if event is not None:
            event.set()
        # A finished job frees headroom under its tenant's max_running
        # cap: wake the workers so a capped tenant's backlog resumes.
        self._wake.notify_all()

    # -- lifecycle ---------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise KeyError(f"unknown job {job_id!r}") from None

    def list(self, tenant: str | None = None) -> list[Job]:
        """Every job, or one tenant's jobs, sorted by id."""
        jobs = self._jobs.values()
        if tenant is not None:
            jobs = [job for job in jobs if job.tenant == tenant]
        return sorted(jobs, key=lambda job: job.job_id)

    def queued_count(self, tenant: str) -> int:
        """How many of the tenant's jobs are waiting in its queue."""
        with self._lock:
            return len(self._queues.get(tenant, ()))

    def running_count(self, tenant: str) -> int:
        """How many of the tenant's jobs are running right now."""
        with self._lock:
            return self._running_locked(tenant)

    def cancel(self, job_id: str) -> Job:
        """Request cancellation; idempotent, returns the job.

        A queued job is retired to ``cancelled`` immediately; a running
        job keeps running until its body observes
        :meth:`cancel_requested` (the campaign checks between
        experiments) and raises :class:`JobCancelled`.
        """
        with self._lock:
            job = self.get(job_id)
            if job.finished:
                return job
            self._cancel_events[job_id].set()
            if job.status == QUEUED:
                queue = self._queues.get(job.tenant)
                try:
                    if queue is None:
                        raise ValueError
                    queue.remove(job_id)
                except ValueError:
                    pass  # claimed by a worker in the same instant; its
                    # body observes cancel_requested() and stops early
                else:
                    self._bodies.pop(job_id, None)
                    self._finish_locked(job, CANCELLED)
        return job

    def cancel_requested(self, job_id: str) -> bool:
        """Whether :meth:`cancel` was called for this job (the hook a
        running body polls between units of work)."""
        event = self._cancel_events.get(job_id)
        return event is not None and event.is_set()

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state and return it.

        Raises :class:`TimeoutError` if the job is still queued/running
        after ``timeout`` seconds, so a returned job is guaranteed to be
        terminal (previously a still-RUNNING job was returned
        indistinguishably from a finished one).
        """
        job = self.get(job_id)
        if job.finished:
            return job
        event = self._finished_events.get(job_id)
        if event is None or not event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.status} after {timeout}s"
            )
        return job

    def close(self) -> None:
        """Stop accepting work and let idle workers exit (queued jobs
        already claimed keep running; daemon threads die with the
        process)."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()

    def _persist(self, job: Job) -> None:
        # write_json goes through a unique temp file + os.replace (see
        # fsutil.atomic_write), so concurrent persists of the same job
        # and kills mid-write both leave a parseable job.json behind.
        if job.directory is not None:
            write_json(job.directory / "job.json", job.to_dict())
