"""Stdlib HTTP transport for the versioned service API (``/v1``).

A :class:`ThreadingHTTPServer` mounting :class:`repro.service.api.ServiceAPI`
— the same core the in-process :class:`ProFIPyService` facade uses — so a
campaign submitted over the wire behaves byte-identically to one
submitted in-process.  Started from the CLI via ``profipy serve``.

Endpoints (see ``docs/SERVICE_API.md`` for the full table)::

    GET  /v1/ping
    GET  /v1/models                         PUT /v1/models/{name}
    GET  /v1/models/{name}
    POST /v1/campaigns                      # submit (supports resume_from)
    GET  /v1/jobs                           GET /v1/jobs/{id}
                                            # job views carry shard-aware
                                            # "progress" while running
    POST /v1/jobs/{id}/cancel               GET /v1/jobs/{id}/wait?timeout=S
    GET  /v1/jobs/{id}/summary              GET /v1/jobs/{id}/report
    GET  /v1/jobs/{id}/experiments?offset=N&limit=M
    GET  /v1/jobs/{id}/experiments.ndjson   # streams experiments.jsonl
    POST /v1/jobs/{id}/regression-tests
    POST /v1/shards                         # worker role: accept a shard
    GET  /v1/shards                         # accepted shards (operator)
    GET  /v1/shards/{id}                    # shard status/progress
    POST /v1/shards/{id}/cancel             # cooperative shard cancel
    GET  /v1/shards/{id}/stream.ndjson?offset=N   # newline-aligned tail
    GET  /v1/blobs/{digest}                 # raw content-addressed blob
    PUT  /v1/blobs/{digest}                 # upload one blob (raw body)
    POST /v1/blobs/missing                  # which digests this host lacks
    POST /v1/workers/register               # join the worker fleet
    POST /v1/workers/{id}/heartbeat         # renew lease, report load
    GET  /v1/workers                        # fleet view (lease states)

Errors are JSON bodies ``{"error": {"code": ..., "message": ...}}`` with
the HTTP status fixed per code (:data:`repro.service.api.ERROR_STATUS`).
``/v1/jobs/{id}/wait`` long-polls: the handler thread blocks (bounded to
``MAX_WAIT_SECONDS`` per request) and answers 408/``timeout`` when the
job is still running, so clients loop without busy-polling.  The NDJSON
endpoint streams the raw result stream file in chunks — constant server
memory regardless of campaign size.

**Authentication.**  When the service carries a tenant directory
(``profipy serve --tenants FILE`` or a ``tenants.json`` in the
workspace), every endpoint except ``GET /v1/ping`` requires an
``Authorization: Bearer <token>`` header naming a configured tenant;
requests without one answer 401/``unauthorized``.  The resolved tenant
scopes every tenant-owned resource (models, jobs, stats) and feeds the
per-tenant token-bucket rate limiter (429/``quota_exceeded``).  With no
directory configured the server is the original open single-user API.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.service.api import API_VERSION, APIError, ServiceAPI
from repro.service.service import ProFIPyService
from repro.service.tenants import (
    DEFAULT_TENANT,
    AuthenticationError,
    TokenBucket,
)

#: Upper bound on accepted request bodies (fault models and campaign
#: configs are small; a runaway body must not exhaust server memory).
MAX_BODY_BYTES = 16 * 1024 * 1024

_STREAM_CHUNK = 64 * 1024

#: (method, compiled path pattern, handler name) routing table.
_ROUTES: list[tuple[str, re.Pattern, str]] = [
    ("GET", re.compile(r"/v1/ping$"), "_route_ping"),
    ("GET", re.compile(r"/v1/models$"), "_route_list_models"),
    ("GET", re.compile(r"/v1/models/(?P<name>[^/]+)$"), "_route_get_model"),
    ("PUT", re.compile(r"/v1/models/(?P<name>[^/]+)$"), "_route_put_model"),
    ("POST", re.compile(r"/v1/campaigns$"), "_route_submit_campaign"),
    ("GET", re.compile(r"/v1/jobs$"), "_route_list_jobs"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)$"), "_route_get_job"),
    ("POST", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/cancel$"),
     "_route_cancel_job"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/wait$"),
     "_route_wait_job"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/summary$"),
     "_route_job_summary"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/report$"),
     "_route_job_report"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/experiments$"),
     "_route_job_experiments"),
    ("GET", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/experiments\.ndjson$"),
     "_route_job_experiments_ndjson"),
    ("POST", re.compile(r"/v1/jobs/(?P<job_id>[^/]+)/regression-tests$"),
     "_route_regression_tests"),
    ("POST", re.compile(r"/v1/shards$"), "_route_submit_shard"),
    ("GET", re.compile(r"/v1/shards$"), "_route_list_shards"),
    ("GET", re.compile(r"/v1/shards/(?P<shard_id>[^/]+)$"),
     "_route_get_shard"),
    ("POST", re.compile(r"/v1/shards/(?P<shard_id>[^/]+)/cancel$"),
     "_route_cancel_shard"),
    ("GET", re.compile(r"/v1/shards/(?P<shard_id>[^/]+)/stream\.ndjson$"),
     "_route_shard_stream"),
    ("POST", re.compile(r"/v1/blobs/missing$"), "_route_missing_blobs"),
    ("GET", re.compile(r"/v1/blobs/(?P<digest>[^/]+)$"), "_route_get_blob"),
    ("PUT", re.compile(r"/v1/blobs/(?P<digest>[^/]+)$"), "_route_put_blob"),
    ("POST", re.compile(r"/v1/workers/register$"), "_route_register_worker"),
    ("GET", re.compile(r"/v1/workers$"), "_route_list_workers"),
    ("POST", re.compile(r"/v1/workers/(?P<worker_id>[^/]+)/heartbeat$"),
     "_route_worker_heartbeat"),
    ("GET", re.compile(r"/v1/stats/campaigns$"), "_route_stats_campaigns"),
    ("GET", re.compile(r"/v1/stats/aggregate$"), "_route_stats_aggregate"),
]


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1`` requests onto the shared :class:`ServiceAPI`."""

    server_version = f"ProFIPy/{API_VERSION}"
    protocol_version = "HTTP/1.1"

    @property
    def api(self) -> ServiceAPI:
        return self.server.api  # type: ignore[attr-defined]

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        self._response_started = False
        self._tenant = DEFAULT_TENANT
        try:
            self._authenticate(parsed.path)
            allowed: list[str] = []
            for route_method, pattern, handler_name in _ROUTES:
                match = pattern.fullmatch(parsed.path)
                if match is None:
                    continue
                if route_method != method:
                    allowed.append(route_method)
                    continue
                query = parse_qs(parsed.query)
                getattr(self, handler_name)(match, query)
                return
            if allowed:
                error = APIError(
                    "method_not_allowed",
                    f"{method} not allowed on {parsed.path} "
                    f"(allowed: {', '.join(sorted(set(allowed)))})",
                )
                error.allow = sorted(set(allowed))
                raise error
            raise APIError(
                "not_found", f"no such endpoint: {method} {parsed.path} "
                f"(API version {API_VERSION})"
            )
        except APIError as error:
            self._send_error(error)
        except ConnectionError:  # client went away mid-response
            self.close_connection = True
        except Exception as error:  # noqa: BLE001 - one request, not the server
            self._send_error(APIError(
                "internal", f"{type(error).__name__}: {error}"
            ))

    def _authenticate(self, path: str) -> None:
        """Resolve the request's tenant (and spend a rate-limit token).

        No tenant directory → the open single-user API: every caller is
        the default tenant.  With a directory, ``GET /v1/ping`` stays
        open (health probes have no credentials); everything else needs
        a bearer token that maps to a configured tenant.  Auth and
        rate-limit failures leave the request body unread, so the
        connection must close — a keep-alive socket with a pending body
        would corrupt the next request's framing.
        """
        directory = self.server.tenants  # type: ignore[attr-defined]
        if directory is None or path == "/v1/ping":
            return
        header = self.headers.get("Authorization") or ""
        token = None
        if header.lower().startswith("bearer "):
            token = header[7:].strip() or None
        try:
            self._tenant = directory.authenticate(token)
        except AuthenticationError as error:
            self.close_connection = True
            raise APIError("unauthorized", str(error)) from None
        bucket = self.server.bucket_for(self._tenant)  # type: ignore[attr-defined]
        if bucket is not None and not bucket.try_acquire():
            self.close_connection = True
            raise APIError(
                "quota_exceeded",
                f"tenant {self._tenant!r} exceeded its request rate "
                "limit; retry later",
            )

    def _send_error(self, error: APIError) -> None:
        if self._response_started:
            # Headers (and possibly part of a streamed body) are already
            # on the wire; injecting a second response would corrupt the
            # HTTP framing.  Dropping the connection is the only honest
            # signal left.
            self.close_connection = True
            return
        headers = {}
        if getattr(error, "allow", None):
            headers["Allow"] = ", ".join(error.allow)
        self._send_json(error.http_status, error.to_dict(), headers=headers)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # request logging is the embedding application's business

    # -- helpers -----------------------------------------------------------------

    def _read_raw(self) -> bytes:
        """The request body verbatim (blob uploads are raw bytes, not
        JSON), bounded like every accepted body.

        The header is validated before use: a malformed value
        (``Content-Length: abc``) used to raise an unhandled
        ``ValueError`` (a 500 for a client mistake), and a *negative*
        value sailed past the upper-bound check and turned into
        ``rfile.read(-5)`` — read-to-EOF, defeating the body bound
        entirely.  Both now answer 400/``invalid_request``.  Every
        rejection closes the connection: the body was never read, and
        a keep-alive socket with unread bytes would desync framing.
        """
        header = self.headers.get("Content-Length")
        if header is None or not header.strip():
            return b""
        try:
            length = int(header.strip())
        except ValueError:
            self.close_connection = True
            raise APIError(
                "invalid_request",
                f"malformed Content-Length header: {header.strip()!r}",
            ) from None
        if length < 0:
            self.close_connection = True
            raise APIError("invalid_request",
                           f"negative Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            raise APIError("invalid_request",
                           f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length else b""

    def _read_json(self, optional: bool = False) -> dict:
        raw = self._read_raw()
        if not raw:
            if optional:
                return {}
            raise APIError("invalid_request", "request body required")
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise APIError("invalid_request",
                           "request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise APIError("invalid_request",
                           "request body must be a JSON object")
        return data

    def _query_number(self, query: dict, key: str, default, cast):
        values = query.get(key)
        if not values:
            return default
        try:
            return cast(values[-1])
        except ValueError:
            raise APIError("invalid_request",
                           f"query parameter {key!r} must be a number, "
                           f"got {values[-1]!r}") from None

    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send_body(status, body, "application/json; charset=utf-8",
                        headers=headers)

    def _send_text(self, status: int, text: str) -> None:
        self._send_body(status, text.encode("utf-8"),
                        "text/plain; charset=utf-8")

    def _send_body(self, status: int, body: bytes, content_type: str,
                   headers: dict | None = None) -> None:
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- routes ------------------------------------------------------------------

    def _route_ping(self, _match, _query) -> None:
        self._send_json(200, self.api.ping())

    def _route_list_models(self, _match, _query) -> None:
        self._send_json(200, self.api.list_models(tenant=self._tenant))

    def _route_get_model(self, match, _query) -> None:
        self._send_json(200, self.api.get_model(match.group("name"),
                                                tenant=self._tenant))

    def _route_put_model(self, match, _query) -> None:
        payload = self._read_json()
        self._send_json(200, self.api.put_model(match.group("name"), payload,
                                                tenant=self._tenant))

    def _route_submit_campaign(self, _match, _query) -> None:
        payload = self._read_json()
        self._send_json(202, self.api.submit_campaign(payload,
                                                      tenant=self._tenant))

    def _route_list_jobs(self, _match, _query) -> None:
        self._send_json(200, self.api.list_jobs(tenant=self._tenant))

    def _route_get_job(self, match, _query) -> None:
        self._send_json(200, self.api.get_job(match.group("job_id"),
                                              tenant=self._tenant))

    def _route_cancel_job(self, match, _query) -> None:
        self._send_json(200, self.api.cancel_job(match.group("job_id"),
                                                 tenant=self._tenant))

    def _route_wait_job(self, match, query) -> None:
        timeout = self._query_number(query, "timeout", None, float)
        self._send_json(200, self.api.wait_job(match.group("job_id"),
                                               timeout,
                                               tenant=self._tenant))

    def _route_job_summary(self, match, _query) -> None:
        self._send_json(200, self.api.job_summary(match.group("job_id"),
                                                  tenant=self._tenant))

    def _route_job_report(self, match, _query) -> None:
        self._send_text(200, self.api.job_report(match.group("job_id"),
                                                 tenant=self._tenant))

    def _route_job_experiments(self, match, query) -> None:
        offset = self._query_number(query, "offset", 0, int)
        limit = self._query_number(query, "limit", None, int)
        from repro.service.api import DEFAULT_PAGE_LIMIT

        self._send_json(200, self.api.job_experiments(
            match.group("job_id"), offset=offset,
            limit=DEFAULT_PAGE_LIMIT if limit is None else limit,
            tenant=self._tenant,
        ))

    def _route_job_experiments_ndjson(self, match, _query) -> None:
        path = self.api.experiments_path(match.group("job_id"),
                                         tenant=self._tenant)
        if not path.exists():
            # No experiments recorded yet — an empty stream, exactly as
            # the in-process facade returns [] (transport equivalence).
            self._send_body(200, b"", "application/x-ndjson")
            return
        size = path.stat().st_size
        self._response_started = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(size))
        self.end_headers()
        # Stream the result file verbatim in chunks: the wire format IS
        # the on-disk format, and server memory stays constant no matter
        # how many experiments the campaign recorded.  The stream is
        # append-only, so reading up to the size we advertised is safe
        # even while a campaign is still running.
        remaining = size
        with open(path, "rb") as handle:
            while remaining > 0:
                chunk = handle.read(min(_STREAM_CHUNK, remaining))
                if not chunk:
                    break
                self.wfile.write(chunk)
                remaining -= len(chunk)

    def _route_regression_tests(self, match, _query) -> None:
        self._send_json(
            200, self.api.generate_regression_tests(match.group("job_id"),
                                                    tenant=self._tenant)
        )

    # -- remote-backend worker routes --------------------------------------------

    def _route_submit_shard(self, _match, _query) -> None:
        payload = self._read_json()
        self._send_json(202, self.api.submit_shard(payload))

    def _route_list_shards(self, _match, _query) -> None:
        self._send_json(200, self.api.list_shards())

    def _route_get_shard(self, match, _query) -> None:
        self._send_json(200, self.api.get_shard(match.group("shard_id")))

    def _route_cancel_shard(self, match, _query) -> None:
        self._send_json(200,
                        self.api.cancel_shard(match.group("shard_id")))

    # -- content-addressed blob routes ---------------------------------------------

    def _route_get_blob(self, match, _query) -> None:
        """One blob's raw content — the wire format IS the stored file."""
        path = self.api.blob_path(match.group("digest"))
        try:
            body = path.read_bytes()
        except OSError:
            # Evicted between the existence check and the read: to the
            # client that is indistinguishable from never-stored.
            raise APIError(
                "unknown_blob", f"unknown blob {match.group('digest')!r}"
            ) from None
        self._send_body(200, body, "application/octet-stream")

    def _route_put_blob(self, match, _query) -> None:
        body = self._read_raw()
        self._send_json(200, self.api.put_blob(match.group("digest"), body,
                                               tenant=self._tenant))

    def _route_missing_blobs(self, _match, _query) -> None:
        self._send_json(200, self.api.missing_blobs(self._read_json()))

    # -- worker fleet registry routes ---------------------------------------------

    def _route_register_worker(self, _match, _query) -> None:
        payload = self._read_json()
        self._send_json(200, self.api.register_worker(payload))

    def _route_list_workers(self, _match, _query) -> None:
        self._send_json(200, self.api.list_workers())

    def _route_worker_heartbeat(self, match, _query) -> None:
        # The body is optional: a load-less heartbeat still renews the
        # lease (minimal agents need not track load).
        payload = self._read_json(optional=True)
        self._send_json(200, self.api.worker_heartbeat(
            match.group("worker_id"), payload
        ))

    def _route_stats_campaigns(self, _match, _query) -> None:
        self._send_json(200, self.api.stats_campaigns(tenant=self._tenant))

    def _route_stats_aggregate(self, _match, query) -> None:
        def _text(key):
            values = query.get(key)
            return values[-1] if values else None

        self._send_json(200, self.api.stats_aggregate(
            campaign=_text("campaign"),
            spec=_text("spec"),
            file=_text("file"),
            component=_text("component"),
            confidence=self._query_number(query, "confidence", None, float),
            tenant=self._tenant,
        ))

    def _route_shard_stream(self, match, query) -> None:
        """The shard stream's newline-aligned tail from ``offset``.

        Dispatchers poll this incrementally (``offset`` = bytes already
        mirrored); the response is truncated at the last newline so a
        read racing an in-flight append never ships half a record —
        the next poll picks the completed line up.  The next offset is
        simply ``offset + len(body)``.
        """
        offset = self._query_number(query, "offset", 0, int)
        if offset < 0:
            raise APIError("invalid_request",
                           f"offset must be >= 0, got {offset}")
        path = self.api.shard_stream_path(match.group("shard_id"))
        try:
            size = path.stat().st_size
        except OSError:
            # Nothing recorded yet: an empty tail, not an error.
            self._send_body(200, b"", "application/x-ndjson")
            return
        start = min(offset, size)
        with open(path, "rb") as handle:
            handle.seek(start)
            data = handle.read(size - start)
        end = data.rfind(b"\n")
        data = data[:end + 1] if end >= 0 else b""
        self._send_body(200, data, "application/x-ndjson")


class ProFIPyHTTPServer(ThreadingHTTPServer):
    """The service API served over HTTP; one handler thread per request
    (long-polls therefore never starve other callers)."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: ProFIPyService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.api = ServiceAPI(service)
        self.tenants = service.tenants
        self._buckets: dict[str, TokenBucket] = {}
        self._bucket_lock = threading.Lock()

    def bucket_for(self, tenant: str) -> TokenBucket | None:
        """The tenant's request rate limiter (``None`` when the tenant
        is unthrottled); one bucket per tenant per server process."""
        if self.tenants is None:
            return None
        spec = self.tenants.spec(tenant)
        if spec.requests_per_second is None:
            return None
        with self._bucket_lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                burst = (spec.burst
                         or int(spec.requests_per_second) or 1)
                bucket = TokenBucket(spec.requests_per_second, burst)
                self._buckets[tenant] = bucket
        return bucket

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_server(service: ProFIPyService, host: str = "127.0.0.1",
                 port: int = 0) -> tuple[ProFIPyHTTPServer, threading.Thread]:
    """Start a server on a background thread (port 0 = ephemeral);
    returns it with its thread.  The embedding test/benchmark calls
    ``server.shutdown()`` when done."""
    server = ProFIPyHTTPServer((host, port), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def serve(workspace: str | Path, host: str = "127.0.0.1", port: int = 8080,
          max_workers: int | None = None, say=print,
          role: str = "service", join: str | None = None,
          advertise: str | None = None,
          blob_cache: str | Path | None = None,
          blob_cache_limit: int | None = None,
          tenants: str | Path | None = None) -> None:
    """Run the service API in the foreground (``profipy serve`` /
    ``profipy worker`` — the worker role is the same server, announced
    as such; shard and blob endpoints are mounted either way).

    ``join`` is a coordinator URL: the server registers itself in that
    coordinator's worker fleet and heartbeats its live shard load for
    as long as it runs (``profipy worker --join URL``).  ``advertise``
    overrides the URL the coordinator hands to dispatchers — required
    when the bind address (e.g. ``0.0.0.0``) is not reachable as-is.
    ``blob_cache`` relocates the content-addressed blob cache
    (default ``<workspace>/blobs``) and ``blob_cache_limit`` bounds it
    in bytes with least-recently-used eviction (``profipy worker
    --blob-cache DIR --blob-cache-limit BYTES``).  ``tenants`` is a
    ``tenants.json`` path: it turns on bearer-token authentication,
    per-tenant namespaces, fair-share scheduling, and quotas
    (``profipy serve --tenants FILE``; a ``tenants.json`` inside the
    workspace is picked up automatically).
    """
    from repro.service.jobs import DEFAULT_MAX_WORKERS

    service = ProFIPyService(
        workspace, max_workers=max_workers or DEFAULT_MAX_WORKERS,
        blob_cache_dir=blob_cache, blob_cache_bytes=blob_cache_limit,
        tenants=tenants,
    )
    server = ProFIPyHTTPServer((host, port), service)
    tenancy = (f", {len(service.tenants)} tenants (auth on)"
               if service.tenants is not None else "")
    say(f"profipy {role} API {API_VERSION} on {server.url} "
        f"(workspace {Path(workspace).resolve()}, "
        f"{service.runner.max_workers} campaign workers{tenancy})")
    agent = None
    if join:
        from repro.service.registry import WorkerAgent

        agent = WorkerAgent(join, advertise or server.url, service.shards)
        agent.start()
        say(f"joined fleet at {join} as {agent.worker_id} "
            f"(lease {agent.lease_seconds:g}s)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        say("shutting down")
    finally:
        if agent is not None:
            agent.stop()
        server.shutdown()
        service.close()
